//! Fuzz-style integration tests: the full pipeline on randomly shaped
//! (but always valid) schema/dataset pairs from
//! `anoncmp_datagen::random`. Deterministic seeds keep failures
//! reproducible.

use anoncmp::datagen::random::{generate_random, RandomConfig};
use anoncmp::prelude::*;

fn configs() -> impl Iterator<Item = RandomConfig> {
    (0..18u64).map(|seed| RandomConfig {
        rows: 30 + (seed as usize % 4) * 25,
        numeric_qi: (seed % 3) as usize,
        categorical_qi: 1 + (seed % 2) as usize,
        sensitive_values: 2 + (seed % 4) as usize,
        seed,
    })
}

#[test]
fn all_algorithms_survive_random_shapes() {
    for cfg in configs() {
        let ds = generate_random(&cfg);
        let k = 2 + (cfg.seed % 3) as usize;
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
        let algos: Vec<Box<dyn Anonymizer>> = vec![
            Box::new(Datafly),
            Box::new(Mondrian),
            Box::new(GreedyCluster),
            Box::new(TopDown::default()),
            Box::new(GreedyRecoder::default()),
        ];
        for algo in algos {
            match algo.anonymize(&ds, &c) {
                Ok(t) => {
                    assert!(
                        c.satisfied(&t),
                        "{} violated on seed {} (k = {k})",
                        algo.name(),
                        cfg.seed
                    );
                }
                Err(AnonymizeError::Unsatisfiable(_)) => {
                    assert!(
                        c.k > ds.len(),
                        "{} claimed unsatisfiable with k = {k} ≤ n = {} (seed {})",
                        algo.name(),
                        ds.len(),
                        cfg.seed
                    );
                }
                Err(e) => panic!("{} failed on seed {}: {e}", algo.name(), cfg.seed),
            }
        }
    }
}

#[test]
fn framework_pipeline_on_random_shapes() {
    for cfg in configs().take(8) {
        let ds = generate_random(&cfg);
        let c = Constraint::k_anonymity(2).with_suppression(ds.len() / 5);
        let a = Mondrian.anonymize(&ds, &c).expect("mondrian");
        let b = Datafly.anonymize(&ds, &c).expect("datafly");
        // Extract every property and compare under every comparator.
        let props: Vec<Box<dyn Property>> = vec![
            Box::new(EqClassSize),
            Box::new(SensitiveValueCount::default()),
            Box::new(DistinctSensitiveCount::default()),
            Box::new(IyengarUtility::paper()),
            Box::new(Precision),
        ];
        for p in &props {
            let va = p.extract(&a);
            let vb = p.extract(&b);
            assert_eq!(va.len(), ds.len());
            assert_eq!(vb.len(), ds.len());
            for cmp in [
                &CoverageComparator as &dyn Comparator,
                &SpreadComparator,
                &DominanceComparator,
            ] {
                let fwd = cmp.compare(&va, &vb);
                assert_eq!(fwd, cmp.compare(&vb, &va).flipped());
            }
        }
        // Bias, risk, and workload reports never panic on valid releases.
        let _ = BiasReport::of(&EqClassSize.extract(&a));
        let _ = RiskReport::of(&a, 0.5);
        let w = Workload::random(&ds, 10, 1, 0.4, cfg.seed);
        let _ = w.mean_relative_error(&a);
        let v = w.tuple_error_vector(&a);
        assert_eq!(v.len(), ds.len());
    }
}

#[test]
fn csv_roundtrip_on_random_shapes() {
    use anoncmp::microdata::csv::{dataset_from_csv, dataset_to_csv};
    for cfg in configs().take(6) {
        let ds = generate_random(&cfg);
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(ds.schema().clone(), &text).expect("roundtrip");
        assert_eq!(back.len(), ds.len());
        for t in 0..ds.len() {
            assert_eq!(back.row(t), ds.row(t), "seed {}", cfg.seed);
        }
    }
}
