//! Integration tests for the extension layer: the §7 multi-objective
//! frontier, the ε-indicator, query-workload utility, tournament
//! summaries, risk reports, and personalized privacy — all across crates
//! through the public API.

use std::sync::Arc;

use anoncmp::datagen::census::{generate, CensusConfig};
use anoncmp::prelude::*;

fn dataset() -> Arc<Dataset> {
    generate(&CensusConfig {
        rows: 180,
        seed: 63,
        zip_pool: 15,
    })
}

#[test]
fn moga_front_dominates_or_matches_constraint_algorithms() {
    // Every constraint-based release at k = 5 must be weakly covered by
    // the front: no release may strongly dominate ALL frontier points
    // (otherwise the front missed a region).
    let ds = dataset();
    let moga = MultiObjectiveGenetic {
        config: MogaConfig {
            population: 16,
            generations: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    let front = moga.run(&ds).expect("moga runs");
    assert!(!front.is_empty());

    let c = Constraint::k_anonymity(5).with_suppression(9);
    let metric = anoncmp::microdata::loss::LossMetric::classic();
    for algo in [&Datafly as &dyn Anonymizer, &Mondrian, &TopDown::default()] {
        let t = algo.anonymize(&ds, &c).expect("feasible");
        let point = vec![
            EqClassSize.extract(&t).mean().expect("non-empty"),
            -metric.total_loss(&t),
        ];
        let dominates_whole_front = front
            .iter()
            .all(|s| point_strongly_dominates(&point, &s.objectives));
        assert!(
            !dominates_whole_front,
            "{} dominates the entire front — front is degenerate",
            algo.name()
        );
    }
}

#[test]
fn epsilon_comparator_is_consistent_with_dominance_on_real_releases() {
    let ds = dataset();
    let c = Constraint::k_anonymity(3).with_suppression(9);
    let a = Datafly.anonymize(&ds, &c).expect("datafly");
    let b = Incognito::default().anonymize(&ds, &c).expect("incognito");
    let va = EqClassSize.extract(&a);
    let vb = EqClassSize.extract(&b);
    let eps = EpsilonComparator::default();
    // Characterization: I_ε+(X,Y) ≤ 0 ⟺ X ⪰ Y.
    assert_eq!(
        additive_epsilon_index(&va, &vb) <= 0.0,
        weakly_dominates(&va, &vb)
    );
    assert_eq!(
        additive_epsilon_index(&vb, &va) <= 0.0,
        weakly_dominates(&vb, &va)
    );
    // Antisymmetry of the comparator.
    assert_eq!(eps.compare(&va, &vb), eps.compare(&vb, &va).flipped());
}

#[test]
fn query_workload_ranks_mondrian_over_full_domain() {
    let ds = dataset();
    let c = Constraint::k_anonymity(5).with_suppression(9);
    let mond = Mondrian.anonymize(&ds, &c).expect("mondrian");
    let data = Datafly.anonymize(&ds, &c).expect("datafly");
    let w = Workload::random(&ds, 40, 2, 0.3, 11);
    let em = w.mean_relative_error(&mond);
    let ed = w.mean_relative_error(&data);
    assert!(em <= ed + 1e-9, "mondrian {em} vs datafly {ed}");
    // The per-tuple decomposition agrees through ▶cov.
    let vm = w.tuple_error_vector(&mond);
    let vd = w.tuple_error_vector(&data);
    assert_ne!(
        CoverageComparator.compare(&vm, &vd),
        Preference::Second,
        "datafly should not cover mondrian on per-tuple query error"
    );
}

#[test]
fn comparison_matrix_spans_crates() {
    let ds = dataset();
    let c = Constraint::k_anonymity(4).with_suppression(9);
    let releases: Vec<AnonymizedTable> = vec![
        Datafly.anonymize(&ds, &c).expect("datafly"),
        Mondrian.anonymize(&ds, &c).expect("mondrian"),
        TopDown::default().anonymize(&ds, &c).expect("top-down"),
    ];
    let names: Vec<&str> = releases.iter().map(|t| t.name()).collect();
    let vectors: Vec<PropertyVector> = releases.iter().map(|t| EqClassSize.extract(t)).collect();
    let m = ComparisonMatrix::of_vectors(&names, &vectors, &CoverageComparator);
    // Copeland scores sum to zero when there are no incomparabilities.
    let total: i64 = (0..3).map(|i| m.copeland(i)).sum();
    assert_eq!(total, 0);
    let rendered = m.render();
    for n in names {
        assert!(rendered.contains(n));
    }
}

#[test]
fn risk_report_improves_with_anonymization() {
    let ds = dataset();
    let raw = AnonymizedTable::identity(ds.clone(), "raw");
    let c = Constraint::k_anonymity(5).with_suppression(9);
    let anon = Mondrian.anonymize(&ds, &c).expect("mondrian");
    let r_raw = RiskReport::of(&raw, 0.2);
    let r_anon = RiskReport::of(&anon, 0.2);
    assert!(
        r_anon.max_risk <= 1.0 / 5.0 + 1e-12,
        "k = 5 caps risk at 0.2"
    );
    assert!(r_anon.max_risk <= r_raw.max_risk);
    assert!(r_anon.expected_reidentifications < r_raw.expected_reidentifications);
    assert_eq!(r_anon.at_risk_fraction, 0.0);
}

#[test]
fn personalized_privacy_end_to_end() {
    let ds = dataset();
    // Older individuals demand stronger protection (k = 8), younger ones
    // are content with k = 2.
    let demands: Vec<usize> = (0..ds.len())
        .map(|t| {
            let age = ds.value(t, 0).as_int().expect("age column");
            if age >= 60 {
                8
            } else {
                2
            }
        })
        .collect();
    let model = PersonalizedKAnonymity::new(demands.clone());
    let c = Constraint::k_anonymity(2)
        .with_suppression(ds.len() / 10)
        .with_model(Arc::new(model));
    let t = Datafly
        .anonymize(&ds, &c)
        .expect("personalized demands reachable");
    assert!(c.satisfied(&t));
    // Slack is nonnegative for every non-suppressed tuple.
    let model = PersonalizedKAnonymity::new(demands);
    let slack = personalized_slack_vector(&t, &model);
    for (tuple, s) in slack.iter().enumerate() {
        if !t.is_tuple_suppressed(tuple) {
            assert!(s >= 0.0, "tuple {tuple} below its personal demand");
        }
    }
    // The spread of slack values is the personalized anonymization bias:
    // some individuals get exactly their demand, others far more.
    assert!(slack.max().expect("non-empty") > slack.min().expect("non-empty"));
}

#[test]
fn pareto_helpers_agree_with_vector_dominance() {
    // point_*_dominates must agree with the PropertyVector relations.
    let a = vec![3.0, 5.0, 2.0];
    let b = vec![3.0, 4.0, 2.0];
    let va = PropertyVector::new("a", a.clone());
    let vb = PropertyVector::new("b", b.clone());
    assert_eq!(point_weakly_dominates(&a, &b), weakly_dominates(&va, &vb));
    assert_eq!(
        point_strongly_dominates(&a, &b),
        strongly_dominates(&va, &vb)
    );
    let front = pareto_front(&[a.clone(), b.clone()]);
    assert_eq!(front, vec![0]);
    let fronts = non_dominated_sort(&[a, b]);
    assert_eq!(fronts.len(), 2);
}
