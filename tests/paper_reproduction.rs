//! End-to-end reproduction of every worked number in the paper, through
//! the public API only: Tables 1–3, Figure 1's vectors, the §3 index
//! values, the §5 comparator examples, and the §5.5 utility vectors.

use anoncmp::datagen::paper;
use anoncmp::microdata::loss::LossMetric;
use anoncmp::prelude::*;

#[test]
fn table1_is_the_paper_dataset() {
    let ds = paper::paper_table1(paper::paper_schema_t3());
    assert_eq!(ds.len(), 10);
    // Spot-check tuple 5: (13253, 50, Divorced).
    assert_eq!(ds.render(4, 0), "13253");
    assert_eq!(ds.render(4, 1), "50");
    assert_eq!(ds.render(4, 2), "Divorced");
}

#[test]
fn table2_generalizations_render_exactly() {
    let t3a = paper::paper_t3a();
    // Every released row of Table 2 (left), tuple order 1..10.
    let expected_a = [
        ("1305*", "(25,35]", "Married"),
        ("1326*", "(35,45]", "Not Married"),
        ("1326*", "(35,45]", "Not Married"),
        ("1305*", "(25,35]", "Married"),
        ("1325*", "(45,55]", "Not Married"),
        ("1325*", "(45,55]", "Not Married"),
        ("1325*", "(45,55]", "Not Married"),
        ("1305*", "(25,35]", "Married"),
        ("1326*", "(35,45]", "Not Married"),
        ("1325*", "(45,55]", "Not Married"),
    ];
    for (i, (zip, age, ms)) in expected_a.iter().enumerate() {
        assert_eq!(&t3a.render_cell(i, 0), zip, "tuple {} zip", i + 1);
        assert_eq!(&t3a.render_cell(i, 1), age, "tuple {} age", i + 1);
        assert_eq!(&t3a.render_cell(i, 2), ms, "tuple {} ms", i + 1);
    }

    let t3b = paper::paper_t3b();
    let expected_b = [
        ("130**", "(15,35]"),
        ("132**", "(35,55]"),
        ("132**", "(35,55]"),
        ("130**", "(15,35]"),
        ("132**", "(35,55]"),
        ("132**", "(35,55]"),
        ("132**", "(35,55]"),
        ("130**", "(15,35]"),
        ("132**", "(35,55]"),
        ("132**", "(35,55]"),
    ];
    for (i, (zip, age)) in expected_b.iter().enumerate() {
        assert_eq!(&t3b.render_cell(i, 0), zip, "tuple {} zip", i + 1);
        assert_eq!(&t3b.render_cell(i, 1), age, "tuple {} age", i + 1);
    }
}

#[test]
fn table3_t4_renders_exactly() {
    let t4 = paper::paper_t4();
    for i in 0..10 {
        assert_eq!(t4.render_cell(i, 0), "13***");
        assert_eq!(t4.render_cell(i, 2), "*");
    }
    let young = [0usize, 2, 3, 7]; // tuples 1, 3, 4, 8
    for i in 0..10 {
        let expected = if young.contains(&i) {
            "(20,40]"
        } else {
            "(40,60]"
        };
        assert_eq!(t4.render_cell(i, 1), expected, "tuple {}", i + 1);
    }
}

#[test]
fn figure1_class_size_vectors() {
    let s = EqClassSize.extract(&paper::paper_t3a());
    let t = EqClassSize.extract(&paper::paper_t3b());
    let u = EqClassSize.extract(&paper::paper_t4());
    assert_eq!(
        s.values(),
        &[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]
    );
    assert_eq!(
        t.values(),
        &[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]
    );
    assert_eq!(
        u.values(),
        &[4.0, 6.0, 4.0, 4.0, 6.0, 6.0, 6.0, 4.0, 6.0, 6.0]
    );
}

#[test]
fn section1_breach_probabilities() {
    // §1: "tuples {2,3,5,6,7,9,10} in T3b has 1/7 probability of breach".
    let t3b = paper::paper_t3b();
    let p = BreachProbability.raw(&t3b);
    for i in [1usize, 2, 4, 5, 6, 8, 9] {
        assert!((p[i] - 1.0 / 7.0).abs() < 1e-12, "tuple {}", i + 1);
    }
    for i in [0usize, 3, 7] {
        assert!((p[i] - 1.0 / 3.0).abs() < 1e-12, "tuple {}", i + 1);
    }
}

#[test]
fn section3_index_values() {
    let s = EqClassSize.extract(&paper::paper_t3a());
    let t = EqClassSize.extract(&paper::paper_t3b());
    assert_eq!(classic::MinIndex.value(&s), 3.0);
    assert!((classic::MeanIndex.value(&s) - 3.4).abs() < 1e-12);
    let counts = SensitiveValueCount::default().extract(&paper::paper_t3a());
    assert_eq!(
        counts.values(),
        &[2.0, 2.0, 1.0, 2.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0]
    );
    assert_eq!(classic::MinIndex.value(&counts), 1.0);
    assert_eq!(classic::CountStrictlyGreater.value(&s, &t), 0.0);
    assert_eq!(classic::CountStrictlyGreater.value(&t, &s), 7.0);
}

#[test]
fn section53_cov_and_spread_examples() {
    let d1 = PropertyVector::new("D1", paper::FIG3_D1.to_vec());
    let d2 = PropertyVector::new("D2", paper::FIG3_D2.to_vec());
    assert!((coverage_index(&d1, &d2) - 0.6).abs() < 1e-12);
    assert!((coverage_index(&d2, &d1) - 0.6).abs() < 1e-12);
    assert_eq!(spread_index(&d1, &d2), 4.0);
    assert_eq!(spread_index(&d2, &d1), 2.0);

    let three = PropertyVector::new("3", paper::SPR_3ANON.to_vec());
    let two = PropertyVector::new("2", paper::SPR_2ANON.to_vec());
    assert_eq!(spread_index(&three, &two), 2.0);
    assert_eq!(spread_index(&two, &three), 8.0);
    assert_eq!(SpreadComparator.compare(&two, &three), Preference::First);
}

#[test]
fn section54_hypervolume_example() {
    let s = PropertyVector::new("s", paper::HV_S.to_vec());
    let t = PropertyVector::new("t", paper::HV_T.to_vec());
    assert_eq!(hypervolume_index(&s, &t), 56_727.0);
    assert_eq!(hypervolume_index(&t, &s), 37_888.0);
    assert_eq!(
        HypervolumeComparator::default().compare(&s, &t),
        Preference::First
    );
}

#[test]
fn section55_utility_vectors_and_wtd_tie() {
    let t3a = paper::paper_t3a();
    let t3b = paper::paper_t3b();
    let metric = LossMetric::paper_ratio();
    let ua = metric.utility_vector(&t3a);
    let ub = metric.utility_vector(&t3b);
    let paper_ua = [2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6];
    let paper_ub = [2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97];
    for (got, want) in ua.iter().zip(&paper_ua) {
        assert!(
            (got - want).abs() < 5e-3,
            "u_a: got {got}, paper prints {want}"
        );
    }
    for (got, want) in ub.iter().zip(&paper_ub) {
        assert!(
            (got - want).abs() < 5e-3,
            "u_b: got {got}, paper prints {want}"
        );
    }
    // Coverage values from §5.5.
    let pa = EqClassSize.extract(&t3a);
    let pb = EqClassSize.extract(&t3b);
    let ua = PropertyVector::new("u", ua);
    let ub = PropertyVector::new("u", ub);
    assert!((coverage_index(&pa, &pb) - 0.3).abs() < 1e-12);
    assert!((coverage_index(&pb, &pa) - 1.0).abs() < 1e-12);
    assert!((coverage_index(&ua, &ub) - 1.0).abs() < 1e-12);
    assert!((coverage_index(&ub, &ua) - 0.3).abs() < 1e-12);
    // Equal weights: tie.
    let sa = PropertySet::new("T3a", vec![pa.renamed("p"), ua.renamed("u2")]);
    let sb = PropertySet::new("T3b", vec![pb.renamed("p"), ub.renamed("u2")]);
    let wtd = WeightedComparator::equal(vec![
        Box::new(CoverageComparator),
        Box::new(CoverageComparator),
    ]);
    assert_eq!(wtd.compare(&sa, &sb), Preference::Tie);
}

#[test]
fn section2_dominance_story() {
    let s = EqClassSize.extract(&paper::paper_t3a());
    let t = EqClassSize.extract(&paper::paper_t3b());
    let u = EqClassSize.extract(&paper::paper_t4());
    // T3b strongly dominates T3a (§3).
    assert!(strongly_dominates(&t, &s));
    // T4 and T3b are incomparable (§2: user 8 vs user 3).
    assert_eq!(relation(&u, &t), DominanceRelation::Incomparable);
    // T4 strongly dominates T3a component-wise.
    assert!(strongly_dominates(&u, &s));
    // The ▶cov order of §5.2: T4 ▶cov T3a, T3b ▶cov T4.
    assert_eq!(CoverageComparator.compare(&u, &s), Preference::First);
    assert_eq!(CoverageComparator.compare(&t, &u), Preference::First);
}

#[test]
fn ldiversity_models_on_the_paper_tables() {
    // T3a's classes have 2, 2, 3 distinct statuses → distinct 2-diversity
    // holds, 3-diversity does not.
    let t3a = paper::paper_t3a();
    assert!(LDiversity::distinct(2).satisfied(&t3a));
    assert!(!LDiversity::distinct(3).satisfied(&t3a));
    // T4's two classes are large and diverse.
    let t4 = paper::paper_t4();
    assert!(LDiversity::distinct(3).satisfied(&t4));
}
