//! Cross-crate integration: every algorithm × every privacy-model
//! combination on synthetic census data, with the outputs fed through the
//! comparison framework.

use std::sync::Arc;

use anoncmp::datagen::census::{generate, CensusConfig};
use anoncmp::prelude::*;

fn dataset() -> Arc<Dataset> {
    generate(&CensusConfig {
        rows: 200,
        seed: 31,
        zip_pool: 15,
    })
}

fn algorithms() -> Vec<Box<dyn Anonymizer>> {
    vec![
        Box::new(Datafly),
        Box::new(Samarati::default()),
        Box::new(Incognito::default()),
        Box::new(Mondrian),
        Box::new(GreedyRecoder::default()),
        Box::new(Genetic {
            config: GeneticConfig {
                population: 16,
                generations: 10,
                ..Default::default()
            },
            ..Default::default()
        }),
        Box::new(TopDown::default()),
        Box::new(GreedyCluster),
        Box::new(SubsetIncognito::default()),
    ]
}

#[test]
fn every_algorithm_satisfies_every_k() {
    let ds = dataset();
    for k in [2usize, 5, 10] {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
        for algo in algorithms() {
            let t = algo
                .anonymize(&ds, &c)
                .unwrap_or_else(|e| panic!("{} failed at k={k}: {e}", algo.name()));
            assert!(c.satisfied(&t), "{} violates at k={k}", algo.name());
            assert_eq!(t.len(), ds.len(), "{} dropped tuples", algo.name());
            // Every non-suppressed class is at least k (the scalar view).
            for (_, members) in t.classes().iter() {
                let suppressed = members.iter().all(|&m| t.is_tuple_suppressed(m as usize));
                assert!(
                    suppressed || members.len() >= k,
                    "{} produced an undersized class at k={k}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn extra_models_are_honored_by_all_algorithms() {
    let ds = dataset();
    let constraints = [
        Constraint::k_anonymity(3)
            .with_suppression(ds.len() / 5)
            .with_model(Arc::new(LDiversity::distinct(2))),
        Constraint::k_anonymity(2)
            .with_suppression(ds.len() / 5)
            .with_model(Arc::new(PSensitive::new(2))),
        // t-closeness punishes small classes hard (a pure class of one
        // sensitive value sits at TV ≈ 1 − p(v)); Mondrian's near-minimal
        // partitions therefore need a generous suppression budget, while
        // the lattice algorithms escape by generalizing further.
        Constraint::k_anonymity(2)
            .with_suppression(ds.len())
            .with_model(Arc::new(TCloseness::new(0.5))),
    ];
    for c in &constraints {
        for algo in algorithms() {
            let t = algo
                .anonymize(&ds, c)
                .unwrap_or_else(|e| panic!("{} failed for {}: {e}", algo.name(), c.describe()));
            assert!(c.satisfied(&t), "{} violates {}", algo.name(), c.describe());
        }
    }
}

#[test]
fn outputs_feed_the_comparison_framework() {
    let ds = dataset();
    let c = Constraint::k_anonymity(4).with_suppression(10);
    let releases: Vec<AnonymizedTable> = algorithms()
        .iter()
        .map(|a| a.anonymize(&ds, &c).expect("feasible"))
        .collect();

    // Induce a 3-property view on every release and compare all pairs with
    // every comparator — nothing may panic, and the outcomes must be
    // antisymmetric.
    let util = IyengarUtility::paper();
    let div = DistinctSensitiveCount::default();
    let sets: Vec<PropertySet> = releases
        .iter()
        .map(|t| induce_property_set(t, &[&EqClassSize, &div, &util]))
        .collect();
    let comparators: Vec<Box<dyn Comparator>> = vec![
        Box::new(DominanceComparator),
        Box::new(CoverageComparator),
        Box::new(SpreadComparator),
        Box::new(HypervolumeComparator::default()),
        Box::new(RankComparator::toward_uniform(ds.len() as f64, ds.len())),
    ];
    for i in 0..sets.len() {
        for j in 0..sets.len() {
            for cmp in &comparators {
                let fwd = cmp.compare(sets[i].vector(0), sets[j].vector(0));
                let bwd = cmp.compare(sets[j].vector(0), sets[i].vector(0));
                assert_eq!(fwd, bwd.flipped(), "{} not antisymmetric", cmp.name());
            }
        }
    }
    let wtd = WeightedComparator::new(
        vec![0.5, 0.25, 0.25],
        vec![
            Box::new(CoverageComparator),
            Box::new(CoverageComparator),
            Box::new(CoverageComparator),
        ],
    );
    for i in 0..sets.len() {
        for j in 0..sets.len() {
            let fwd = wtd.compare(&sets[i], &sets[j]);
            let bwd = wtd.compare(&sets[j], &sets[i]);
            assert_eq!(fwd, bwd.flipped(), "WTD not antisymmetric");
        }
    }
}

#[test]
fn mondrian_dominates_full_domain_on_discernibility() {
    // Local recoding yields finer classes, hence lower discernibility
    // penalties — the shape LeFevre et al. report.
    let ds = dataset();
    let c = Constraint::k_anonymity(5).with_suppression(10);
    let mond = Mondrian.anonymize(&ds, &c).expect("mondrian");
    let data = Datafly.anonymize(&ds, &c).expect("datafly");
    let dm_m: f64 = Discernibility.raw(&mond).sum();
    let dm_d: f64 = Discernibility.raw(&data).sum();
    assert!(dm_m <= dm_d, "mondrian DM {dm_m} vs datafly DM {dm_d}");
}

#[test]
fn exhaustive_searches_agree_with_each_other() {
    // Incognito's loss-optimal minimal node is at least as good as
    // Samarati's height-minimal choice, under the same preference metric.
    let ds = dataset();
    let c = Constraint::k_anonymity(3).with_suppression(8);
    let inc = Incognito::default().run(&ds, &c).expect("incognito");
    let sam = Samarati::default().run(&ds, &c).expect("samarati");
    let metric = anoncmp::microdata::loss::LossMetric::classic();
    assert!(metric.total_loss(&inc.table) <= metric.total_loss(&sam.table) + 1e-9);
    // Samarati's chosen node must appear in Incognito's frontier closure
    // (it is minimal in height, so no frontier node lies strictly below it
    // at lower height… at minimum, its height is ≥ the minimum frontier
    // height).
    let lattice = Lattice::new(ds.schema().clone()).expect("lattice");
    let min_frontier_height = inc
        .frontier
        .iter()
        .map(|l| lattice.height_of(l))
        .min()
        .expect("non-empty");
    assert!(lattice.height_of(&sam.levels) >= min_frontier_height);
}

#[test]
fn per_tuple_winners_differ_across_algorithms() {
    // The §2 story at scale: no algorithm's release is the personal
    // optimum for every tuple (with enough algorithms in play).
    let ds = dataset();
    let c = Constraint::k_anonymity(5).with_suppression(10);
    let releases: Vec<AnonymizedTable> = algorithms()
        .iter()
        .map(|a| a.anonymize(&ds, &c).expect("feasible"))
        .collect();
    let vectors: Vec<PropertyVector> = releases.iter().map(|t| EqClassSize.extract(t)).collect();
    let mut uniquely_best = vec![false; vectors.len()];
    for t in 0..ds.len() {
        let best = vectors
            .iter()
            .map(|v| v[t])
            .fold(f64::NEG_INFINITY, f64::max);
        let winners: Vec<usize> = (0..vectors.len())
            .filter(|&i| vectors[i][t] == best)
            .collect();
        if winners.len() < vectors.len() {
            for w in winners {
                uniquely_best[w] = true;
            }
        }
    }
    // At least two different algorithms are strictly preferred by someone.
    assert!(uniquely_best.iter().filter(|&&b| b).count() >= 2);
}
