//! The code from docs/TUTORIAL.md, compiled and executed — if the tutorial
//! drifts from the API, this test breaks.

use std::sync::Arc;

use anoncmp::anonymize::error::{AnonymizeError, Result as AnonResult};
use anoncmp::datagen::census::{generate, CensusConfig};
use anoncmp::prelude::*;

// ----------------------------------------------------------------------
// Tutorial §1: a custom property.
// ----------------------------------------------------------------------

struct SurvivalShare;

impl Property for SurvivalShare {
    fn name(&self) -> String {
        "survival-share".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let v: Vec<f64> = (0..table.len())
            .map(|t| {
                if table.is_tuple_suppressed(t) {
                    0.0
                } else {
                    let class = table.classes().class_of(t);
                    let members = table.classes().members(class);
                    let alive = members
                        .iter()
                        .filter(|&&m| !table.is_tuple_suppressed(m as usize))
                        .count();
                    alive as f64 / members.len() as f64
                }
            })
            .collect();
        PropertyVector::new(self.name(), v)
    }
}

#[test]
fn tutorial_custom_property() {
    let ds = generate(&CensusConfig {
        rows: 120,
        seed: 77,
        zip_pool: 10,
    });
    let c = Constraint::k_anonymity(4).with_suppression(12);
    let release = Datafly.anonymize(&ds, &c).expect("feasible");
    let share = SurvivalShare.extract(&release);
    assert_eq!(share.len(), ds.len());
    for (t, s) in share.iter().enumerate() {
        assert!((0.0..=1.0).contains(&s));
        if release.is_tuple_suppressed(t) {
            assert_eq!(s, 0.0);
        }
    }
    // Composes into an r-property view.
    let set = induce_property_set(&release, &[&EqClassSize, &SurvivalShare]);
    assert_eq!(set.r(), 2);
}

// ----------------------------------------------------------------------
// Tutorial §2: a custom comparator.
// ----------------------------------------------------------------------

struct MedianComparator;

impl Comparator for MedianComparator {
    fn name(&self) -> String {
        "med".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        let med = |d: &PropertyVector| classic::MedianIndex.value(d);
        match med(d1).partial_cmp(&med(d2)).expect("no NaN") {
            std::cmp::Ordering::Greater => Preference::First,
            std::cmp::Ordering::Less => Preference::Second,
            std::cmp::Ordering::Equal => Preference::Tie,
        }
    }
}

#[test]
fn tutorial_custom_comparator_invariants() {
    let a = PropertyVector::new("a", vec![3.0, 7.0, 7.0]);
    let b = PropertyVector::new("b", vec![3.0, 4.0, 4.0]);
    // Antisymmetry.
    assert_eq!(
        MedianComparator.compare(&a, &b),
        MedianComparator.compare(&b, &a).flipped()
    );
    // Dominance compatibility.
    assert!(strongly_dominates(&a, &b));
    assert_ne!(MedianComparator.compare(&a, &b), Preference::Second);
    // Tournament integration + agreement with a built-in.
    let names = ["a", "b"];
    let vectors = [a, b];
    let med = ComparisonMatrix::of_vectors(&names, &vectors, &MedianComparator);
    let cov = ComparisonMatrix::of_vectors(&names, &vectors, &CoverageComparator);
    assert_eq!(kendall_tau(&med.ranking(), &cov.ranking()), 1.0);
}

// ----------------------------------------------------------------------
// Tutorial §3: a custom privacy model.
// ----------------------------------------------------------------------

struct FrequencyCap {
    cap: usize,
    column: usize,
}

impl PrivacyModel for FrequencyCap {
    fn name(&self) -> String {
        format!("freq-cap {}", self.cap)
    }

    fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool {
        let ds = table.dataset();
        members.iter().all(|&t| {
            let own = ds.value(t as usize, self.column);
            members
                .iter()
                .filter(|&&m| ds.value(m as usize, self.column) == own)
                .count()
                <= self.cap
        })
    }
}

#[test]
fn tutorial_custom_model() {
    let ds = generate(&CensusConfig {
        rows: 150,
        seed: 5,
        zip_pool: 12,
    });
    let c = Constraint::k_anonymity(2)
        .with_suppression(ds.len())
        .with_model(Arc::new(FrequencyCap { cap: 6, column: 6 }));
    // Mondrian + enforcement handles even non-monotone extras.
    let t = Mondrian.anonymize(&ds, &c).expect("budget covers the cap");
    assert!(c.satisfied(&t));
}

// ----------------------------------------------------------------------
// Tutorial §4: a custom algorithm.
// ----------------------------------------------------------------------

struct HillClimb {
    restarts: usize,
}

impl Anonymizer for HillClimb {
    fn name(&self) -> String {
        "hill-climb".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> AnonResult<AnonymizedTable> {
        let lattice = Lattice::new(dataset.schema().clone())?;
        let metric = anoncmp::microdata::loss::LossMetric::classic();
        let mut best: Option<(f64, AnonymizedTable)> = None;
        for restart in 0..self.restarts.max(1) {
            let mut levels = lattice.top();
            let mut improved = true;
            while improved {
                improved = false;
                let mut preds = lattice.predecessors(&levels);
                let len = preds.len();
                if len > 0 {
                    preds.rotate_left(restart % len);
                }
                for pred in preds {
                    let table = lattice.apply(dataset, &pred, "hill-climb")?;
                    if constraint.enforce(&table).is_some() {
                        levels = pred;
                        improved = true;
                        break;
                    }
                }
            }
            let table = lattice.apply(dataset, &levels, "hill-climb")?;
            let table = constraint.enforce(&table).expect("descent stayed feasible");
            let loss = metric.total_loss(&table);
            if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                best = Some((loss, table));
            }
        }
        best.map(|(_, t)| t)
            .ok_or_else(|| AnonymizeError::Unsatisfiable("no feasible node found".into()))
    }
}

#[test]
fn tutorial_custom_algorithm() {
    let ds = generate(&CensusConfig {
        rows: 120,
        seed: 13,
        zip_pool: 10,
    });
    for k in [2usize, 5] {
        let c = Constraint::k_anonymity(k).with_suppression(10);
        let t = HillClimb { restarts: 3 }
            .anonymize(&ds, &c)
            .expect("monotone constraint, top is feasible");
        assert!(c.satisfied(&t), "k = {k}");
        assert_eq!(t.len(), ds.len());
        // Never better than the exhaustive optimum.
        let (opt, _, _) = OptimalLattice::default().run(&ds, &c).expect("optimal");
        let m = anoncmp::microdata::loss::LossMetric::classic();
        assert!(m.total_loss(&t) >= m.total_loss(&opt) - 1e-9);
    }
}
