//! Property-based tests (proptest) for the comparison framework's
//! mathematical invariants, exercised through the public API.

use anoncmp::prelude::*;
use proptest::prelude::*;

/// Strategy: a property vector of dimension `n` with values in [0.5, 20].
fn vec_of(n: usize) -> impl Strategy<Value = PropertyVector> {
    proptest::collection::vec(0.5f64..20.0, n).prop_map(|v| PropertyVector::new("p", v))
}

/// Strategy: a pair of equal-dimension vectors (dimension 1..=12).
fn pair() -> impl Strategy<Value = (PropertyVector, PropertyVector)> {
    (1usize..=12).prop_flat_map(|n| (vec_of(n), vec_of(n)))
}

proptest! {
    // ------------------------------------------------------------------
    // Dominance is a partial order.
    // ------------------------------------------------------------------
    #[test]
    fn weak_dominance_is_reflexive(d in (1usize..=12).prop_flat_map(vec_of)) {
        prop_assert!(weakly_dominates(&d, &d));
        prop_assert!(!strongly_dominates(&d, &d));
        prop_assert!(!non_dominated(&d, &d));
    }

    #[test]
    fn weak_dominance_is_antisymmetric((d1, d2) in pair()) {
        if weakly_dominates(&d1, &d2) && weakly_dominates(&d2, &d1) {
            prop_assert_eq!(d1.values(), d2.values());
        }
    }

    #[test]
    fn dominance_trichotomy((d1, d2) in pair()) {
        // Exactly one of: equal, first dominates, second dominates,
        // incomparable.
        let r = relation(&d1, &d2);
        let count = [
            r == DominanceRelation::Equal,
            r == DominanceRelation::FirstDominates,
            r == DominanceRelation::SecondDominates,
            r == DominanceRelation::Incomparable,
        ]
        .iter()
        .filter(|&&b| b)
        .count();
        prop_assert_eq!(count, 1);
        // And the incomparable case is exactly non_dominated.
        prop_assert_eq!(r == DominanceRelation::Incomparable, non_dominated(&d1, &d2));
    }

    #[test]
    fn weak_dominance_is_transitive(
        (n, a, b, c) in (1usize..=8).prop_flat_map(|n| {
            (Just(n), vec_of(n), vec_of(n), vec_of(n))
        })
    ) {
        let _ = n;
        // Build a chain artificially: sort the three vectors by sum and
        // take component-wise max to force a ⪯ chain.
        let lo = PropertyVector::new(
            "lo",
            a.values().iter().zip(b.values()).map(|(x, y)| x.min(*y)).collect(),
        );
        let hi = PropertyVector::new(
            "hi",
            lo.values().iter().zip(c.values()).map(|(x, y)| x.max(*y)).collect(),
        );
        prop_assert!(weakly_dominates(&hi, &lo));
    }

    // ------------------------------------------------------------------
    // Coverage (§5.2).
    // ------------------------------------------------------------------
    #[test]
    fn coverage_is_bounded_and_exhaustive((d1, d2) in pair()) {
        let fwd = coverage_index(&d1, &d2);
        let bwd = coverage_index(&d2, &d1);
        prop_assert!((0.0..=1.0).contains(&fwd));
        prop_assert!((0.0..=1.0).contains(&bwd));
        // Every tuple is covered by at least one direction (ties by both).
        prop_assert!(fwd + bwd >= 1.0 - 1e-12);
    }

    #[test]
    fn full_coverage_iff_weak_dominance((d1, d2) in pair()) {
        prop_assert_eq!(coverage_index(&d1, &d2) == 1.0, weakly_dominates(&d1, &d2));
    }

    #[test]
    fn paper_full_zero_coverage_implies_strong_dominance((d1, d2) in pair()) {
        // §5.2: P_cov(D1,D2)=1 ∧ P_cov(D2,D1)=0 ⟹ D1 ≻ D2 (the converse
        // needs all-strict improvement, so only this direction holds).
        if coverage_index(&d1, &d2) == 1.0 && coverage_index(&d2, &d1) == 0.0 {
            prop_assert!(strongly_dominates(&d1, &d2));
        }
    }

    // ------------------------------------------------------------------
    // Spread (§5.3).
    // ------------------------------------------------------------------
    #[test]
    fn zero_spread_iff_dominated((d1, d2) in pair()) {
        // P_spr(D1,D2) = 0 ⟺ D2 ⪰ D1.
        prop_assert_eq!(spread_index(&d1, &d2) == 0.0, weakly_dominates(&d2, &d1));
    }

    #[test]
    fn spread_difference_is_sum_difference((d1, d2) in pair()) {
        // P_spr(D1,D2) − P_spr(D2,D1) = Σd1 − Σd2 (telescoping identity).
        let lhs = spread_index(&d1, &d2) - spread_index(&d2, &d1);
        let rhs = d1.sum() - d2.sum();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Hypervolume (§5.4).
    // ------------------------------------------------------------------
    #[test]
    fn hypervolume_nonnegative_and_dominance_zero((d1, d2) in pair()) {
        let fwd = hypervolume_index(&d1, &d2);
        prop_assert!(fwd >= -1e-9);
        if weakly_dominates(&d2, &d1) {
            prop_assert!(fwd.abs() < 1e-6, "P_hv(D1,D2) = 0 when D2 ⪰ D1");
        }
    }

    #[test]
    fn hv_exact_and_log_agree((d1, d2) in pair()) {
        let exact = HypervolumeComparator::with_mode(HvMode::Exact).compare(&d1, &d2);
        let log = HypervolumeComparator::with_mode(HvMode::Log).compare(&d1, &d2);
        // Ties are knife-edge under floating point; require agreement on
        // strict outcomes only.
        if exact != Preference::Tie && log != Preference::Tie {
            prop_assert_eq!(exact, log);
        }
    }

    // ------------------------------------------------------------------
    // Comparator antisymmetry (flip consistency).
    // ------------------------------------------------------------------
    #[test]
    fn comparators_are_antisymmetric((d1, d2) in pair()) {
        let comparators: Vec<Box<dyn Comparator>> = vec![
            Box::new(DominanceComparator),
            Box::new(CoverageComparator),
            Box::new(SpreadComparator),
            Box::new(HypervolumeComparator::default()),
            Box::new(RankComparator::toward_uniform(25.0, d1.len())),
        ];
        for cmp in &comparators {
            let fwd = cmp.compare(&d1, &d2);
            let bwd = cmp.compare(&d2, &d1);
            prop_assert_eq!(fwd, bwd.flipped(), "{} not antisymmetric", cmp.name());
        }
    }

    #[test]
    fn strong_dominance_wins_under_every_metric_comparator((d1, d2) in pair()) {
        // Every ▶-better comparator must agree with strong dominance when
        // it holds (they are weaker orderings, not contradictory ones).
        if strongly_dominates(&d1, &d2) {
            prop_assert_eq!(CoverageComparator.compare(&d1, &d2), Preference::First);
            prop_assert_eq!(SpreadComparator.compare(&d1, &d2), Preference::First);
            prop_assert_eq!(
                HypervolumeComparator::default().compare(&d1, &d2),
                Preference::First
            );
            // Rank toward a point that dominates everything.
            let ideal = RankComparator::toward_uniform(25.0, d1.len());
            prop_assert_eq!(ideal.compare(&d1, &d2), Preference::First);
        }
    }

    // ------------------------------------------------------------------
    // Bias statistics.
    // ------------------------------------------------------------------
    #[test]
    fn gini_is_scale_invariant_and_bounded(d in (2usize..=12).prop_flat_map(vec_of)) {
        let g = gini(&d);
        prop_assert!((0.0..1.0).contains(&g));
        let scaled = PropertyVector::new(
            "s",
            d.values().iter().map(|x| x * 3.0).collect(),
        );
        prop_assert!((gini(&scaled) - g).abs() < 1e-9, "gini is scale-invariant");
    }

    #[test]
    fn bias_report_is_consistent(d in (1usize..=12).prop_flat_map(vec_of)) {
        let b = BiasReport::of(&d);
        prop_assert!(b.min <= b.mean + 1e-12);
        prop_assert!(b.mean <= b.max + 1e-12);
        prop_assert!(b.at_minimum > 0.0 && b.at_minimum <= 1.0);
        prop_assert!(b.std_dev >= 0.0);
        prop_assert!(b.disparity >= 1.0 - 1e-12);
    }

    // ------------------------------------------------------------------
    // ε-indicator (extension, from the paper's cited backbone [23]).
    // ------------------------------------------------------------------
    #[test]
    fn additive_epsilon_characterizes_weak_dominance((d1, d2) in pair()) {
        prop_assert_eq!(
            additive_epsilon_index(&d1, &d2) <= 0.0,
            weakly_dominates(&d1, &d2)
        );
    }

    #[test]
    fn additive_epsilon_triangle_inequality(
        (n, a, b, c) in (1usize..=10).prop_flat_map(|n| {
            (Just(n), vec_of(n), vec_of(n), vec_of(n))
        })
    ) {
        let _ = n;
        // I(a,c) ≤ I(a,b) + I(b,c): the indicator is a quasi-metric shift.
        let lhs = additive_epsilon_index(&a, &c);
        let rhs = additive_epsilon_index(&a, &b) + additive_epsilon_index(&b, &c);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn epsilon_comparator_agrees_with_strong_dominance((d1, d2) in pair()) {
        if strongly_dominates(&d1, &d2) {
            prop_assert_ne!(
                EpsilonComparator::default().compare(&d1, &d2),
                Preference::Second
            );
        }
    }

    // ------------------------------------------------------------------
    // Pareto machinery (extension, §7).
    // ------------------------------------------------------------------
    #[test]
    fn pareto_front_members_are_mutually_nondominated(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 3), 1..30)
    ) {
        let front = pareto_front(&points);
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!point_strongly_dominates(&points[i], &points[j]));
                }
            }
        }
        // Every non-front point is dominated by some front point… not
        // necessarily by a FRONT point directly? Yes: dominance is
        // transitive and the front is the set of maximal elements.
        for i in 0..points.len() {
            if !front.contains(&i) {
                prop_assert!(
                    points.iter().any(|p| point_strongly_dominates(p, &points[i]))
                );
            }
        }
    }

    #[test]
    fn non_dominated_sort_partitions_and_layers(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 2), 1..30)
    ) {
        let fronts = non_dominated_sort(&points);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, points.len());
        // First front equals pareto_front (as sets).
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        let mut pf = pareto_front(&points);
        pf.sort_unstable();
        prop_assert_eq!(f0, pf);
        // No point in front k+1 dominates a point in front k.
        for w in fronts.windows(2) {
            for &later in &w[1] {
                for &earlier in &w[0] {
                    prop_assert!(
                        !point_strongly_dominates(&points[later], &points[earlier])
                    );
                }
            }
        }
        // nsga2_order is a permutation.
        let mut order = nsga2_order(&points);
        order.sort_unstable();
        prop_assert_eq!(order, (0..points.len()).collect::<Vec<_>>());
    }

    // ------------------------------------------------------------------
    // Kendall tau (extension).
    // ------------------------------------------------------------------
    #[test]
    fn kendall_tau_bounds_and_symmetries(perm in proptest::sample::subsequence((0..8usize).collect::<Vec<_>>(), 8)) {
        // `perm` is 0..8 in order (subsequence of full length); shuffle it
        // deterministically instead via reversal and a swap.
        let identity: Vec<usize> = perm.clone();
        let mut reversed = identity.clone();
        reversed.reverse();
        prop_assert_eq!(kendall_tau(&identity, &identity), 1.0);
        prop_assert_eq!(kendall_tau(&identity, &reversed), -1.0);
        let tau = kendall_tau(&identity, &reversed);
        prop_assert!((-1.0..=1.0).contains(&tau));
        // Symmetry.
        prop_assert_eq!(
            kendall_tau(&identity, &reversed),
            kendall_tau(&reversed, &identity)
        );
    }

    // ------------------------------------------------------------------
    // Theorem 1 harness sanity.
    // ------------------------------------------------------------------
    #[test]
    fn projections_never_falsified(n in 2usize..=6, seed in 0u64..1000) {
        let fam = projection_family(n);
        prop_assert!(falsify(&fam, n, seed, 200).is_none());
    }
}
