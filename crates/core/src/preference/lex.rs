//! The ▶LEX-better comparator (paper §5.6).
//!
//! When weights are hard to elicit, properties can instead be ordered by
//! relevance. With a significance vector `ε = (ε₁, …, ε_r)`,
//! `P_LEX(Υ₁,Υ₂) = min { i : P(D₁ᵢ,D₂ᵢ) − P(D₂ᵢ,D₁ᵢ) > ε_i }`
//! is the first (most relevant) property on which `Υ₁` is significantly
//! superior, and `Υ₁ ▶LEX Υ₂ ⟺ P_LEX(Υ₁,Υ₂) < P_LEX(Υ₂,Υ₁)`.

use crate::comparators::Preference;
use crate::index::BinaryIndex;
use crate::preference::{assert_aligned, SetComparator};
use crate::vector::PropertySet;

/// The ▶LEX-better comparator. Property order in the sets **is** the
/// relevance order: index 0 is the most desirable property.
pub struct LexicographicComparator {
    epsilons: Vec<f64>,
    indices: Vec<Box<dyn BinaryIndex>>,
}

impl LexicographicComparator {
    /// Builds from per-property significance tolerances and binary indices,
    /// in relevance order.
    ///
    /// # Panics
    /// Panics if lengths differ, are empty, or any tolerance is negative.
    pub fn new(epsilons: Vec<f64>, indices: Vec<Box<dyn BinaryIndex>>) -> Self {
        assert_eq!(
            epsilons.len(),
            indices.len(),
            "one tolerance per property index"
        );
        assert!(!epsilons.is_empty(), "at least one property is required");
        assert!(
            epsilons.iter().all(|&e| e >= 0.0),
            "tolerances must be nonnegative"
        );
        LexicographicComparator { epsilons, indices }
    }

    /// Zero tolerances: any strict index difference is significant.
    pub fn strict(indices: Vec<Box<dyn BinaryIndex>>) -> Self {
        let r = indices.len();
        LexicographicComparator::new(vec![0.0; r], indices)
    }

    /// `P_LEX(s1, s2)`: the 1-based rank of the first property where `s1`
    /// is significantly superior, or `r + 1` when there is none.
    pub fn lex_value(&self, s1: &PropertySet, s2: &PropertySet) -> usize {
        assert_aligned(s1, s2, self.epsilons.len());
        for i in 0..self.epsilons.len() {
            let fwd = self.indices[i].value(s1.vector(i), s2.vector(i));
            let bwd = self.indices[i].value(s2.vector(i), s1.vector(i));
            if fwd - bwd > self.epsilons[i] {
                return i + 1;
            }
        }
        self.epsilons.len() + 1
    }
}

impl SetComparator for LexicographicComparator {
    fn name(&self) -> String {
        "LEX".into()
    }

    fn compare(&self, s1: &PropertySet, s2: &PropertySet) -> Preference {
        let fwd = self.lex_value(s1, s2);
        let bwd = self.lex_value(s2, s1);
        match fwd.cmp(&bwd) {
            std::cmp::Ordering::Less => Preference::First,
            std::cmp::Ordering::Greater => Preference::Second,
            std::cmp::Ordering::Equal => Preference::Tie,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparators::CoverageComparator;
    use crate::preference::test_support::paper_sets;

    fn cov_indices(r: usize) -> Vec<Box<dyn BinaryIndex>> {
        (0..r)
            .map(|_| Box::new(CoverageComparator) as Box<dyn BinaryIndex>)
            .collect()
    }

    #[test]
    fn privacy_first_ordering_prefers_t3b() {
        // Property order (privacy, utility): T3b is superior on privacy
        // (rank 1); T3a's first superiority is utility (rank 2).
        let (t3a, t3b) = paper_sets();
        let c = LexicographicComparator::strict(cov_indices(2));
        assert_eq!(c.lex_value(&t3b, &t3a), 1);
        assert_eq!(c.lex_value(&t3a, &t3b), 2);
        assert_eq!(c.compare(&t3b, &t3a), Preference::First);
        assert_eq!(c.compare(&t3a, &t3b), Preference::Second);
    }

    #[test]
    fn large_tolerance_suppresses_a_property() {
        // With ε₁ large enough, the privacy difference (1.0 − 0.3 = 0.7) is
        // no longer significant, so utility decides and T3a wins.
        let (t3a, t3b) = paper_sets();
        let c = LexicographicComparator::new(vec![0.8, 0.0], cov_indices(2));
        assert_eq!(c.lex_value(&t3b, &t3a), 3, "no significant superiority");
        assert_eq!(c.lex_value(&t3a, &t3b), 2, "utility at rank 2");
        assert_eq!(c.compare(&t3a, &t3b), Preference::First);
    }

    #[test]
    fn identical_sets_tie() {
        let (t3a, _) = paper_sets();
        let c = LexicographicComparator::strict(cov_indices(2));
        assert_eq!(c.compare(&t3a, &t3a.clone()), Preference::Tie);
        assert_eq!(c.lex_value(&t3a, &t3a.clone()), 3);
    }

    #[test]
    fn tolerance_edge_is_exclusive() {
        // The paper requires a difference strictly greater than ε.
        let (t3a, t3b) = paper_sets();
        let c = LexicographicComparator::new(vec![0.7, 0.0], cov_indices(2));
        // Privacy difference is exactly 0.7 → not significant.
        assert_eq!(c.lex_value(&t3b, &t3a), 3);
    }

    #[test]
    #[should_panic(expected = "one tolerance per property")]
    fn arity_mismatch_panics() {
        let _ = LexicographicComparator::new(vec![0.0], cov_indices(2));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_tolerance_panics() {
        let _ = LexicographicComparator::new(vec![-0.1, 0.0], cov_indices(2));
    }

    #[test]
    fn name() {
        assert_eq!(
            LexicographicComparator::strict(cov_indices(1)).name(),
            "LEX"
        );
    }
}
