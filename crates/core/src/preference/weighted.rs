//! The ▶WTD-better comparator (paper §5.5).
//!
//! `P_WTD(Υ₁,Υ₂) = Σ_i w_i · P(D₁ᵢ, D₂ᵢ)` with weights expressing the
//! relative importance of the `r` properties, and
//! `Υ₁ ▶WTD Υ₂ ⟺ P_WTD(Υ₁,Υ₂) > P_WTD(Υ₂,Υ₁)`. The paper notes "it is
//! advisable to normalize the P values before computing the weighted sum";
//! normalization is on by default and divides each ordered pair of index
//! values by their sum.

use crate::comparators::{prefer_higher, Preference};
use crate::index::{normalize_pair, BinaryIndex};
use crate::preference::{assert_aligned, SetComparator};
use crate::vector::PropertySet;

/// The ▶WTD-better comparator.
pub struct WeightedComparator {
    weights: Vec<f64>,
    indices: Vec<Box<dyn BinaryIndex>>,
    normalize: bool,
}

impl WeightedComparator {
    /// Builds a weighted comparator from per-property weights and binary
    /// indices. Weights must be positive; they are rescaled to sum to 1
    /// (the paper's `0 < w_i < 1`, `Σ w_i = 1` convention).
    ///
    /// # Panics
    /// Panics if `weights` and `indices` lengths differ, are empty, or any
    /// weight is not strictly positive.
    pub fn new(weights: Vec<f64>, indices: Vec<Box<dyn BinaryIndex>>) -> Self {
        assert_eq!(
            weights.len(),
            indices.len(),
            "one weight per property index"
        );
        assert!(!weights.is_empty(), "at least one property is required");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let weights = weights.into_iter().map(|w| w / total).collect();
        WeightedComparator {
            weights,
            indices,
            normalize: true,
        }
    }

    /// Equal weights over the given indices.
    pub fn equal(indices: Vec<Box<dyn BinaryIndex>>) -> Self {
        let r = indices.len();
        WeightedComparator::new(vec![1.0 / r as f64; r], indices)
    }

    /// Disables pre-weighting normalization of index values (use when all
    /// indices are already on a common scale, e.g. all coverage).
    pub fn without_normalization(mut self) -> Self {
        self.normalize = false;
        self
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `P_WTD` for both argument orders, as `(P_WTD(s1,s2), P_WTD(s2,s1))`.
    pub fn values(&self, s1: &PropertySet, s2: &PropertySet) -> (f64, f64) {
        assert_aligned(s1, s2, self.weights.len());
        let mut fwd = 0.0;
        let mut bwd = 0.0;
        for i in 0..self.weights.len() {
            let a = self.indices[i].value(s1.vector(i), s2.vector(i));
            let b = self.indices[i].value(s2.vector(i), s1.vector(i));
            let (a, b) = if self.normalize {
                normalize_pair(a, b)
            } else {
                (a, b)
            };
            fwd += self.weights[i] * a;
            bwd += self.weights[i] * b;
        }
        (fwd, bwd)
    }
}

impl SetComparator for WeightedComparator {
    fn name(&self) -> String {
        "WTD".into()
    }

    fn compare(&self, s1: &PropertySet, s2: &PropertySet) -> Preference {
        let (fwd, bwd) = self.values(s1, s2);
        prefer_higher(fwd, bwd, 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparators::CoverageComparator;
    use crate::preference::test_support::paper_sets;

    fn cov_indices(r: usize) -> Vec<Box<dyn BinaryIndex>> {
        (0..r)
            .map(|_| Box::new(CoverageComparator) as Box<dyn BinaryIndex>)
            .collect()
    }

    #[test]
    fn paper_equal_weights_tie() {
        // §5.5: "if equal weights are assigned to both privacy and utility,
        // then generalizations T3a and T3b are equally good."
        let (t3a, t3b) = paper_sets();
        let c = WeightedComparator::equal(cov_indices(2)).without_normalization();
        let (fwd, bwd) = c.values(&t3a, &t3b);
        // P_cov(p_a,p_b) = 0.3, P_cov(u_a,u_b) = 1.0 → 0.65 each way.
        assert!((fwd - 0.65).abs() < 1e-12);
        assert!((bwd - 0.65).abs() < 1e-12);
        assert_eq!(c.compare(&t3a, &t3b), Preference::Tie);
    }

    #[test]
    fn privacy_weight_breaks_the_tie_toward_t3b() {
        let (t3a, t3b) = paper_sets();
        let c = WeightedComparator::new(vec![0.8, 0.2], cov_indices(2)).without_normalization();
        assert_eq!(c.compare(&t3b, &t3a), Preference::First);
        assert_eq!(c.compare(&t3a, &t3b), Preference::Second);
    }

    #[test]
    fn utility_weight_breaks_the_tie_toward_t3a() {
        let (t3a, t3b) = paper_sets();
        let c = WeightedComparator::new(vec![0.2, 0.8], cov_indices(2)).without_normalization();
        assert_eq!(c.compare(&t3a, &t3b), Preference::First);
    }

    #[test]
    fn weights_are_rescaled() {
        let c = WeightedComparator::new(vec![2.0, 2.0], cov_indices(2));
        assert_eq!(c.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn normalization_keeps_values_in_unit_interval() {
        use crate::comparators::SpreadComparator;
        let (t3a, t3b) = paper_sets();
        let indices: Vec<Box<dyn BinaryIndex>> =
            vec![Box::new(SpreadComparator), Box::new(SpreadComparator)];
        let c = WeightedComparator::equal(indices);
        let (fwd, bwd) = c.values(&t3a, &t3b);
        assert!((0.0..=1.0).contains(&fwd));
        assert!((0.0..=1.0).contains(&bwd));
        assert!((fwd + bwd - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per property")]
    fn arity_mismatch_panics() {
        let _ = WeightedComparator::new(vec![1.0], cov_indices(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_panics() {
        let _ = WeightedComparator::new(vec![0.0, 1.0], cov_indices(2));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_sets_panic() {
        use crate::vector::{PropertySet, PropertyVector};
        let c = WeightedComparator::equal(cov_indices(1));
        let s1 = PropertySet::new("a", vec![PropertyVector::new("x", vec![1.0])]);
        let s2 = PropertySet::new("b", vec![PropertyVector::new("y", vec![1.0])]);
        let _ = c.compare(&s1, &s2);
    }

    #[test]
    fn name() {
        assert_eq!(WeightedComparator::equal(cov_indices(1)).name(), "WTD");
    }
}
