//! Preference-based comparison across multiple properties (paper §5.5–5.7).
//!
//! The four single-property comparators of §5.1–§5.4 cannot weigh, say,
//! privacy against utility. When an r-property anonymization induces a
//! *set* of property vectors, the paper proposes three preference schemes:
//! the weighted-sum comparator ▶WTD, the ε-lexicographic comparator ▶LEX,
//! and the goal-based comparator ▶GOAL. All three consume a per-property
//! [`BinaryIndex`](crate::index::BinaryIndex) (different indices may be
//! used for different properties).

mod goal;
mod lex;
mod weighted;

pub use goal::{GoalBasis, GoalComparator};
pub use lex::LexicographicComparator;
pub use weighted::WeightedComparator;

use crate::comparators::Preference;
use crate::vector::PropertySet;

/// An ordering operation on aligned property *sets* — the multi-property
/// analogue of [`Comparator`](crate::comparators::Comparator).
pub trait SetComparator {
    /// Display name, e.g. `"WTD"`.
    fn name(&self) -> String;

    /// Compares two aligned property sets.
    ///
    /// # Panics
    /// Implementations panic when the sets are not aligned (different
    /// properties or dimensions) or when the configuration arity does not
    /// match `r`.
    fn compare(&self, s1: &PropertySet, s2: &PropertySet) -> Preference;
}

pub(crate) fn assert_aligned(s1: &PropertySet, s2: &PropertySet, r: usize) {
    assert!(
        s1.aligned_with(s2),
        "property sets '{}' and '{}' are not aligned",
        s1.anonymization(),
        s2.anonymization()
    );
    assert_eq!(
        s1.r(),
        r,
        "comparator is configured for {} properties but the sets carry {}",
        r,
        s1.r()
    );
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::vector::{PropertySet, PropertyVector};

    /// The paper's §5.5 worked example: privacy (equivalence-class size)
    /// and Iyengar utility vectors for T3a and T3b.
    pub fn paper_sets() -> (PropertySet, PropertySet) {
        let pa = PropertyVector::from_usizes("priv", &[3, 3, 3, 3, 4, 4, 4, 3, 3, 4]);
        let pb = PropertyVector::from_usizes("priv", &[3, 7, 7, 3, 7, 7, 7, 3, 7, 7]);
        let ua = PropertyVector::new(
            "util",
            vec![2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6],
        );
        let ub = PropertyVector::new(
            "util",
            vec![2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97],
        );
        (
            PropertySet::new("T3a", vec![pa, ua]),
            PropertySet::new("T3b", vec![pb, ub]),
        )
    }
}
