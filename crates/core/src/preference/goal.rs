//! The ▶GOAL-better comparator (paper §5.7).
//!
//! When the competence of an anonymization is judged by its closeness to a
//! desirable level, a goal vector `G = (g₁, …, g_r)` specifies the target
//! value of each property's quality index, and
//! `P_GOAL(Υ₁,Υ₂) = Σ_i [P(D₁ᵢ,D₂ᵢ) − g_i]²`
//! is the sum-of-squares error; smaller is better:
//! `Υ₁ ▶GOAL Υ₂ ⟺ P_GOAL(Υ₁,Υ₂) < P_GOAL(Υ₂,Υ₁)`.
//!
//! The paper also allows **unary** indices in place of binary ones, with the
//! goal vector formulated from goal property vectors
//! `G = (P₁(D_g₁), …, P_r(D_g_r))`; [`GoalBasis::Unary`] implements that
//! variant.

use crate::comparators::{prefer_lower, Preference};
use crate::index::{BinaryIndex, UnaryIndex};
use crate::preference::{assert_aligned, SetComparator};
use crate::vector::{PropertySet, PropertyVector};

/// Whether goals are measured with binary or unary quality indices.
pub enum GoalBasis {
    /// `P_GOAL(Υ₁,Υ₂) = Σ (P(D₁ᵢ,D₂ᵢ) − gᵢ)²` — depends on the opponent.
    Binary(Vec<Box<dyn BinaryIndex>>),
    /// `P_GOAL(Υ₁) = Σ (Pᵢ(D₁ᵢ) − gᵢ)²` — opponent-independent.
    Unary(Vec<Box<dyn UnaryIndex>>),
}

impl GoalBasis {
    fn arity(&self) -> usize {
        match self {
            GoalBasis::Binary(v) => v.len(),
            GoalBasis::Unary(v) => v.len(),
        }
    }
}

/// The ▶GOAL-better comparator.
pub struct GoalComparator {
    goals: Vec<f64>,
    basis: GoalBasis,
}

impl GoalComparator {
    /// Builds from explicit goal values and an index basis.
    ///
    /// # Panics
    /// Panics if the number of goals differs from the number of indices or
    /// is zero.
    pub fn new(goals: Vec<f64>, basis: GoalBasis) -> Self {
        assert_eq!(goals.len(), basis.arity(), "one goal per property index");
        assert!(!goals.is_empty(), "at least one property is required");
        GoalComparator { goals, basis }
    }

    /// Formulates the goal vector from goal property vectors:
    /// `G = (P₁(D_g₁), …, P_r(D_g_r))` (§5.7), using unary indices.
    ///
    /// # Panics
    /// Panics if the arities differ or are zero.
    pub fn from_goal_vectors(
        indices: Vec<Box<dyn UnaryIndex>>,
        goal_vectors: &[PropertyVector],
    ) -> Self {
        assert_eq!(
            indices.len(),
            goal_vectors.len(),
            "one goal vector per index"
        );
        let goals = indices
            .iter()
            .zip(goal_vectors)
            .map(|(p, d)| p.value(d))
            .collect::<Vec<_>>();
        GoalComparator::new(goals, GoalBasis::Unary(indices))
    }

    /// The goal values.
    pub fn goals(&self) -> &[f64] {
        &self.goals
    }

    /// `P_GOAL` for both argument orders, as
    /// `(P_GOAL(s1[,s2]), P_GOAL(s2[,s1]))`.
    pub fn values(&self, s1: &PropertySet, s2: &PropertySet) -> (f64, f64) {
        assert_aligned(s1, s2, self.goals.len());
        match &self.basis {
            GoalBasis::Binary(indices) => {
                let mut fwd = 0.0;
                let mut bwd = 0.0;
                for (i, index) in indices.iter().enumerate() {
                    let a = index.value(s1.vector(i), s2.vector(i));
                    let b = index.value(s2.vector(i), s1.vector(i));
                    fwd += (a - self.goals[i]).powi(2);
                    bwd += (b - self.goals[i]).powi(2);
                }
                (fwd, bwd)
            }
            GoalBasis::Unary(indices) => {
                let score = |s: &PropertySet| {
                    indices
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (p.value(s.vector(i)) - self.goals[i]).powi(2))
                        .sum()
                };
                (score(s1), score(s2))
            }
        }
    }
}

impl SetComparator for GoalComparator {
    fn name(&self) -> String {
        "GOAL".into()
    }

    fn compare(&self, s1: &PropertySet, s2: &PropertySet) -> Preference {
        let (fwd, bwd) = self.values(s1, s2);
        prefer_lower(fwd, bwd, 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparators::CoverageComparator;
    use crate::index::classic::{MeanIndex, MinIndex};
    use crate::preference::test_support::paper_sets;

    #[test]
    fn binary_goal_prefers_full_coverage_when_goal_is_one() {
        // Goals (1, 1): wanting full coverage on both privacy and utility.
        // T3b reaches coverage 1.0 on privacy and 0.3 on utility →
        // error 0 + 0.49; T3a reaches 0.3 and 1.0 → same. A tie again —
        // the goal formulation mirrors the §5.5 symmetry.
        let (t3a, t3b) = paper_sets();
        let indices: Vec<Box<dyn BinaryIndex>> =
            vec![Box::new(CoverageComparator), Box::new(CoverageComparator)];
        let c = GoalComparator::new(vec![1.0, 1.0], GoalBasis::Binary(indices));
        let (fwd, bwd) = c.values(&t3a, &t3b);
        assert!((fwd - bwd).abs() < 1e-12);
        assert_eq!(c.compare(&t3a, &t3b), Preference::Tie);
    }

    #[test]
    fn asymmetric_binary_goal_breaks_ties() {
        // Goal 1.0 on privacy coverage only, 0.3 on utility: T3b matches
        // both goals exactly (errors 0), T3a misses both.
        let (t3a, t3b) = paper_sets();
        let indices: Vec<Box<dyn BinaryIndex>> =
            vec![Box::new(CoverageComparator), Box::new(CoverageComparator)];
        let c = GoalComparator::new(vec![1.0, 0.3], GoalBasis::Binary(indices));
        let (fwd, bwd) = c.values(&t3b, &t3a);
        assert!(fwd < bwd);
        assert_eq!(c.compare(&t3b, &t3a), Preference::First);
    }

    #[test]
    fn unary_goal_with_k_and_average_utility() {
        // Property 0 (privacy) judged by its minimum, property 1 (utility)
        // by its mean. Targets: k = 4 and mean utility 1.7.
        //   T3b: min 3, mean utility (2.03·3 + 0.97·7)/10 = 1.288
        //        → error 1 + (1.288 − 1.7)² ≈ 1.169744
        //   T3a: min 3, mean utility (2.03·3 + 1.7·3 + 1.6·4)/10 = 1.759
        //        → error 1 + (1.759 − 1.7)² ≈ 1.003481
        // T3a is closer to the goals.
        let (t3a, t3b) = paper_sets();
        let indices: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex), Box::new(MeanIndex)];
        let c = GoalComparator::new(vec![4.0, 1.7], GoalBasis::Unary(indices));
        let (fwd, bwd) = c.values(&t3a, &t3b);
        assert!((fwd - 1.003481).abs() < 1e-6, "got {fwd}");
        assert!((bwd - 1.169744).abs() < 1e-6, "got {bwd}");
        assert_eq!(c.compare(&t3a, &t3b), Preference::First);
    }

    #[test]
    fn goals_from_goal_vectors() {
        // Goal property vectors: uniform class size 5 on both properties.
        let goal = PropertyVector::new("priv", vec![5.0; 10]);
        let goal2 = PropertyVector::new("util", vec![2.0; 10]);
        let indices: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex), Box::new(MeanIndex)];
        let c = GoalComparator::from_goal_vectors(indices, &[goal, goal2]);
        assert_eq!(c.goals(), &[5.0, 2.0]);
    }

    #[test]
    fn identical_sets_tie() {
        let (t3a, _) = paper_sets();
        let indices: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex), Box::new(MeanIndex)];
        let c = GoalComparator::new(vec![3.0, 3.0], GoalBasis::Unary(indices));
        assert_eq!(c.compare(&t3a, &t3a.clone()), Preference::Tie);
    }

    #[test]
    #[should_panic(expected = "one goal per property")]
    fn arity_mismatch_panics() {
        let indices: Vec<Box<dyn BinaryIndex>> = vec![Box::new(CoverageComparator)];
        let _ = GoalComparator::new(vec![1.0, 2.0], GoalBasis::Binary(indices));
    }

    #[test]
    fn name() {
        let indices: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex)];
        assert_eq!(
            GoalComparator::new(vec![1.0], GoalBasis::Unary(indices)).name(),
            "GOAL"
        );
    }
}
