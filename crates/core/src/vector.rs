//! Property vectors and r-property anonymization views.
//!
//! *Definition 1 (Property Vector).* "A property vector `D` for a data set
//! of size `N` is an `N`-dimensional vector `(d_1, …, d_N)` with `d_i ∈ ℝ`
//! specifying a measure of a property for the `i`-th tuple of the data set."
//!
//! *Definition 2 (r-Property Anonymization).* An anonymization viewed
//! through a pre-specified set of `r` properties, inducing `r` property
//! vectors. [`PropertySet`] is that induced set.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

/// An `N`-dimensional vector of per-tuple property measurements
/// (paper Definition 1).
///
/// By the paper's §5 convention, a **higher component value is better**;
/// property extractors negate or invert lower-is-better measurements before
/// constructing a vector (see
/// [`Property::extract`](crate::properties::Property::extract)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyVector {
    name: String,
    values: Vec<f64>,
}

impl PropertyVector {
    /// Wraps per-tuple measurements under a property name.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        PropertyVector {
            name: name.into(),
            values,
        }
    }

    /// Builds from integer measurements (e.g. equivalence-class sizes).
    pub fn from_usizes(name: impl Into<String>, values: &[usize]) -> Self {
        PropertyVector::new(name, values.iter().map(|&v| v as f64).collect())
    }

    /// The property name this vector measures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension `N` (dataset size).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying component slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates components.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Minimum component (`NaN`-free input assumed); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum component; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Sum of components.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Euclidean distance to another vector of the same dimension.
    ///
    /// # Panics
    /// Panics if dimensions differ (property vectors under comparison always
    /// come from anonymizations of the same dataset, per §3).
    pub fn euclidean_distance(&self, other: &PropertyVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "property vectors must have equal dimension to be compared"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Component-wise negation: converts a lower-is-better measurement to
    /// the higher-is-better convention.
    pub fn negated(&self) -> PropertyVector {
        PropertyVector {
            name: format!("-{}", self.name),
            values: self.values.iter().map(|v| -v).collect(),
        }
    }

    /// Renames the vector, preserving values.
    pub fn renamed(mut self, name: impl Into<String>) -> PropertyVector {
        self.name = name.into();
        self
    }
}

impl Index<usize> for PropertyVector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl fmt::Display for PropertyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = (", self.name)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if (v.fract()).abs() < 1e-9 {
                write!(f, "{}", *v as i64)?;
            } else {
                write!(f, "{v:.3}")?;
            }
        }
        write!(f, ")")
    }
}

/// The set of `r` property vectors induced by an r-property anonymization
/// (paper Definition 2), in a fixed property order shared by all
/// anonymizations under comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertySet {
    anonymization: String,
    vectors: Vec<PropertyVector>,
}

impl PropertySet {
    /// Wraps the vectors induced on one anonymization.
    pub fn new(anonymization: impl Into<String>, vectors: Vec<PropertyVector>) -> Self {
        PropertySet {
            anonymization: anonymization.into(),
            vectors,
        }
    }

    /// The anonymization's display name.
    pub fn anonymization(&self) -> &str {
        &self.anonymization
    }

    /// `r`, the number of properties.
    pub fn r(&self) -> usize {
        self.vectors.len()
    }

    /// The property vectors, in property order.
    pub fn vectors(&self) -> &[PropertyVector] {
        &self.vectors
    }

    /// The `i`-th property vector.
    pub fn vector(&self, i: usize) -> &PropertyVector {
        &self.vectors[i]
    }

    /// Whether two sets are aligned for comparison: same `r`, same property
    /// names in the same order, same dimension.
    pub fn aligned_with(&self, other: &PropertySet) -> bool {
        self.r() == other.r()
            && self
                .vectors
                .iter()
                .zip(&other.vectors)
                .all(|(a, b)| a.name() == b.name() && a.len() == b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn basic_statistics() {
        let d = v(&[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]);
        assert_eq!(d.len(), 10);
        assert_eq!(d.min(), Some(3.0));
        assert_eq!(d.max(), Some(4.0));
        // The paper's P_s-avg example: 3.4 for T3a.
        assert!((d.mean().unwrap() - 3.4).abs() < 1e-12);
        assert_eq!(d.sum(), 34.0);
        assert_eq!(d[4], 4.0);
    }

    #[test]
    fn empty_vector_statistics() {
        let d = v(&[]);
        assert!(d.is_empty());
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
        assert_eq!(d.mean(), None);
        assert_eq!(d.sum(), 0.0);
    }

    #[test]
    fn from_usizes_converts() {
        let d = PropertyVector::from_usizes("s", &[3, 7, 7]);
        assert_eq!(d.values(), &[3.0, 7.0, 7.0]);
        assert_eq!(d.name(), "s");
    }

    #[test]
    fn euclidean_distance() {
        let a = v(&[0.0, 3.0]);
        let b = v(&[4.0, 0.0]);
        assert!((a.euclidean_distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.euclidean_distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn distance_dimension_mismatch_panics() {
        let _ = v(&[1.0]).euclidean_distance(&v(&[1.0, 2.0]));
    }

    #[test]
    fn negation_flips_orientation() {
        let d = v(&[1.0, -2.0]).negated();
        assert_eq!(d.values(), &[-1.0, 2.0]);
        assert_eq!(d.name(), "-p");
    }

    #[test]
    fn display_renders_integers_compactly() {
        let d = PropertyVector::new("s", vec![3.0, 7.0]);
        assert_eq!(d.to_string(), "s = (3, 7)");
        let d = PropertyVector::new("u", vec![2.03]);
        assert_eq!(d.to_string(), "u = (2.030)");
    }

    #[test]
    fn property_set_alignment() {
        let s1 = PropertySet::new(
            "T3a",
            vec![
                PropertyVector::new("priv", vec![1.0]),
                PropertyVector::new("util", vec![2.0]),
            ],
        );
        let s2 = PropertySet::new(
            "T3b",
            vec![
                PropertyVector::new("priv", vec![3.0]),
                PropertyVector::new("util", vec![4.0]),
            ],
        );
        assert!(s1.aligned_with(&s2));
        assert_eq!(s1.r(), 2);
        assert_eq!(s1.anonymization(), "T3a");
        assert_eq!(s1.vector(1).values(), &[2.0]);

        let s3 = PropertySet::new("x", vec![PropertyVector::new("other", vec![1.0])]);
        assert!(!s1.aligned_with(&s3));
        let s4 = PropertySet::new(
            "y",
            vec![
                PropertyVector::new("priv", vec![1.0, 2.0]),
                PropertyVector::new("util", vec![1.0, 2.0]),
            ],
        );
        assert!(!s1.aligned_with(&s4));
    }

    #[test]
    fn renamed_preserves_values() {
        let d = v(&[1.0]).renamed("q");
        assert_eq!(d.name(), "q");
        assert_eq!(d.values(), &[1.0]);
    }
}
