//! Query-workload utility: how well an anonymized release answers
//! aggregate queries.
//!
//! §6 motivates Mondrian-style multidimensional recoding as "often
//! advantageous in answering queries with predicates on more than just one
//! attribute"; this module makes that measurable. A [`Workload`] of random
//! COUNT(*) range queries over the quasi-identifiers is evaluated on the
//! original data (ground truth) and *estimated* on a release under the
//! standard uniform-intra-region assumption: a generalized cell
//! contributes the fraction of its region that overlaps the query. The
//! per-query relative errors summarize downstream analytical utility, and
//! [`Workload::tuple_error_vector`] decomposes the error per tuple so the
//! paper's comparators apply to query utility just like to any other
//! property.

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Domain, GenValue, Value};

use crate::theory::SplitMix64;
use crate::vector::PropertyVector;

/// A conjunctive range predicate over quasi-identifier columns:
/// `(column, lo, hi)` with the half-open convention `lo < v ≤ hi`;
/// categorical columns use `(lo, hi]` over category ids.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeQuery {
    /// The conjuncts, one per involved column.
    pub predicates: Vec<(usize, i64, i64)>,
}

impl RangeQuery {
    /// Whether a raw tuple of `dataset` matches the query.
    pub fn matches(&self, dataset: &Dataset, tuple: usize) -> bool {
        self.predicates
            .iter()
            .all(|&(col, lo, hi)| match dataset.value(tuple, col) {
                Value::Int(v) => lo < *v && *v <= hi,
                Value::Cat(c) => lo < *c as i64 && (*c as i64) <= hi,
            })
    }

    /// The exact COUNT(*) answer on the original data.
    pub fn true_count(&self, dataset: &Dataset) -> f64 {
        (0..dataset.len())
            .filter(|&t| self.matches(dataset, t))
            .count() as f64
    }

    /// The estimated COUNT(*) on a release: each tuple contributes the
    /// product over predicates of the overlap fraction between its
    /// generalized cell region and the predicate interval (uniform
    /// intra-region assumption).
    pub fn estimated_count(&self, table: &AnonymizedTable) -> f64 {
        (0..table.len())
            .map(|t| self.tuple_contribution(table, t))
            .sum()
    }

    /// One tuple's estimated membership probability in `[0, 1]`.
    pub fn tuple_contribution(&self, table: &AnonymizedTable, tuple: usize) -> f64 {
        let ds = table.dataset();
        self.predicates
            .iter()
            .map(|&(col, lo, hi)| cell_overlap(ds, col, table.cell(tuple, col), lo, hi))
            .product()
    }
}

/// Overlap fraction of a generalized cell's region with `(lo, hi]`.
fn cell_overlap(ds: &Dataset, col: usize, gv: &GenValue, lo: i64, hi: i64) -> f64 {
    let attr = ds.schema().attribute(col);
    match gv {
        GenValue::Int(v) => {
            if lo < *v && *v <= hi {
                1.0
            } else {
                0.0
            }
        }
        GenValue::Cat(c) => {
            let v = *c as i64;
            if lo < v && v <= hi {
                1.0
            } else {
                0.0
            }
        }
        GenValue::Interval { lo: clo, hi: chi } => {
            let width = (chi - clo) as f64;
            if width <= 0.0 {
                return 0.0;
            }
            let overlap = ((*chi).min(hi) - (*clo).max(lo)).max(0);
            overlap as f64 / width
        }
        GenValue::Node(n) => {
            // Fraction of the node's leaves whose category id lies in the
            // interval.
            match attr.hierarchy().and_then(|h| h.as_taxonomy()) {
                Some(tax) => {
                    let leaves = tax.leaf_cats_under(*n);
                    if leaves.is_empty() {
                        return 0.0;
                    }
                    let inside = leaves
                        .iter()
                        .filter(|&&c| lo < c as i64 && (c as i64) <= hi)
                        .count();
                    inside as f64 / leaves.len() as f64
                }
                None => 0.0,
            }
        }
        GenValue::Suppressed => {
            // Full-domain region.
            match attr.domain() {
                Domain::Integer { min, max } => {
                    let span = (max - min + 1) as f64;
                    let o = ((*max).min(hi) - (min - 1).max(lo)).max(0);
                    o as f64 / span
                }
                Domain::Categorical { labels } => {
                    let n = labels.len() as f64;
                    if n == 0.0 {
                        return 0.0;
                    }
                    let inside = (0..labels.len() as i64)
                        .filter(|&c| lo < c && c <= hi)
                        .count();
                    inside as f64 / n
                }
            }
        }
    }
}

/// A deterministic workload of random conjunctive range queries.
///
/// ```
/// use anoncmp_core::prelude::*;
/// use anoncmp_microdata::prelude::*;
///
/// let schema = Schema::new(vec![
///     Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
///         .with_hierarchy(IntervalLadder::uniform(0, &[10]).unwrap().into())
///         .unwrap(),
///     Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
/// ]).unwrap();
/// let ds = Dataset::new(schema.clone(), vec![
///     vec![Value::Int(12), Value::Cat(0)],
///     vec![Value::Int(15), Value::Cat(1)],
/// ]).unwrap();
///
/// // The raw release answers any workload exactly.
/// let raw = AnonymizedTable::identity(ds.clone(), "raw");
/// let workload = Workload::random(&ds, 25, 1, 0.3, 42);
/// assert_eq!(workload.mean_relative_error(&raw), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<RangeQuery>,
}

impl Workload {
    /// Wraps explicit queries.
    pub fn new(queries: Vec<RangeQuery>) -> Self {
        Workload { queries }
    }

    /// Generates `count` random queries, each constraining `dims` randomly
    /// chosen quasi-identifier columns with ranges covering roughly
    /// `selectivity` of each column's domain. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if the schema has no quasi-identifiers, `dims` is zero, or
    /// `selectivity` is outside `(0, 1]`.
    pub fn random(
        dataset: &Dataset,
        count: usize,
        dims: usize,
        selectivity: f64,
        seed: u64,
    ) -> Self {
        let qi = dataset.schema().quasi_identifiers();
        assert!(!qi.is_empty(), "workload needs quasi-identifier columns");
        assert!(dims >= 1, "queries need at least one predicate");
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        let mut rng = SplitMix64::new(seed);
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut predicates = Vec::with_capacity(dims);
            for _ in 0..dims.min(qi.len()) {
                let col = qi[(rng.next_u64() as usize) % qi.len()];
                let (dom_lo, dom_hi) = match dataset.schema().attribute(col).domain() {
                    Domain::Integer { min, max } => (*min, *max),
                    Domain::Categorical { labels } => (0, labels.len() as i64 - 1),
                };
                let span = (dom_hi - dom_lo).max(1) as f64;
                let width = (span * selectivity).max(1.0) as i64;
                let start = dom_lo - 1 + (rng.next_f64() * (span - width as f64).max(0.0)) as i64;
                predicates.push((col, start, start + width));
            }
            queries.push(RangeQuery { predicates });
        }
        Workload { queries }
    }

    /// The queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Per-query relative errors `|est − true| / max(true, 1)` of a
    /// release against the original data.
    pub fn relative_errors(&self, table: &AnonymizedTable) -> Vec<f64> {
        let ds = table.dataset();
        self.queries
            .iter()
            .map(|q| {
                let truth = q.true_count(ds);
                let est = q.estimated_count(table);
                (est - truth).abs() / truth.max(1.0)
            })
            .collect()
    }

    /// Mean relative error over the workload (the classical scalar
    /// query-utility summary; lower is better).
    pub fn mean_relative_error(&self, table: &AnonymizedTable) -> f64 {
        let errs = self.relative_errors(table);
        if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    /// Per-tuple query-utility property vector: for each tuple, the summed
    /// absolute difference between its estimated and true membership over
    /// the workload, negated (higher is better). This decomposes workload
    /// error by individual, making query utility a property in the paper's
    /// sense.
    pub fn tuple_error_vector(&self, table: &AnonymizedTable) -> PropertyVector {
        let ds = table.dataset();
        let v: Vec<f64> = (0..table.len())
            .map(|t| {
                let err: f64 = self
                    .queries
                    .iter()
                    .map(|q| {
                        let truth = if q.matches(ds, t) { 1.0 } else { 0.0 };
                        (q.tuple_contribution(table, t) - truth).abs()
                    })
                    .sum();
                -err
            })
            .collect();
        PropertyVector::new("-query-error", v)
    }
}

/// [`Property`](crate::properties::Property) adapter for query utility:
/// wraps a [`Workload`] so per-tuple query error participates in
/// [`induce_property_set`](crate::properties::induce_property_set) and the
/// multi-property preference schemes like any other property.
#[derive(Debug, Clone)]
pub struct QueryUtility {
    workload: Workload,
}

impl QueryUtility {
    /// Wraps a workload.
    pub fn new(workload: Workload) -> Self {
        QueryUtility { workload }
    }

    /// The wrapped workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }
}

impl crate::properties::Property for QueryUtility {
    fn name(&self) -> String {
        "-query-error".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        self.workload.tuple_error_vector(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use anoncmp_microdata::prelude::*;

    fn fixture() -> (Arc<Dataset>, AnonymizedTable) {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(IntervalLadder::uniform(0, &[10]).unwrap().into())
                .unwrap(),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(12), Value::Cat(0)],
                vec![Value::Int(15), Value::Cat(1)],
                vec![Value::Int(18), Value::Cat(0)],
                vec![Value::Int(25), Value::Cat(1)],
            ],
        )
        .unwrap();
        let t = Lattice::new(schema).unwrap().apply(&ds, &[1], "t").unwrap();
        (ds, t)
    }

    #[test]
    fn true_counts() {
        let (ds, _) = fixture();
        // (10, 20]: ages 12, 15, 18.
        let q = RangeQuery {
            predicates: vec![(0, 10, 20)],
        };
        assert_eq!(q.true_count(&ds), 3.0);
        // (14, 15]: age 15 only (half-open).
        let q = RangeQuery {
            predicates: vec![(0, 14, 15)],
        };
        assert_eq!(q.true_count(&ds), 1.0);
    }

    #[test]
    fn estimation_on_exact_buckets_is_exact() {
        let (_, t) = fixture();
        // Query aligned with the release's buckets: (10,20] matches the
        // first class's interval exactly.
        let q = RangeQuery {
            predicates: vec![(0, 10, 20)],
        };
        assert!((q.estimated_count(&t) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn estimation_on_partial_overlap_is_proportional() {
        let (_, t) = fixture();
        // (10, 15] overlaps half of (10,20]: three tuples contribute 0.5.
        let q = RangeQuery {
            predicates: vec![(0, 10, 15)],
        };
        assert!((q.estimated_count(&t) - 1.5).abs() < 1e-12);
        // Truth is 2 (ages 12, 15): relative error |1.5 − 2| / 2 = 0.25.
        let w = Workload::new(vec![q]);
        let errs = w.relative_errors(&t);
        assert!((errs[0] - 0.25).abs() < 1e-12);
        assert!((w.mean_relative_error(&t) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn raw_release_answers_exactly() {
        let (ds, _) = fixture();
        let raw = AnonymizedTable::identity(ds.clone(), "raw");
        let w = Workload::random(&ds, 20, 1, 0.3, 99);
        assert!(w.mean_relative_error(&raw) < 1e-12);
        // Per-tuple error vector is all zeros.
        let v = w.tuple_error_vector(&raw);
        assert!(v.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn coarser_releases_answer_worse_on_average() {
        let (ds, t1) = fixture();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let t2 = lattice.apply(&ds, &[2], "coarse").unwrap();
        let w = Workload::random(&ds, 50, 1, 0.25, 7);
        let fine = w.mean_relative_error(&t1);
        let coarse = w.mean_relative_error(&t2);
        assert!(coarse >= fine - 1e-9, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn suppressed_cells_use_domain_fractions() {
        let (ds, _) = fixture();
        let sup = AnonymizedTable::fully_suppressed(ds, "sup");
        // (0, 50] covers half the 0..=100 domain; wait: span 101, overlap
        // (0,50] ∩ (-1,100] → 50 values of 101.
        let q = RangeQuery {
            predicates: vec![(0, 0, 50)],
        };
        let est = q.estimated_count(&sup);
        assert!((est - 4.0 * 50.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn workload_generation_is_deterministic_and_valid() {
        let (ds, _) = fixture();
        let w1 = Workload::random(&ds, 10, 1, 0.5, 42);
        let w2 = Workload::random(&ds, 10, 1, 0.5, 42);
        assert_eq!(w1.queries(), w2.queries());
        for q in w1.queries() {
            for &(col, lo, hi) in &q.predicates {
                assert_eq!(col, 0, "only QI columns");
                assert!(lo < hi);
            }
        }
        let w3 = Workload::random(&ds, 10, 1, 0.5, 43);
        assert_ne!(w1.queries(), w3.queries());
    }

    #[test]
    fn tuple_error_vector_is_nonpositive_and_bounded() {
        let (ds, t) = fixture();
        let w = Workload::random(&ds, 30, 1, 0.4, 5);
        let v = w.tuple_error_vector(&t);
        for x in v.iter() {
            assert!(x <= 1e-12);
            assert!(x >= -(w.queries().len() as f64));
        }
    }

    #[test]
    fn query_utility_is_a_property() {
        use crate::properties::{induce_property_set, EqClassSize, Property};
        let (ds, t) = fixture();
        let w = Workload::random(&ds, 10, 1, 0.4, 3);
        let qp = QueryUtility::new(w.clone());
        assert_eq!(qp.workload().queries().len(), 10);
        let v = qp.extract(&t);
        assert_eq!(v.values(), w.tuple_error_vector(&t).values());
        let set = induce_property_set(&t, &[&EqClassSize, &qp]);
        assert_eq!(set.r(), 2);
        assert_eq!(set.vector(1).name(), "-query-error");
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn bad_selectivity_rejected() {
        let (ds, _) = fixture();
        let _ = Workload::random(&ds, 1, 1, 0.0, 1);
    }
}
