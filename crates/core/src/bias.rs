//! Quantifying anonymization bias (paper §2).
//!
//! "The scalar or aggregate value used in privacy models is often biased
//! towards a fraction of the data set, resulting in higher privacy for some
//! individuals and minimalistic for others. Consequently, …, there is a
//! need to formalize and measure this bias."
//!
//! A [`BiasReport`] summarizes how unevenly a property is distributed over
//! the tuples of one anonymization: dispersion statistics, the Gini
//! coefficient, Lorenz-curve samples, and the fraction of tuples pinned at
//! the minimum (the tuples for which the scalar model's guarantee is
//! tight).

use serde::{Deserialize, Serialize};

use crate::vector::PropertyVector;

/// Distribution summary of one property vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasReport {
    /// Minimum component (the scalar guarantee, e.g. `k`).
    pub min: f64,
    /// Maximum component.
    pub max: f64,
    /// Mean component.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Gini coefficient in `[0, 1)`: 0 = perfectly even (no bias).
    /// Only meaningful for nonnegative measurements.
    pub gini: f64,
    /// Fraction of tuples whose value equals the minimum — the tuples
    /// receiving only the minimal guarantee.
    pub at_minimum: f64,
    /// Ratio `max / min` (∞ when `min` is 0): the privacy disparity between
    /// the most- and least-protected individuals.
    pub disparity: f64,
}

impl BiasReport {
    /// Computes the report for a property vector.
    ///
    /// ```
    /// use anoncmp_core::prelude::*;
    /// // T3b protects 3 tuples at exactly k = 3 and 7 tuples at 7.
    /// let t3b = PropertyVector::from_usizes("s", &[3, 7, 7, 3, 7, 7, 7, 3, 7, 7]);
    /// let bias = BiasReport::of(&t3b);
    /// assert_eq!(bias.min, 3.0);
    /// assert_eq!(bias.at_minimum, 0.3); // only 30% get the scalar guarantee
    /// ```
    ///
    /// # Panics
    /// Panics on an empty vector.
    pub fn of(d: &PropertyVector) -> BiasReport {
        assert!(!d.is_empty(), "bias report of an empty vector is undefined");
        let n = d.len() as f64;
        let min = d.min().expect("non-empty");
        let max = d.max().expect("non-empty");
        let mean = d.mean().expect("non-empty");
        let var = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let at_minimum = d.iter().filter(|&x| x == min).count() as f64 / n;
        let disparity = if min == 0.0 { f64::INFINITY } else { max / min };
        BiasReport {
            min,
            max,
            mean,
            std_dev: var.sqrt(),
            gini: gini(d),
            at_minimum,
            disparity,
        }
    }
}

/// Gini coefficient of a nonnegative property vector: a standard inequality
/// measure; 0 means every tuple enjoys the same property value (no
/// anonymization bias), values toward 1 mean the property is concentrated
/// on few tuples.
///
/// # Panics
/// Panics on an empty vector or negative components.
pub fn gini(d: &PropertyVector) -> f64 {
    assert!(!d.is_empty(), "gini of an empty vector is undefined");
    assert!(
        d.iter().all(|x| x >= 0.0),
        "gini requires nonnegative values"
    );
    let n = d.len() as f64;
    let mut sorted: Vec<f64> = d.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("property values are not NaN"));
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_(i) − (n+1) Σ x) / (n Σ x), with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted - (n + 1.0) * total) / (n * total)
}

/// Samples the Lorenz curve of a nonnegative property vector at `points`
/// evenly spaced population fractions (plus the origin): element `i` is
/// `(population fraction, cumulative property share)`.
///
/// # Panics
/// Panics on an empty vector, negative components, or `points == 0`.
pub fn lorenz_curve(d: &PropertyVector, points: usize) -> Vec<(f64, f64)> {
    assert!(
        !d.is_empty(),
        "lorenz curve of an empty vector is undefined"
    );
    assert!(points > 0, "need at least one sample point");
    assert!(
        d.iter().all(|x| x >= 0.0),
        "lorenz curve requires nonnegative values"
    );
    let mut sorted: Vec<f64> = d.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("property values are not NaN"));
    let total: f64 = sorted.iter().sum();
    let n = sorted.len();
    let mut cumulative = vec![0.0; n + 1];
    for (i, x) in sorted.iter().enumerate() {
        cumulative[i + 1] = cumulative[i] + x;
    }
    (0..=points)
        .map(|p| {
            let frac = p as f64 / points as f64;
            let idx = ((frac * n as f64).round() as usize).min(n);
            let share = if total == 0.0 {
                frac
            } else {
                cumulative[idx] / total
            };
            (frac, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn uniform_vector_has_no_bias() {
        let r = BiasReport::of(&v(&[4.0; 10]));
        assert_eq!(r.min, 4.0);
        assert_eq!(r.max, 4.0);
        assert_eq!(r.mean, 4.0);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.gini, 0.0);
        assert_eq!(r.at_minimum, 1.0);
        assert_eq!(r.disparity, 1.0);
    }

    #[test]
    fn paper_t3b_bias_profile() {
        // T3b: 3 tuples at the scalar guarantee k=3, 7 tuples at 7.
        let r = BiasReport::of(&v(&[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]));
        assert_eq!(r.min, 3.0);
        assert_eq!(r.max, 7.0);
        assert!((r.mean - 5.8).abs() < 1e-12);
        assert!((r.at_minimum - 0.3).abs() < 1e-12);
        assert!((r.disparity - 7.0 / 3.0).abs() < 1e-12);
        assert!(r.gini > 0.0 && r.gini < 1.0);
    }

    #[test]
    fn gini_ordering_reflects_concentration() {
        // More concentrated distributions have higher Gini.
        let even = gini(&v(&[5.0, 5.0, 5.0, 5.0]));
        let mild = gini(&v(&[4.0, 5.0, 5.0, 6.0]));
        let harsh = gini(&v(&[1.0, 1.0, 1.0, 17.0]));
        assert_eq!(even, 0.0);
        assert!(mild > even);
        assert!(harsh > mild);
        assert!(harsh < 1.0);
    }

    #[test]
    fn gini_known_value() {
        // For (1, 3): G = (2·(1·1 + 2·3) − 3·4) / (2·4) = (14 − 12)/8 = 0.25.
        assert!((gini(&v(&[1.0, 3.0])) - 0.25).abs() < 1e-12);
        // Order-invariant.
        assert!((gini(&v(&[3.0, 1.0])) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_zero_vector_has_zero_gini() {
        assert_eq!(gini(&v(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn lorenz_curve_shape() {
        let curve = lorenz_curve(&v(&[1.0, 1.0, 2.0, 4.0]), 4);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], (0.0, 0.0));
        assert_eq!(curve[4], (1.0, 1.0));
        // Curve is convex and below the diagonal for unequal data.
        for (frac, share) in &curve[1..4] {
            assert!(share <= frac, "Lorenz curve lies under the diagonal");
        }
        // Monotone.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn lorenz_of_zero_vector_is_diagonal() {
        let curve = lorenz_curve(&v(&[0.0, 0.0]), 2);
        assert_eq!(curve, vec![(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_vector_panics() {
        let _ = BiasReport::of(&v(&[]));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_values_panic_for_gini() {
        let _ = gini(&v(&[-1.0, 1.0]));
    }
}
