//! Re-identification risk analysis.
//!
//! §1 frames per-tuple privacy as "probability of privacy breach": under
//! the standard prosecutor model an adversary who knows a target is in the
//! release and knows its quasi-identifier re-identifies it with
//! probability `1 / |EC(t)|`. This module aggregates those probabilities
//! into the risk summaries disclosure-control practice reports
//! (prosecutor/journalist risk, expected re-identifications, records at
//! risk) — the operational reading of the paper's per-tuple privacy
//! vectors.

use anoncmp_microdata::prelude::AnonymizedTable;
use serde::{Deserialize, Serialize};

use crate::vector::PropertyVector;

/// Risk summary of one anonymized release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskReport {
    /// Highest per-tuple re-identification probability (prosecutor risk of
    /// the most exposed record) — `1 / k` for a k-anonymous release.
    pub max_risk: f64,
    /// Average per-tuple re-identification probability.
    pub mean_risk: f64,
    /// Expected number of correct re-identifications if the adversary
    /// targets everyone: `Σ_t 1 / |EC(t)|` — equal to the number of
    /// equivalence classes.
    pub expected_reidentifications: f64,
    /// Fraction of records whose risk strictly exceeds the threshold the
    /// report was built with.
    pub at_risk_fraction: f64,
    /// The threshold used for `at_risk_fraction`.
    pub threshold: f64,
}

impl RiskReport {
    /// Builds the report for `table`, flagging records whose risk exceeds
    /// `threshold` (e.g. `0.2` for the common "k ≥ 5" policy).
    ///
    /// # Panics
    /// Panics on an empty table or a threshold outside `(0, 1]`.
    pub fn of(table: &AnonymizedTable, threshold: f64) -> RiskReport {
        assert!(
            !table.is_empty(),
            "risk report of an empty release is undefined"
        );
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be a probability in (0, 1]"
        );
        let risks = per_tuple_risk(table);
        let n = risks.len() as f64;
        let max_risk = risks.max().expect("non-empty");
        let sum = risks.sum();
        let at_risk = risks.iter().filter(|&r| r > threshold + 1e-12).count() as f64;
        RiskReport {
            max_risk,
            mean_risk: sum / n,
            expected_reidentifications: sum,
            at_risk_fraction: at_risk / n,
            threshold,
        }
    }
}

/// The per-tuple prosecutor risk vector `1 / |EC(t)|` (lower is better;
/// this is the *raw* orientation, mirroring
/// [`BreachProbability::raw`](crate::properties::BreachProbability::raw)).
pub fn per_tuple_risk(table: &AnonymizedTable) -> PropertyVector {
    let v: Vec<f64> = (0..table.len())
        .map(|t| 1.0 / table.classes().class_size_of(t) as f64)
        .collect();
    PropertyVector::new("prosecutor-risk", v)
}

#[cfg(test)]
mod tests {
    use super::*;

    use anoncmp_microdata::prelude::*;

    /// Classes of sizes 2 and 3 (ages {1,2} and {11,12,13}).
    fn fixture() -> AnonymizedTable {
        let schema = Schema::new(vec![Attribute::integer(
            "age",
            Role::QuasiIdentifier,
            0,
            100,
        )
        .with_hierarchy(IntervalLadder::uniform(0, &[10]).unwrap().into())
        .unwrap()])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(11)],
                vec![Value::Int(12)],
                vec![Value::Int(13)],
            ],
        )
        .unwrap();
        Lattice::new(schema).unwrap().apply(&ds, &[1], "f").unwrap()
    }

    #[test]
    fn per_tuple_risks() {
        let t = fixture();
        let r = per_tuple_risk(&t);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_values() {
        let t = fixture();
        let r = RiskReport::of(&t, 0.4);
        assert!((r.max_risk - 0.5).abs() < 1e-12);
        // Expected re-identifications = number of classes = 2.
        assert!((r.expected_reidentifications - 2.0).abs() < 1e-12);
        // Two of five records exceed 0.4.
        assert!((r.at_risk_fraction - 0.4).abs() < 1e-12);
        assert!((r.mean_risk - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(r.threshold, 0.4);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let t = fixture();
        // Exactly 0.5 does not exceed a 0.5 threshold.
        let r = RiskReport::of(&t, 0.5);
        assert_eq!(r.at_risk_fraction, 0.0);
    }

    #[test]
    fn expected_reidentifications_equals_class_count() {
        let t = fixture();
        let ds = t.dataset().clone();
        let sup = AnonymizedTable::fully_suppressed(ds, "sup");
        let r = RiskReport::of(&sup, 0.2);
        assert!((r.expected_reidentifications - 1.0).abs() < 1e-12);
        assert!((r.max_risk - 0.2).abs() < 1e-12);
        assert_eq!(r.at_risk_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_threshold_panics() {
        let _ = RiskReport::of(&fixture(), 0.0);
    }
}
