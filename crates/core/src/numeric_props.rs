//! Numeric-release properties: distance-based disclosure risk and
//! bounded distance-based information loss.
//!
//! These are the perturbative wing's counterparts to the
//! generalization-centric extractors in [`properties`](crate::properties):
//! they measure a released *numeric* record against the original numeric
//! quasi-identifiers. Both implement [`Property`], so they also run on
//! generalized releases (via the release's numeric view, replacing
//! intervals by midpoints and suppressed cells by column means) — which is
//! what makes mixed generalization + perturbative tournaments
//! component-wise commensurable.
//!
//! Each property has two extraction paths pinned bit-identical by
//! proptests:
//! - [`NeighborhoodRisk::extract_numeric`] /
//!   [`BoundedDistanceLoss::extract_numeric`] — the fast path, iterating
//!   contiguous `f64` column slices;
//! - [`NeighborhoodRisk::extract_numeric_naive`] /
//!   [`BoundedDistanceLoss::extract_numeric_naive`] — a deliberately
//!   simple row-at-a-time reference.
//!
//! Bit identity holds because both paths accumulate every per-`(row,
//! column)` term in the same ascending column order, so the `f64`
//! rounding sequence is the same.

use anoncmp_microdata::numeric::{NumericBase, NumericRelease};
use anoncmp_microdata::prelude::AnonymizedTable;

use crate::properties::Property;
use crate::vector::PropertyVector;

/// The record-linkage distance used by [`NeighborhoodRisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RiskMetric {
    /// Standardized Euclidean: coordinates are divided by the original
    /// column standard deviations.
    StdEuclid,
    /// Mahalanobis: `d²(a,b) = (a−b)ᵀ Σ⁻¹ (a−b)` with `Σ` the original
    /// data covariance (ridge-regularized when singular).
    Mahalanobis,
}

/// Distance-based disclosure risk within a k-nearest-neighbor
/// neighborhood (the `drscore` model): an intruder links each released
/// record back to the original file by distance; a record is at risk
/// when its true original is among the `k` originals nearest to its
/// released value, and the risk decays with the number of closer
/// decoys.
///
/// For released record `yᵢ` with original `xᵢ`, let
/// `rankᵢ = #{ j : d(yᵢ,xⱼ) < d(yᵢ,xᵢ), or d equal and j < i }` — the
/// number of original records an intruder would try before the true
/// one. The per-tuple risk is `1/(1+rankᵢ)` when `rankᵢ < k` and `0`
/// otherwise. Risk is lower-is-better, so the emitted vector is the
/// negated risk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NeighborhoodRisk {
    /// The linkage distance.
    pub metric: RiskMetric,
    /// The neighborhood size: originals at rank `k` or beyond are
    /// considered safe.
    pub k: usize,
}

/// The default neighborhood size for [`NeighborhoodRisk`].
pub const DEFAULT_RISK_NEIGHBORHOOD: usize = 5;

impl NeighborhoodRisk {
    /// Standardized-Euclidean risk with the default neighborhood.
    pub fn standard() -> Self {
        NeighborhoodRisk {
            metric: RiskMetric::StdEuclid,
            k: DEFAULT_RISK_NEIGHBORHOOD,
        }
    }

    /// Mahalanobis risk with the default neighborhood.
    pub fn mahalanobis() -> Self {
        NeighborhoodRisk {
            metric: RiskMetric::Mahalanobis,
            k: DEFAULT_RISK_NEIGHBORHOOD,
        }
    }

    /// The fast path: squared linkage distances are accumulated
    /// column-by-column over the release's contiguous column slices.
    pub fn extract_numeric(&self, release: &NumericRelease) -> PropertyVector {
        let base = release.base();
        let n = release.len();
        let mut values = vec![0.0; n];
        let mut dist_row = vec![0.0; n];
        for (i, v) in values.iter_mut().enumerate() {
            // d²(yᵢ, xⱼ) for every original j, built column-major so the
            // inner loops stream contiguous slices.
            linkage_distances_fast(self.metric, release, base, i, &mut dist_row);
            *v = -risk_from_distances(&dist_row, i, self.k);
        }
        PropertyVector::new(self.name(), values)
    }

    /// The row-at-a-time reference implementation: materializes each row
    /// pair and sums the per-column terms in the same ascending column
    /// order as the fast path. Bit-identical to
    /// [`NeighborhoodRisk::extract_numeric`].
    pub fn extract_numeric_naive(&self, release: &NumericRelease) -> PropertyVector {
        let base = release.base();
        let n = release.len();
        let originals: Vec<Vec<f64>> = (0..n).map(|j| base_row(base, j)).collect();
        let mut values = vec![0.0; n];
        let mut dist_row = vec![0.0; n];
        for (i, v) in values.iter_mut().enumerate() {
            let y = release.row(i);
            for (j, x) in originals.iter().enumerate() {
                dist_row[j] = match self.metric {
                    RiskMetric::StdEuclid => std_euclid2_rows(&y, x, base.stds()),
                    RiskMetric::Mahalanobis => mahalanobis2_rows(&y, x, base.inverse_covariance()),
                };
            }
            *v = -risk_from_distances(&dist_row, i, self.k);
        }
        PropertyVector::new(self.name(), values)
    }
}

impl Property for NeighborhoodRisk {
    fn name(&self) -> String {
        match self.metric {
            RiskMetric::StdEuclid => "neighborhood-risk".to_owned(),
            RiskMetric::Mahalanobis => "mahalanobis-risk".to_owned(),
        }
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let base = numeric_base_of(table);
        let release = NumericRelease::from_generalized(table, &base);
        self.extract_numeric(&release)
    }
}

/// Chaibub Neto's bounded distance-based information loss: for each
/// record, the mean over columns of `|x − y| / (|x| + |y|)` (with
/// `0/0 := 0`), a quantity in `[0, 1]` for same-sign data and bounded
/// regardless of column scale. Loss is lower-is-better, so the emitted
/// vector is the negated loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BoundedDistanceLoss;

impl BoundedDistanceLoss {
    /// One record's loss term for one `(original, released)` cell pair.
    #[inline]
    pub fn cell_term(x: f64, y: f64) -> f64 {
        let denom = x.abs() + y.abs();
        if denom == 0.0 {
            0.0
        } else {
            (x - y).abs() / denom
        }
    }

    /// The fast path: per-column terms are added into the output in
    /// ascending column order over contiguous slices.
    pub fn extract_numeric(&self, release: &NumericRelease) -> PropertyVector {
        let base = release.base();
        let n = release.len();
        let d = release.width() as f64;
        let mut sums = vec![0.0; n];
        for (rel_col, base_col) in release.columns().iter().zip(base.columns()) {
            for ((sum, &y), &x) in sums.iter_mut().zip(rel_col).zip(base_col) {
                *sum += Self::cell_term(x, y);
            }
        }
        let values = sums.into_iter().map(|s| -(s / d)).collect();
        PropertyVector::new(self.name(), values)
    }

    /// The row-at-a-time reference implementation; bit-identical to
    /// [`BoundedDistanceLoss::extract_numeric`] because both add the
    /// per-column terms in ascending column order.
    pub fn extract_numeric_naive(&self, release: &NumericRelease) -> PropertyVector {
        let base = release.base();
        let d = release.width() as f64;
        let values = (0..release.len())
            .map(|i| {
                let y = release.row(i);
                let x = base_row(base, i);
                let sum: f64 = x
                    .iter()
                    .zip(&y)
                    .map(|(&xv, &yv)| Self::cell_term(xv, yv))
                    .sum();
                -(sum / d)
            })
            .collect();
        PropertyVector::new(self.name(), values)
    }
}

impl Property for BoundedDistanceLoss {
    fn name(&self) -> String {
        "bounded-loss".to_owned()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let base = numeric_base_of(table);
        let release = NumericRelease::from_generalized(table, &base);
        self.extract_numeric(&release)
    }
}

/// The numeric base of a generalized release's dataset.
///
/// # Panics
/// When the dataset has no numeric quasi-identifier columns — numeric
/// properties are meaningless there, and the engine filters such jobs
/// into clean failures before extraction.
fn numeric_base_of(table: &AnonymizedTable) -> std::sync::Arc<NumericBase> {
    NumericBase::of(table.dataset())
        .expect("numeric properties need at least one numeric quasi-identifier")
}

/// Row `j` of the original numeric data, materialized.
fn base_row(base: &NumericBase, j: usize) -> Vec<f64> {
    base.columns().iter().map(|col| col[j]).collect()
}

/// Fills `out[j] = d²(yᵢ, xⱼ)` for all originals `j`, streaming column
/// slices. Accumulation order per `(i,j)` pair is ascending column
/// index — the same order as the naive row implementations.
fn linkage_distances_fast(
    metric: RiskMetric,
    release: &NumericRelease,
    base: &NumericBase,
    i: usize,
    out: &mut [f64],
) {
    match metric {
        RiskMetric::StdEuclid => {
            out.fill(0.0);
            for ((rel_col, base_col), &std) in release
                .columns()
                .iter()
                .zip(base.columns())
                .zip(base.stds())
            {
                let y = rel_col[i];
                for (slot, &x) in out.iter_mut().zip(base_col) {
                    let diff = (y - x) / std;
                    *slot += diff * diff;
                }
            }
        }
        RiskMetric::Mahalanobis => {
            // The quadratic form is evaluated per pair in (a,b)-ascending
            // order, exactly like `mahalanobis2_rows`.
            let inv = base.inverse_covariance();
            let y = release.row(i);
            let width = base.width();
            let mut delta = vec![0.0; width];
            for (j, slot) in out.iter_mut().enumerate() {
                for (c, d) in delta.iter_mut().enumerate() {
                    *d = y[c] - base.columns()[c][j];
                }
                let mut acc = 0.0;
                for (a, da) in delta.iter().enumerate() {
                    for (b, db) in delta.iter().enumerate() {
                        acc += da * inv[a][b] * db;
                    }
                }
                *slot = acc;
            }
        }
    }
}

/// Squared standardized Euclidean distance between two materialized
/// rows, summed in ascending column order.
fn std_euclid2_rows(y: &[f64], x: &[f64], stds: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&yv, &xv), &std) in y.iter().zip(x).zip(stds) {
        let diff = (yv - xv) / std;
        acc += diff * diff;
    }
    acc
}

/// Squared Mahalanobis distance between two materialized rows,
/// evaluated in (a,b)-ascending order.
fn mahalanobis2_rows(y: &[f64], x: &[f64], inv: &[Vec<f64>]) -> f64 {
    let delta: Vec<f64> = y.iter().zip(x).map(|(&yv, &xv)| yv - xv).collect();
    let mut acc = 0.0;
    for (a, da) in delta.iter().enumerate() {
        for (b, db) in delta.iter().enumerate() {
            acc += da * inv[a][b] * db;
        }
    }
    acc
}

/// The intruder's rank-based risk for record `i` given its distance row:
/// `1/(1+rank)` when fewer than `k` originals beat the true one, else 0.
fn risk_from_distances(dist: &[f64], i: usize, k: usize) -> f64 {
    let own = dist[i];
    let mut rank = 0usize;
    for (j, &d) in dist.iter().enumerate() {
        if j == i {
            continue;
        }
        if d < own || (d == own && j < i) {
            rank += 1;
            if rank >= k {
                return 0.0;
            }
        }
    }
    1.0 / (1 + rank) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoncmp_microdata::prelude::*;

    fn tiny_base() -> std::sync::Arc<NumericBase> {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 120),
            Attribute::integer("income", Role::QuasiIdentifier, 0, 1000),
            Attribute::categorical("dx", Role::Sensitive, ["a", "b"]),
        ])
        .unwrap();
        let mut b = DatasetBuilder::with_capacity(schema, 6);
        for (age, income, dx) in [
            (25, 140, "a"),
            (35, 180, "b"),
            (45, 330, "a"),
            (55, 360, "b"),
            (65, 490, "a"),
            (30, 200, "b"),
        ] {
            b.push_labels(&[&age.to_string(), &income.to_string(), dx])
                .unwrap();
        }
        NumericBase::of(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn identity_release_has_full_risk_and_zero_loss() {
        let base = tiny_base();
        let rel = NumericRelease::identity(base.clone(), "id");
        let risk = NeighborhoodRisk::standard().extract_numeric(&rel);
        // Every record's nearest original is itself: rank 0, risk 1.
        assert!(
            risk.values().iter().all(|&v| v == -1.0),
            "{:?}",
            risk.values()
        );
        let loss = BoundedDistanceLoss.extract_numeric(&rel);
        assert!(loss.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fast_and_naive_paths_agree_bitwise() {
        let base = tiny_base();
        // A hand-perturbed release: ages nudged, incomes swapped around.
        let rel = NumericRelease::new(
            "perturbed",
            base.clone(),
            vec![
                vec![27.0, 33.0, 46.0, 51.0, 66.0, 31.0],
                vec![180.0, 140.0, 360.0, 330.0, 200.0, 490.0],
            ],
        );
        for prop in [
            NeighborhoodRisk::standard(),
            NeighborhoodRisk::mahalanobis(),
            NeighborhoodRisk {
                metric: RiskMetric::StdEuclid,
                k: 2,
            },
        ] {
            let fast = prop.extract_numeric(&rel);
            let naive = prop.extract_numeric_naive(&rel);
            let fast_bits: Vec<u64> = fast.values().iter().map(|v| v.to_bits()).collect();
            let naive_bits: Vec<u64> = naive.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, naive_bits, "{}", prop.name());
        }
        let fast = BoundedDistanceLoss.extract_numeric(&rel);
        let naive = BoundedDistanceLoss.extract_numeric_naive(&rel);
        let fast_bits: Vec<u64> = fast.values().iter().map(|v| v.to_bits()).collect();
        let naive_bits: Vec<u64> = naive.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(fast_bits, naive_bits);
    }

    #[test]
    fn risk_detects_an_obvious_relink() {
        let base = tiny_base();
        // Record 0 released unchanged, the rest pushed far away: record 0
        // relinks at rank 0 (risk 1), far records link elsewhere.
        let mut cols: Vec<Vec<f64>> = base.columns().to_vec();
        for col in &mut cols {
            for v in col.iter_mut().skip(1) {
                *v += 10_000.0;
            }
        }
        let rel = NumericRelease::new("partial", base.clone(), cols);
        let risk = NeighborhoodRisk::standard().extract_numeric(&rel);
        assert_eq!(risk.values()[0], -1.0);
    }

    #[test]
    fn bounded_loss_is_bounded_and_zero_fixed_point() {
        let base = tiny_base();
        let rel = NumericRelease::new(
            "wild",
            base.clone(),
            vec![
                vec![0.0, 1e9, -35.0, 55.0, 0.0, 30.0],
                vec![140.0, 0.0, 330.0, -360.0, 490.0, 1e-12],
            ],
        );
        let loss = BoundedDistanceLoss.extract_numeric(&rel);
        assert!(loss.values().iter().all(|&v| (-1.0..=0.0).contains(&v)));
        // 0/0 cell: original 0 would be needed; here original age is 25,
        // so just check the explicit helper.
        assert_eq!(BoundedDistanceLoss::cell_term(0.0, 0.0), 0.0);
        assert_eq!(BoundedDistanceLoss::cell_term(3.0, 3.0), 0.0);
        assert_eq!(BoundedDistanceLoss::cell_term(-2.0, 2.0), 1.0);
    }

    #[test]
    fn properties_run_on_generalized_releases_via_the_numeric_view() {
        let base = tiny_base();
        let table = AnonymizedTable::identity(base.dataset().clone(), "identity");
        let risk = NeighborhoodRisk::standard().extract(&table);
        assert_eq!(risk.len(), table.dataset().len());
        assert!(risk.values().iter().all(|&v| v == -1.0));
        let loss = BoundedDistanceLoss.extract(&table);
        assert!(loss.values().iter().all(|&v| v == 0.0));
    }
}
