//! Wire-level request/response types for the comparison service.
//!
//! The `anoncmp-serve` daemon and `anoncmp-loadgen` client both speak a
//! small JSON protocol (see `docs/WIRE_PROTOCOL.md`); the types live here,
//! beneath both, so client and server cannot drift apart. Everything is
//! plain data: requests decode from [`serde::json::Value`] (already parsed
//! under the hardened limits), responses serialize with the vendored
//! [`serde::Serialize`] JSON writer. No engine types appear — the serve
//! crate maps [`CompareRequest`] onto evaluation jobs itself — so the
//! protocol layer stays dependency-light and testable in isolation.

use serde::json::Value;
use serde::Serialize;

/// Machine-readable error classes, each with a fixed HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown fields, or invalid parameter values.
    BadRequest,
    /// The request body exceeded the server's size limit.
    PayloadTooLarge,
    /// Admission control shed the request; retry later.
    Overloaded,
    /// Unknown endpoint or unsupported method.
    NotFound,
    /// The request exceeded its wall-clock budget; results are partial.
    DeadlineExceeded,
    /// The server failed internally.
    Internal,
}

impl ErrorCode {
    /// The stable wire identifier (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::NotFound => "not_found",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Internal => "internal",
        }
    }

    /// The HTTP status this error maps to.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::Overloaded => 429,
            ErrorCode::NotFound => 404,
            ErrorCode::DeadlineExceeded => 408,
            ErrorCode::Internal => 500,
        }
    }
}

/// The JSON error envelope every failed request carries:
/// `{"error":{"code":"…","message":"…"}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// Builds an error envelope.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorBody {
            code,
            message: message.into(),
        }
    }
}

impl Serialize for ErrorBody {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"error\":{\"code\":");
        self.code.as_str().serialize_json(out);
        out.push_str(",\"message\":");
        self.message.serialize_json(out);
        out.push_str("}}");
    }
}

/// Which dataset a request evaluates against. Only *specified* synthetic
/// datasets cross the wire — clients name a generator configuration, never
/// ship rows — so requests stay small and content-addressed caching on the
/// server stays sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDataset {
    /// The paper's synthetic census microdata.
    Census {
        /// Number of tuples.
        rows: usize,
        /// Generator seed.
        seed: u64,
        /// Number of distinct zip codes.
        zip_pool: usize,
    },
    /// The synthetic hospital-discharge dataset.
    Hospital {
        /// Number of discharge records.
        rows: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl WireDataset {
    /// Decodes `{"kind":"census"|"hospital", …}`.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("dataset: missing \"kind\"")?;
        let rows = v
            .get("rows")
            .and_then(Value::as_usize)
            .ok_or("dataset: missing or invalid \"rows\"")?;
        let seed = v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or("dataset: missing or invalid \"seed\"")?;
        match kind {
            "census" => Ok(WireDataset::Census {
                rows,
                seed,
                zip_pool: v
                    .get("zip_pool")
                    .and_then(Value::as_usize)
                    .ok_or("dataset: census requires \"zip_pool\"")?,
            }),
            "hospital" => Ok(WireDataset::Hospital { rows, seed }),
            other => Err(format!("dataset: unknown kind {other:?}")),
        }
    }
}

impl Serialize for WireDataset {
    fn serialize_json(&self, out: &mut String) {
        match self {
            WireDataset::Census {
                rows,
                seed,
                zip_pool,
            } => out.push_str(&format!(
                "{{\"kind\":\"census\",\"rows\":{rows},\"seed\":{seed},\"zip_pool\":{zip_pool}}}"
            )),
            WireDataset::Hospital { rows, seed } => out.push_str(&format!(
                "{{\"kind\":\"hospital\",\"rows\":{rows},\"seed\":{seed}}}"
            )),
        }
    }
}

/// `POST /compare` — evaluate a set of algorithms at one grid point and
/// return their canonical records in request order.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRequest {
    /// Dataset specification.
    pub dataset: WireDataset,
    /// Algorithm names (empty = the server's standard suite).
    pub algorithms: Vec<String>,
    /// Perturbative method wire names (`noise:0.05`, `rankswap:8`, …)
    /// evaluated alongside the algorithms; empty = none.
    pub methods: Vec<String>,
    /// The k of k-anonymity.
    pub k: usize,
    /// Suppression budget in tuples (default 0).
    pub max_suppression: usize,
    /// Property names to extract (empty = `eq-class-size`).
    pub properties: Vec<String>,
    /// Optional per-request wall-clock budget in milliseconds.
    pub budget_ms: Option<u64>,
}

/// `POST /sweep` — evaluate a whole k-grid, streamed back one canonical
/// record per JSONL line, one chunk per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Dataset specification.
    pub dataset: WireDataset,
    /// Algorithm names (empty = the server's standard suite).
    pub algorithms: Vec<String>,
    /// Perturbative method wire names (`noise:0.05`, `rankswap:8`, …)
    /// evaluated alongside the algorithms at every grid point; empty =
    /// none.
    pub methods: Vec<String>,
    /// The k values of the grid, evaluated in request order.
    pub ks: Vec<usize>,
    /// Suppression budget in tuples (default 0).
    pub max_suppression: usize,
    /// Property names to extract (empty = `eq-class-size`).
    pub properties: Vec<String>,
    /// Optional per-request wall-clock budget in milliseconds; when it
    /// expires the stream ends early with a `deadline_exceeded` trailer.
    pub budget_ms: Option<u64>,
}

fn string_list(v: &Value, field: &str) -> Result<Vec<String>, String> {
    match v.get(field) {
        None => Ok(Vec::new()),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("{field}: expected an array of strings"))
            })
            .collect(),
        Some(_) => Err(format!("{field}: expected an array of strings")),
    }
}

fn usize_list(v: &Value, field: &str) -> Result<Vec<usize>, String> {
    match v.get(field) {
        None => Ok(Vec::new()),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|item| {
                item.as_usize()
                    .ok_or_else(|| format!("{field}: expected an array of unsigned integers"))
            })
            .collect(),
        Some(_) => Err(format!("{field}: expected an array of unsigned integers")),
    }
}

impl CompareRequest {
    /// Decodes a parsed request body.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let dataset = WireDataset::from_value(v.get("dataset").ok_or("missing \"dataset\"")?)?;
        let k = v
            .get("k")
            .and_then(Value::as_usize)
            .ok_or("missing or invalid \"k\"")?;
        if k == 0 {
            return Err("\"k\" must be at least 1".into());
        }
        Ok(CompareRequest {
            dataset,
            algorithms: string_list(v, "algorithms")?,
            methods: string_list(v, "methods")?,
            k,
            max_suppression: match v.get("max_suppression") {
                None => 0,
                Some(m) => m.as_usize().ok_or("invalid \"max_suppression\"")?,
            },
            properties: string_list(v, "properties")?,
            budget_ms: match v.get("budget_ms") {
                None => None,
                Some(b) => Some(b.as_u64().ok_or("invalid \"budget_ms\"")?),
            },
        })
    }
}

impl Serialize for CompareRequest {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"dataset\":");
        self.dataset.serialize_json(out);
        out.push_str(",\"algorithms\":");
        self.algorithms.serialize_json(out);
        out.push_str(",\"methods\":");
        self.methods.serialize_json(out);
        out.push_str(&format!(
            ",\"k\":{},\"max_suppression\":{},\"properties\":",
            self.k, self.max_suppression
        ));
        self.properties.serialize_json(out);
        if let Some(b) = self.budget_ms {
            out.push_str(&format!(",\"budget_ms\":{b}"));
        }
        out.push('}');
    }
}

impl SweepRequest {
    /// Decodes a parsed request body.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let dataset = WireDataset::from_value(v.get("dataset").ok_or("missing \"dataset\"")?)?;
        let ks = usize_list(v, "ks")?;
        if ks.is_empty() {
            return Err("\"ks\" must be a non-empty array".into());
        }
        if ks.contains(&0) {
            return Err("every k in \"ks\" must be at least 1".into());
        }
        Ok(SweepRequest {
            dataset,
            algorithms: string_list(v, "algorithms")?,
            methods: string_list(v, "methods")?,
            ks,
            max_suppression: match v.get("max_suppression") {
                None => 0,
                Some(m) => m.as_usize().ok_or("invalid \"max_suppression\"")?,
            },
            properties: string_list(v, "properties")?,
            budget_ms: match v.get("budget_ms") {
                None => None,
                Some(b) => Some(b.as_u64().ok_or("invalid \"budget_ms\"")?),
            },
        })
    }
}

impl Serialize for SweepRequest {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"dataset\":");
        self.dataset.serialize_json(out);
        out.push_str(",\"algorithms\":");
        self.algorithms.serialize_json(out);
        out.push_str(",\"methods\":");
        self.methods.serialize_json(out);
        out.push_str(",\"ks\":");
        self.ks.serialize_json(out);
        out.push_str(&format!(
            ",\"max_suppression\":{},\"properties\":",
            self.max_suppression
        ));
        self.properties.serialize_json(out);
        if let Some(b) = self.budget_ms {
            out.push_str(&format!(",\"budget_ms\":{b}"));
        }
        out.push('}');
    }
}

/// `GET /stats` — a snapshot of the daemon's counters. Everything here is
/// scheduling- and load-dependent by nature; determinism guarantees apply
/// to `compare`/`sweep` bodies, never to stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServerStats {
    /// Requests fully served (any endpoint, both protocols).
    pub requests_total: u64,
    /// `compare` requests served.
    pub compare_requests: u64,
    /// `sweep` requests served.
    pub sweep_requests: u64,
    /// Requests shed by admission control with `429 overloaded`.
    pub shed_total: u64,
    /// Requests rejected as malformed (4xx other than 429).
    pub rejected_total: u64,
    /// Requests in flight right now.
    pub inflight: u64,
    /// Serving threads.
    pub threads: u64,
    /// Intra-node chunk threads each running sweep job may use (the
    /// resolved `--chunk-threads` budget; see the engine's `ScopedPool`).
    pub chunk_threads: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Release-cache hits since start.
    pub cache_hits: u64,
    /// Release-cache misses since start.
    pub cache_misses: u64,
    /// Releases currently cached.
    pub cache_entries: u64,
    /// Releases evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Property-vector-cache hits since start.
    pub vector_hits: u64,
    /// Property-vector-cache misses since start.
    pub vector_misses: u64,
    /// Property vectors evicted by the LRU bound.
    pub vector_evictions: u64,
    /// Response-cache hits since start (whole batches of canonical
    /// record lines served without touching the engine).
    pub response_hits: u64,
    /// Response-cache misses since start.
    pub response_misses: u64,
    /// Response batches currently cached.
    pub response_entries: u64,
    /// Response batches evicted by the LRU bound.
    pub response_evictions: u64,
    /// Transient job failures the engine retried since start.
    pub engine_retries: u64,
    /// Jobs the engine quarantined (retry budget exhausted) since start.
    pub engine_quarantined: u64,
    /// Records appended to the engine's checkpoint journal since start
    /// (`0` when the server runs without a journal attached).
    pub journal_appends: u64,
}

impl ServerStats {
    /// Decodes a stats body (the load generator reads these back).
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("stats: missing or invalid {name:?}"))
        };
        Ok(ServerStats {
            requests_total: field("requests_total")?,
            compare_requests: field("compare_requests")?,
            sweep_requests: field("sweep_requests")?,
            shed_total: field("shed_total")?,
            rejected_total: field("rejected_total")?,
            inflight: field("inflight")?,
            threads: field("threads")?,
            chunk_threads: field("chunk_threads")?,
            uptime_ms: field("uptime_ms")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            cache_entries: field("cache_entries")?,
            cache_evictions: field("cache_evictions")?,
            vector_hits: field("vector_hits")?,
            vector_misses: field("vector_misses")?,
            vector_evictions: field("vector_evictions")?,
            response_hits: field("response_hits")?,
            response_misses: field("response_misses")?,
            response_entries: field("response_entries")?,
            response_evictions: field("response_evictions")?,
            engine_retries: field("engine_retries")?,
            engine_quarantined: field("engine_quarantined")?,
            journal_appends: field("journal_appends")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json::parse;

    #[test]
    fn compare_request_round_trips() {
        let req = CompareRequest {
            dataset: WireDataset::Census {
                rows: 500,
                seed: 7,
                zip_pool: 20,
            },
            algorithms: vec!["datafly".into(), "mondrian".into()],
            methods: vec!["noise:0.05".into(), "rankswap:8".into()],
            k: 5,
            max_suppression: 10,
            properties: vec!["eq-class-size".into()],
            budget_ms: Some(2_000),
        };
        let json = req.to_json();
        let back = CompareRequest::from_value(&parse(&json).expect("valid json")).expect("decodes");
        assert_eq!(back, req);
    }

    #[test]
    fn sweep_request_round_trips() {
        let req = SweepRequest {
            dataset: WireDataset::Hospital { rows: 200, seed: 3 },
            algorithms: vec![],
            methods: vec!["mdav:5".into()],
            ks: vec![2, 5, 10],
            max_suppression: 0,
            properties: vec![],
            budget_ms: None,
        };
        let json = req.to_json();
        let back = SweepRequest::from_value(&parse(&json).expect("valid json")).expect("decodes");
        assert_eq!(back, req);
    }

    #[test]
    fn compare_request_defaults_apply() {
        let v = parse(r#"{"dataset":{"kind":"census","rows":100,"seed":1,"zip_pool":5},"k":3}"#)
            .unwrap();
        let req = CompareRequest::from_value(&v).unwrap();
        assert_eq!(req.max_suppression, 0);
        assert!(req.algorithms.is_empty());
        assert!(req.methods.is_empty());
        assert!(req.properties.is_empty());
        assert_eq!(req.budget_ms, None);
    }

    #[test]
    fn invalid_requests_are_rejected_with_reasons() {
        for (body, needle) in [
            (r#"{"k":3}"#, "dataset"),
            (
                r#"{"dataset":{"kind":"census","rows":10,"seed":1,"zip_pool":2}}"#,
                "\"k\"",
            ),
            (
                r#"{"dataset":{"kind":"census","rows":10,"seed":1,"zip_pool":2},"k":0}"#,
                "at least 1",
            ),
            (
                r#"{"dataset":{"kind":"nope","rows":10,"seed":1},"k":2}"#,
                "unknown kind",
            ),
            (
                r#"{"dataset":{"kind":"census","rows":10,"seed":1,"zip_pool":2},"k":2,"algorithms":[1]}"#,
                "array of strings",
            ),
        ] {
            let v = parse(body).unwrap();
            let err = CompareRequest::from_value(&v).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
        let v = parse(r#"{"dataset":{"kind":"census","rows":10,"seed":1,"zip_pool":2},"ks":[]}"#)
            .unwrap();
        assert!(SweepRequest::from_value(&v)
            .unwrap_err()
            .contains("non-empty"));
    }

    #[test]
    fn error_body_envelope_shape() {
        let e = ErrorBody::new(ErrorCode::Overloaded, "queue full");
        assert_eq!(
            e.to_json(),
            r#"{"error":{"code":"overloaded","message":"queue full"}}"#
        );
        assert_eq!(ErrorCode::Overloaded.http_status(), 429);
        assert_eq!(ErrorCode::PayloadTooLarge.http_status(), 413);
    }

    #[test]
    fn server_stats_round_trip() {
        let stats = ServerStats {
            requests_total: 10,
            compare_requests: 6,
            sweep_requests: 2,
            shed_total: 1,
            rejected_total: 1,
            inflight: 3,
            threads: 4,
            chunk_threads: 2,
            uptime_ms: 1234,
            cache_hits: 5,
            cache_misses: 6,
            cache_entries: 6,
            cache_evictions: 0,
            vector_hits: 2,
            vector_misses: 6,
            vector_evictions: 0,
            response_hits: 4,
            response_misses: 2,
            response_entries: 2,
            response_evictions: 0,
            engine_retries: 1,
            engine_quarantined: 0,
            journal_appends: 8,
        };
        let v = parse(&stats.to_json()).expect("valid json");
        assert_eq!(ServerStats::from_value(&v).unwrap(), stats);
    }
}
