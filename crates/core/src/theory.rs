//! Empirical apparatus for Theorem 1 and its corollaries (paper §4).
//!
//! *Theorem 1.* If `n` unary quality indices `P₁…P_n` satisfy
//! `∀i: Pᵢ(D₁) ≥ Pᵢ(D₂) ⟺ D₁ ⪰ D₂` for property vectors on a dataset of
//! size `N`, then `n ≥ N`.
//!
//! The theorem is proved analytically in the paper; this module provides
//! the *computational* counterpart used by experiment E12:
//!
//! * [`check_pair`] tests whether a concrete index family satisfies the
//!   equivalence on one ordered pair of vectors;
//! * [`falsify`] searches for counterexample pairs, seeding the search with
//!   the proof's own constructions (the incomparable pair `(a,b)/(b,a)` and
//!   the `(a,…,a,c)/(b,…,b,c)` family) before random sampling;
//! * [`projection_family`] exhibits the `n = N` family of coordinate
//!   projections that *does* satisfy the equivalence, showing the bound is
//!   tight.

use crate::dominance::weakly_dominates;
use crate::index::UnaryIndex;
use crate::vector::PropertyVector;

/// A coordinate projection `P(D) = d_i` — `N` of these decide dominance
/// exactly, witnessing tightness of Theorem 1's bound.
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    /// The projected coordinate.
    pub coordinate: usize,
}

impl UnaryIndex for Projection {
    fn name(&self) -> String {
        format!("P_proj{}", self.coordinate)
    }

    fn value(&self, d: &PropertyVector) -> f64 {
        d[self.coordinate]
    }
}

/// The family of all `n` coordinate projections for dimension `n`.
pub fn projection_family(n: usize) -> Vec<Box<dyn UnaryIndex>> {
    (0..n)
        .map(|coordinate| Box::new(Projection { coordinate }) as Box<dyn UnaryIndex>)
        .collect()
}

/// How a family fails the Theorem-1 equivalence on an ordered pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// All indices order `D₁ ≥ D₂` but `D₁` does not weakly dominate `D₂`
    /// (the `⟸` direction fails): the indices *claim* superiority that the
    /// vectors do not have.
    ForwardFailure,
    /// `D₁ ⪰ D₂` but some index strictly decreases (the `⟹` direction
    /// fails): the indices miss a real superiority.
    BackwardFailure,
}

/// A concrete counterexample to the equivalence for a family.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The first vector of the violating ordered pair.
    pub d1: PropertyVector,
    /// The second vector of the violating ordered pair.
    pub d2: PropertyVector,
    /// Which direction of the equivalence fails.
    pub kind: ViolationKind,
}

/// Tests the equivalence `∀i: Pᵢ(D₁) ≥ Pᵢ(D₂) ⟺ D₁ ⪰ D₂` on the ordered
/// pair `(d1, d2)`.
pub fn check_pair(
    family: &[Box<dyn UnaryIndex>],
    d1: &PropertyVector,
    d2: &PropertyVector,
) -> Option<ViolationKind> {
    let indices_agree = family.iter().all(|p| p.value(d1) >= p.value(d2));
    let dominates = weakly_dominates(d1, d2);
    match (indices_agree, dominates) {
        (true, false) => Some(ViolationKind::ForwardFailure),
        (false, true) => Some(ViolationKind::BackwardFailure),
        _ => None,
    }
}

/// Deterministic SplitMix64 generator: keeps the falsification search
/// reproducible without external dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

/// The proof's seed pairs for dimension `n`: the incomparable base pair
/// `(a, b, …)` / `(b, a, …)` and the induction pair
/// `(a, …, a, c)` / `(b, …, b, c)` with `a < b`.
pub fn proof_seed_pairs(n: usize) -> Vec<(PropertyVector, PropertyVector)> {
    assert!(n >= 2, "Theorem 1's constructions need N ≥ 2");
    let (a, b, c) = (1.0, 2.0, 5.0);
    let mut pairs = Vec::new();
    // Incomparable swap pair.
    let mut v1 = vec![a; n];
    let mut v2 = vec![a; n];
    v1[0] = b;
    v2[1] = b;
    pairs.push((
        PropertyVector::new("swap1", v1),
        PropertyVector::new("swap2", v2),
    ));
    // Induction pair: (a,…,a,c) vs (b,…,b,c); the second strongly
    // dominates nothing in the last coordinate but everywhere else.
    let mut w1 = vec![a; n];
    let mut w2 = vec![b; n];
    w1[n - 1] = c;
    w2[n - 1] = c;
    pairs.push((
        PropertyVector::new("ind1", w1),
        PropertyVector::new("ind2", w2),
    ));
    pairs
}

/// Searches for a counterexample to the equivalence for `family` on
/// dimension `n`: first the proof's deterministic seed pairs (both
/// orders), then `tries` random pairs — half fully random, half built to
/// be incomparable (random vector with two coordinates perturbed in
/// opposite directions, the shape Theorem 1's base case exploits).
pub fn falsify(
    family: &[Box<dyn UnaryIndex>],
    n: usize,
    seed: u64,
    tries: usize,
) -> Option<Counterexample> {
    let consider = |d1: &PropertyVector, d2: &PropertyVector| -> Option<Counterexample> {
        if let Some(kind) = check_pair(family, d1, d2) {
            return Some(Counterexample {
                d1: d1.clone(),
                d2: d2.clone(),
                kind,
            });
        }
        if let Some(kind) = check_pair(family, d2, d1) {
            return Some(Counterexample {
                d1: d2.clone(),
                d2: d1.clone(),
                kind,
            });
        }
        None
    };

    for (d1, d2) in proof_seed_pairs(n) {
        if let Some(cx) = consider(&d1, &d2) {
            return Some(cx);
        }
    }

    let mut rng = SplitMix64::new(seed);
    for t in 0..tries {
        let (d1, d2) = if t % 2 == 0 {
            // Fully random pair.
            let v1: Vec<f64> = (0..n).map(|_| rng.range(0.5, 10.0)).collect();
            let v2: Vec<f64> = (0..n).map(|_| rng.range(0.5, 10.0)).collect();
            (PropertyVector::new("r1", v1), PropertyVector::new("r2", v2))
        } else {
            // Incomparable pair: perturb two coordinates oppositely.
            let base: Vec<f64> = (0..n).map(|_| rng.range(0.5, 10.0)).collect();
            let i = (rng.next_u64() as usize) % n;
            let mut j = (rng.next_u64() as usize) % n;
            if j == i {
                j = (j + 1) % n;
            }
            let delta = rng.range(0.01, 2.0);
            let mut v1 = base.clone();
            let mut v2 = base;
            v1[i] += delta;
            v2[j] += delta;
            (PropertyVector::new("i1", v1), PropertyVector::new("i2", v2))
        };
        if let Some(cx) = consider(&d1, &d2) {
            return Some(cx);
        }
    }
    None
}

/// The three vector families from Corollary 1's proof, sampled at a given
/// parameter: for `a ⪰ b`,
///
/// * `x ∈ X = {(a₁c₁, …, a_N c_N) | cᵢ ≥ 1}` — scaled *above* `a`;
/// * `y ∈ Y = {(bᵢ + (aᵢ − bᵢ)eᵢ) | 0 ≤ eᵢ ≤ 1}` — interpolated between;
/// * `z ∈ Z = {(bᵢ/dᵢ) | dᵢ ≥ 1}` — scaled *below* `b`;
///
/// yielding the chain `x ⪰ a ⪰ y ⪰ b ⪰ z` the corollary's closure
/// argument iterates. `t ∈ [0, 1]` selects the sample within each family
/// (`t = 0` gives `x = a`, `y = b`, `z = b`).
///
/// # Panics
/// Panics unless `a ⪰ b`, components are positive, and `t ∈ [0, 1]`.
pub fn corollary1_cones(
    a: &PropertyVector,
    b: &PropertyVector,
    t: f64,
) -> (PropertyVector, PropertyVector, PropertyVector) {
    assert!(
        weakly_dominates(a, b),
        "Corollary 1's construction requires a ⪰ b"
    );
    assert!(
        a.iter().all(|v| v > 0.0) && b.iter().all(|v| v > 0.0),
        "the scaling cones require positive components"
    );
    assert!(
        (0.0..=1.0).contains(&t),
        "sample parameter must lie in [0, 1]"
    );
    let scale_up = 1.0 + t; // cᵢ = 1 + t ≥ 1
    let x = PropertyVector::new("x", a.iter().map(|v| v * scale_up).collect());
    let y = PropertyVector::new(
        "y",
        a.iter()
            .zip(b.iter())
            .map(|(ai, bi)| bi + (ai - bi) * (1.0 - t))
            .collect(),
    );
    let z = PropertyVector::new("z", b.iter().map(|v| v / scale_up).collect());
    (x, y, z)
}

/// The open hyperrectangle `I_c` from Theorem 1's proof for an index
/// family: per-index open intervals
/// `( Pᵢ((a,…,a,c)), Pᵢ((b,…,b,c)) )`.
pub fn proof_hyperrectangle(
    family: &[Box<dyn UnaryIndex>],
    n: usize,
    a: f64,
    b: f64,
    c: f64,
) -> Vec<(f64, f64)> {
    let mut lo = vec![a; n];
    lo[n - 1] = c;
    let mut hi = vec![b; n];
    hi[n - 1] = c;
    let dlo = PropertyVector::new("lo", lo);
    let dhi = PropertyVector::new("hi", hi);
    family
        .iter()
        .map(|p| (p.value(&dlo), p.value(&dhi)))
        .collect()
}

/// Whether two open hyperrectangles are disjoint (the proof's
/// `I_c ∩ I_f = ∅` step).
pub fn hyperrectangles_disjoint(r1: &[(f64, f64)], r2: &[(f64, f64)]) -> bool {
    assert_eq!(r1.len(), r2.len(), "hyperrectangles must share a dimension");
    r1.iter().zip(r2).any(|((lo1, hi1), (lo2, hi2))| {
        let lo = lo1.max(*lo2);
        let hi = hi1.min(*hi2);
        lo >= hi // empty open intersection in this dimension
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::classic::{MaxIndex, MeanIndex, MedianIndex, MinIndex, SumIndex};

    fn small_family() -> Vec<Box<dyn UnaryIndex>> {
        vec![Box::new(MinIndex), Box::new(MeanIndex)]
    }

    #[test]
    fn projections_decide_dominance_exactly() {
        // The n = N family of projections satisfies the equivalence on any
        // pair — the bound of Theorem 1 is attainable.
        let fam = projection_family(4);
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            let v1: Vec<f64> = (0..4).map(|_| rng.range(0.0, 5.0)).collect();
            let v2: Vec<f64> = (0..4).map(|_| rng.range(0.0, 5.0)).collect();
            let d1 = PropertyVector::new("a", v1);
            let d2 = PropertyVector::new("b", v2);
            assert_eq!(check_pair(&fam, &d1, &d2), None);
            assert_eq!(check_pair(&fam, &d2, &d1), None);
        }
        assert!(falsify(&fam, 4, 11, 5_000).is_none());
    }

    #[test]
    fn min_mean_family_is_falsified_in_dimension_3() {
        // Two indices on N = 3 < required 3? n = 2 < N = 3: Theorem 1 says
        // a counterexample must exist; the search finds one.
        let cx = falsify(&small_family(), 3, 42, 10_000).expect("counterexample exists");
        assert!(check_pair(&small_family(), &cx.d1, &cx.d2).is_some());
    }

    #[test]
    fn even_n_indices_fail_if_not_projections() {
        // n = N = 2 indices, but aggregate ones (min, mean): the forward
        // direction fails on incomparable pairs that happen to be ordered
        // by both indices.
        let fam: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex), Box::new(MeanIndex)];
        let cx = falsify(&fam, 2, 1, 10_000);
        assert!(
            cx.is_some(),
            "aggregate families are not equivalence-deciding"
        );
    }

    #[test]
    fn one_index_fails_on_the_base_case() {
        // Theorem 1's base case: with one index and the incomparable pair
        // (a,b)/(b,a), some order must hold, contradicting non-dominance.
        for fam in [
            vec![Box::new(MinIndex) as Box<dyn UnaryIndex>],
            vec![Box::new(MaxIndex) as Box<dyn UnaryIndex>],
            vec![Box::new(SumIndex) as Box<dyn UnaryIndex>],
            vec![Box::new(MedianIndex) as Box<dyn UnaryIndex>],
        ] {
            let cx = falsify(&fam, 2, 3, 0).expect("seed pairs suffice");
            assert_eq!(cx.kind, ViolationKind::ForwardFailure);
        }
    }

    #[test]
    fn check_pair_directions() {
        // Family {min}: d1 = (2,2), d2 = (1,3). min(d1)=2 ≥ 1=min(d2) but
        // d1 does not dominate d2 → forward failure.
        let fam: Vec<Box<dyn UnaryIndex>> = vec![Box::new(MinIndex)];
        let d1 = PropertyVector::new("a", vec![2.0, 2.0]);
        let d2 = PropertyVector::new("b", vec![1.0, 3.0]);
        assert_eq!(
            check_pair(&fam, &d1, &d2),
            Some(ViolationKind::ForwardFailure)
        );

        // Family {-min (as max of negation) } can't be built here; instead
        // use a family where dominance holds but an index decreases:
        // P(D) = -mean via a custom index.
        struct NegMean;
        impl UnaryIndex for NegMean {
            fn name(&self) -> String {
                "negmean".into()
            }
            fn value(&self, d: &PropertyVector) -> f64 {
                -d.mean().unwrap_or(0.0)
            }
        }
        let fam: Vec<Box<dyn UnaryIndex>> = vec![Box::new(NegMean)];
        let d1 = PropertyVector::new("a", vec![3.0, 3.0]);
        let d2 = PropertyVector::new("b", vec![1.0, 1.0]);
        assert_eq!(
            check_pair(&fam, &d1, &d2),
            Some(ViolationKind::BackwardFailure)
        );
    }

    #[test]
    fn corollary1_chain_holds_for_all_samples() {
        // x ⪰ a ⪰ y ⪰ b ⪰ z for every sample parameter.
        let a = PropertyVector::new("a", vec![4.0, 6.0, 5.0]);
        let b = PropertyVector::new("b", vec![2.0, 6.0, 1.0]);
        for t in [0.0, 0.25, 0.5, 1.0] {
            let (x, y, z) = corollary1_cones(&a, &b, t);
            assert!(weakly_dominates(&x, &a), "x ⪰ a at t = {t}");
            assert!(weakly_dominates(&a, &y), "a ⪰ y at t = {t}");
            assert!(weakly_dominates(&y, &b), "y ⪰ b at t = {t}");
            assert!(weakly_dominates(&b, &z), "b ⪰ z at t = {t}");
        }
        // t = 0 degenerates to x = a, y = a? No: e = 1 gives y = a; our
        // parametrization uses e = 1 − t, so t = 0 → y = a and t = 1 → y = b.
        let (x0, y0, _) = corollary1_cones(&a, &b, 0.0);
        assert_eq!(x0.values(), a.values());
        assert_eq!(y0.values(), a.values());
        let (_, y1, _) = corollary1_cones(&a, &b, 1.0);
        assert_eq!(y1.values(), b.values());
    }

    #[test]
    #[should_panic(expected = "requires a ⪰ b")]
    fn corollary1_requires_dominance() {
        let a = PropertyVector::new("a", vec![1.0, 2.0]);
        let b = PropertyVector::new("b", vec![2.0, 1.0]);
        let _ = corollary1_cones(&a, &b, 0.5);
    }

    #[test]
    fn proof_seed_pairs_shapes() {
        let pairs = proof_seed_pairs(4);
        assert_eq!(pairs.len(), 2);
        let (s1, s2) = &pairs[0];
        assert!(crate::dominance::non_dominated(s1, s2));
        let (i1, i2) = &pairs[1];
        assert!(crate::dominance::strongly_dominates(i2, i1));
        assert_eq!(i1[3], i2[3], "last coordinate shared");
    }

    #[test]
    #[should_panic(expected = "N ≥ 2")]
    fn seed_pairs_need_dimension_two() {
        let _ = proof_seed_pairs(1);
    }

    #[test]
    fn hyperrectangles_from_proof_are_disjoint_for_projections() {
        // With the projection family the proof's rectangles I_c and I_f for
        // c ≠ f are disjoint (they differ in the last coordinate, which is
        // a degenerate open interval — trivially disjoint).
        let fam = projection_family(3);
        let r1 = proof_hyperrectangle(&fam, 3, 1.0, 2.0, 5.0);
        let r2 = proof_hyperrectangle(&fam, 3, 1.0, 2.0, 6.0);
        assert!(hyperrectangles_disjoint(&r1, &r2));
    }

    #[test]
    fn overlapping_rectangles_detected() {
        let r1 = vec![(0.0, 2.0), (0.0, 2.0)];
        let r2 = vec![(1.0, 3.0), (1.0, 3.0)];
        assert!(!hyperrectangles_disjoint(&r1, &r2));
        let r3 = vec![(2.0, 3.0), (1.0, 3.0)];
        assert!(
            hyperrectangles_disjoint(&r1, &r3),
            "touching open intervals are disjoint"
        );
    }

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SplitMix64::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
        let r = c.range(5.0, 6.0);
        assert!((5.0..6.0).contains(&r));
    }
}
