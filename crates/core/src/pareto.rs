//! Pareto-front machinery for the paper's §7 extension.
//!
//! "If vector representations of privacy are adopted … finding 'good'
//! anonymizations thus converts into a multi-objective problem. …
//! privacy should no longer be imposed only as a constraint in the
//! framework but rather handled directly as an objective to maximize."
//!
//! This module supplies the multi-objective building blocks — dominance
//! over objective points, non-dominated sorting, and crowding distance
//! (Deb et al.'s NSGA-II machinery) — used by the
//! `MultiObjectiveGenetic` search in `anoncmp-anonymize` and available for
//! any "set of candidate anonymizations" analysis.
//!
//! All objectives follow the workspace convention: **higher is better**.

/// Whether objective point `a` weakly dominates `b` (component-wise `≥`).
///
/// # Panics
/// Panics if dimensions differ.
pub fn point_weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective points must share a dimension");
    a.iter().zip(b).all(|(x, y)| x >= y)
}

/// Whether `a` strongly dominates `b` (`≥` everywhere, `>` somewhere).
pub fn point_strongly_dominates(a: &[f64], b: &[f64]) -> bool {
    point_weakly_dominates(a, b) && a.iter().zip(b).any(|(x, y)| x > y)
}

/// Indices of the non-dominated points (the Pareto front) of `points`.
///
/// ```
/// use anoncmp_core::pareto::pareto_front;
/// let points = vec![
///     vec![1.0, 4.0], // on the front
///     vec![3.0, 1.0], // on the front
///     vec![1.0, 3.0], // dominated by (1,4)
/// ];
/// assert_eq!(pareto_front(&points), vec![0, 1]);
/// ```
///
/// Duplicated points are all kept (none strongly dominates its copy).
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && point_strongly_dominates(p, &points[i]))
        })
        .collect()
}

/// Fast non-dominated sorting: partitions point indices into fronts
/// `F₀, F₁, …` where `F₀` is the Pareto front and each `F_{k+1}` is the
/// front after removing `F₀ … F_k`.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    non_dominated_sort_by(points.len(), |i, j| {
        point_strongly_dominates(&points[i], &points[j])
    })
}

/// Non-dominated sorting driven by an arbitrary dominance predicate:
/// `dominates(i, j)` says whether candidate `i` strongly dominates
/// candidate `j`. This lets a precomputed pairwise structure — e.g. a
/// [`ComparisonMatrix`](crate::summary::ComparisonMatrix) built under the
/// dominance comparator — feed the sort without re-deriving relations.
/// Iteration order matches [`non_dominated_sort`] exactly.
pub fn non_dominated_sort_by(
    n: usize,
    dominates_pred: impl Fn(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i]: how many points strongly dominate i.
    // dominates[i]: which points i strongly dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates_pred(i, j) {
                dominates[i].push(j);
                dominated_by[j] += 1;
            } else if dominates_pred(j, i) {
                dominates[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// NSGA-II crowding distance of each point *within one front*: boundary
/// points on every objective get `∞`; interior points get the normalized
/// perimeter of their neighbor cuboid. Larger = less crowded = preferred
/// for diversity.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let m = points[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    #[allow(clippy::needless_range_loop)] // `obj` indexes two parallel views
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][obj]
                .partial_cmp(&points[b][obj])
                .expect("objectives are not NaN")
        });
        let lo = points[order[0]][obj];
        let hi = points[order[n - 1]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..(n - 1) {
            let prev = points[order[w - 1]][obj];
            let next = points[order[w + 1]][obj];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// Convenience: sorts point indices by `(front rank ascending, crowding
/// distance descending)` — NSGA-II's survival order.
pub fn nsga2_order(points: &[Vec<f64>]) -> Vec<usize> {
    nsga2_order_by(points, |i, j| {
        point_strongly_dominates(&points[i], &points[j])
    })
}

/// [`nsga2_order`] driven by an arbitrary dominance predicate, mirroring
/// [`non_dominated_sort_by`]: fronts come from `dominates_pred`, crowding
/// distances from the objective values in `points`.
pub fn nsga2_order_by(
    points: &[Vec<f64>],
    dominates_pred: impl Fn(usize, usize) -> bool,
) -> Vec<usize> {
    let fronts = non_dominated_sort_by(points.len(), dominates_pred);
    let mut order = Vec::with_capacity(points.len());
    for front in fronts {
        let front_points: Vec<Vec<f64>> = front.iter().map(|&i| points[i].clone()).collect();
        let crowd = crowding_distance(&front_points);
        let mut ranked: Vec<(usize, f64)> = front.into_iter().zip(crowd).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("crowding is not NaN"));
        order.extend(ranked.into_iter().map(|(i, _)| i));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_dominance_basics() {
        assert!(point_weakly_dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!point_strongly_dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(point_strongly_dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(!point_weakly_dominates(&[2.0, 1.0], &[1.0, 2.0]));
    }

    #[test]
    fn pareto_front_of_a_staircase() {
        // (1,4), (2,3), (3,1) are mutually non-dominated; (1,3) and (2,1)
        // are dominated.
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 1.0],
            vec![1.0, 3.0],
            vec![2.0, 1.0],
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_survive_the_front() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn sorting_produces_layered_fronts() {
        let pts = vec![
            vec![3.0, 3.0], // F0
            vec![2.0, 2.0], // F1
            vec![1.0, 1.0], // F2
            vec![3.0, 1.0], // F0 (incomparable with (3,3)? no: (3,3) ≻ (3,1)) → F1
            vec![1.0, 3.0], // dominated by (3,3) → F1
        ];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts[0], vec![0]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![1, 3, 4]);
        assert_eq!(fronts[2], vec![2]);
        // Every index appears exactly once.
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn empty_input() {
        assert!(non_dominated_sort(&[]).is_empty());
        assert!(pareto_front(&[]).is_empty());
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_prefers_spread_out_points() {
        // Four collinear points; the boundary two get ∞, the denser
        // interior point gets a smaller distance.
        let pts = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![1.2, 1.8],
            vec![3.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1] > d[2] || d[2] > d[1], "interior points are ranked");
        assert!(d[1].is_finite() && d[2].is_finite());
    }

    #[test]
    fn tiny_fronts_are_all_infinite() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(crowding_distance(&pts).iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn degenerate_objective_span_is_handled() {
        // All points share objective 0; distances come from objective 1
        // alone, with no NaN from the zero span.
        let pts = vec![
            vec![1.0, 0.0],
            vec![1.0, 5.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn sort_by_predicate_matches_point_sort() {
        let pts: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![((i * 3) % 5) as f64, ((i * 7) % 5) as f64])
            .collect();
        let direct = non_dominated_sort(&pts);
        let by =
            non_dominated_sort_by(pts.len(), |i, j| point_strongly_dominates(&pts[i], &pts[j]));
        assert_eq!(direct, by);
    }

    #[test]
    fn nsga2_order_by_predicate_matches_direct() {
        let pts: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![((i * 2) % 7) as f64, ((i * 5) % 7) as f64])
            .collect();
        let by = nsga2_order_by(&pts, |i, j| point_strongly_dominates(&pts[i], &pts[j]));
        assert_eq!(by, nsga2_order(&pts));
    }

    #[test]
    fn nsga2_order_ranks_first_front_first() {
        let pts = vec![
            vec![1.0, 1.0], // F1
            vec![2.0, 2.0], // F0
            vec![0.5, 0.5], // F2
        ];
        let order = nsga2_order(&pts);
        assert_eq!(order, vec![1, 0, 2]);
    }
}
