//! Strict comparators based on dominance relationships (paper §4, Table 4).
//!
//! Weak dominance (`⪰`) establishes "not worse than"; strong dominance
//! (`≻`) establishes "better than"; non-dominance (`∥`) marks incomparable
//! vectors. Theorem 1 shows these relations cannot be decided by fewer than
//! `N` unary quality indices — the motivation for the ▶-better comparators
//! in [`crate::comparators`].

use serde::{Deserialize, Serialize};

use crate::vector::{PropertySet, PropertyVector};

/// The dominance relation between two property vectors or sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DominanceRelation {
    /// Component-wise equal.
    Equal,
    /// The first strongly dominates (`≥` everywhere, `>` somewhere).
    FirstDominates,
    /// The second strongly dominates.
    SecondDominates,
    /// Incomparable: each is strictly better somewhere (`∥` in Table 4).
    Incomparable,
}

/// Whether `d1 ⪰ d2`: every component of `d1` at least matches `d2`
/// ("`G₁` is not worse than `G₂`", Table 4 row 1).
///
/// ```
/// use anoncmp_core::prelude::*;
/// let better = PropertyVector::new("b", vec![3.0, 7.0]);
/// let worse = PropertyVector::new("w", vec![3.0, 4.0]);
/// assert!(weakly_dominates(&better, &worse));
/// assert!(strongly_dominates(&better, &worse));
/// assert!(!non_dominated(&better, &worse));
/// ```
///
/// # Panics
/// Panics if dimensions differ.
pub fn weakly_dominates(d1: &PropertyVector, d2: &PropertyVector) -> bool {
    assert_eq!(d1.len(), d2.len(), "dominance requires equal dimensions");
    // Branch-free: count the satisfied components instead of short-
    // circuiting, so the inner loop is a pure compare-and-accumulate pass
    // the autovectorizer can keep in vector registers. `count(a ≥ b) == N`
    // is exactly `all(a ≥ b)` — including for NaN, where the comparison is
    // false either way. (Never rewrite this as `!any(a < b)`: that flips
    // the NaN verdict.)
    count_ge(d1.values(), d2.values()) == d1.len()
}

/// Number of components where `a[i] >= b[i]` — an 8-lane branch-free
/// reduction over the contiguous value slices.
#[inline]
fn count_ge(a: &[f64], b: &[f64]) -> usize {
    const LANES: usize = 8;
    let mut lanes = [0usize; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ab, bb) in (&mut ac).zip(&mut bc) {
        for ((n, &x), &y) in lanes.iter_mut().zip(ab).zip(bb) {
            *n += usize::from(x >= y);
        }
    }
    let mut count: usize = lanes.iter().sum();
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        count += usize::from(x >= y);
    }
    count
}

/// Both weak-dominance directions of one pair in a single fused pass:
/// `(d1 ⪰ d2, d2 ⪰ d1)`. Equivalent to two [`weakly_dominates`] calls but
/// reads each slice once — the kernel behind
/// [`ComparisonMatrix`](crate::summary::ComparisonMatrix)'s dominance
/// batch, where every pair needs both directions.
///
/// # Panics
/// Panics if dimensions differ.
pub fn dominance_pair(d1: &PropertyVector, d2: &PropertyVector) -> (bool, bool) {
    assert_eq!(d1.len(), d2.len(), "dominance requires equal dimensions");
    const LANES: usize = 8;
    let (a, b) = (d1.values(), d2.values());
    let mut fwd_lanes = [0usize; LANES];
    let mut bwd_lanes = [0usize; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ab, bb) in (&mut ac).zip(&mut bc) {
        for (i, (&x, &y)) in ab.iter().zip(bb).enumerate() {
            fwd_lanes[i] += usize::from(x >= y);
            bwd_lanes[i] += usize::from(y >= x);
        }
    }
    let mut fwd: usize = fwd_lanes.iter().sum();
    let mut bwd: usize = bwd_lanes.iter().sum();
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        fwd += usize::from(x >= y);
        bwd += usize::from(y >= x);
    }
    (fwd == a.len(), bwd == a.len())
}

/// Whether `d1 ≻ d2`: `d1 ⪰ d2` and strictly better in at least one
/// component ("`G₁` is better than `G₂`", Table 4 row 2).
pub fn strongly_dominates(d1: &PropertyVector, d2: &PropertyVector) -> bool {
    weakly_dominates(d1, d2) && d1.iter().zip(d2.iter()).any(|(a, b)| a > b)
}

/// Whether `d1 ∥ d2`: each vector is strictly better on some component
/// ("incomparable", Table 4 row 3).
pub fn non_dominated(d1: &PropertyVector, d2: &PropertyVector) -> bool {
    assert_eq!(d1.len(), d2.len(), "dominance requires equal dimensions");
    d1.iter().zip(d2.iter()).any(|(a, b)| a > b) && d1.iter().zip(d2.iter()).any(|(a, b)| a < b)
}

/// Classifies the dominance relation between two vectors.
pub fn relation(d1: &PropertyVector, d2: &PropertyVector) -> DominanceRelation {
    let fwd = weakly_dominates(d1, d2);
    let bwd = weakly_dominates(d2, d1);
    match (fwd, bwd) {
        (true, true) => DominanceRelation::Equal,
        (true, false) => DominanceRelation::FirstDominates,
        (false, true) => DominanceRelation::SecondDominates,
        (false, false) => DominanceRelation::Incomparable,
    }
}

/// Set-level weak dominance (Table 4, middle column): every property vector
/// of `s1` weakly dominates the corresponding vector of `s2`.
///
/// # Panics
/// Panics if the sets are not aligned (same properties, same order, same
/// dimension).
pub fn set_weakly_dominates(s1: &PropertySet, s2: &PropertySet) -> bool {
    assert!(
        s1.aligned_with(s2),
        "property sets must be aligned for comparison"
    );
    s1.vectors()
        .iter()
        .zip(s2.vectors())
        .all(|(a, b)| weakly_dominates(a, b))
}

/// Set-level strong dominance: weak dominance on every property and strong
/// dominance on at least one.
pub fn set_strongly_dominates(s1: &PropertySet, s2: &PropertySet) -> bool {
    set_weakly_dominates(s1, s2)
        && s1
            .vectors()
            .iter()
            .zip(s2.vectors())
            .any(|(a, b)| strongly_dominates(a, b))
}

/// Classifies the dominance relation between two aligned property sets.
pub fn set_relation(s1: &PropertySet, s2: &PropertySet) -> DominanceRelation {
    let fwd = set_weakly_dominates(s1, s2);
    let bwd = set_weakly_dominates(s2, s1);
    match (fwd, bwd) {
        (true, true) => DominanceRelation::Equal,
        (true, false) => DominanceRelation::FirstDominates,
        (false, true) => DominanceRelation::SecondDominates,
        (false, false) => DominanceRelation::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn weak_strong_and_non_dominance() {
        let a = v(&[3.0, 3.0, 4.0]);
        let b = v(&[3.0, 3.0, 3.0]);
        assert!(weakly_dominates(&a, &b));
        assert!(strongly_dominates(&a, &b));
        assert!(!weakly_dominates(&b, &a));
        assert!(!non_dominated(&a, &b));

        // Reflexivity: weak but not strong.
        assert!(weakly_dominates(&a, &a));
        assert!(!strongly_dominates(&a, &a));

        // The canonical incomparable pair from Theorem 1's base case.
        let p = v(&[1.0, 2.0]);
        let q = v(&[2.0, 1.0]);
        assert!(non_dominated(&p, &q));
        assert!(!weakly_dominates(&p, &q));
        assert!(!weakly_dominates(&q, &p));
    }

    #[test]
    fn relation_classification() {
        assert_eq!(relation(&v(&[1.0]), &v(&[1.0])), DominanceRelation::Equal);
        assert_eq!(
            relation(&v(&[2.0]), &v(&[1.0])),
            DominanceRelation::FirstDominates
        );
        assert_eq!(
            relation(&v(&[1.0]), &v(&[2.0])),
            DominanceRelation::SecondDominates
        );
        assert_eq!(
            relation(&v(&[1.0, 2.0]), &v(&[2.0, 1.0])),
            DominanceRelation::Incomparable
        );
    }

    #[test]
    fn paper_t3a_t3b_eqclass_relation() {
        // T3b's class-size vector weakly (indeed strongly) dominates T3a's.
        let s = v(&[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]);
        let t = v(&[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]);
        // Careful: tuples 5, 6, 7, 10 have size 4 in T3a vs 7 in T3b, and
        // nowhere is T3a larger — so T3b strongly dominates.
        assert!(strongly_dominates(&t, &s));
        assert_eq!(relation(&s, &t), DominanceRelation::SecondDominates);
        // T4 vs T3b: tuple 2 has size 6 in T4 vs 7 in T3b, tuple 1 has 4 vs
        // 3 — incomparable (§2's user-8 vs user-3 discussion).
        let t4 = v(&[4.0, 6.0, 4.0, 4.0, 6.0, 6.0, 6.0, 4.0, 6.0, 6.0]);
        assert_eq!(relation(&t4, &t), DominanceRelation::Incomparable);
    }

    #[test]
    fn transitivity_spot_checks() {
        let a = v(&[1.0, 1.0]);
        let b = v(&[2.0, 1.0]);
        let c = v(&[2.0, 2.0]);
        assert!(weakly_dominates(&c, &b) && weakly_dominates(&b, &a));
        assert!(weakly_dominates(&c, &a));
        assert!(strongly_dominates(&c, &a));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = weakly_dominates(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    fn fused_pair_matches_two_calls() {
        // Long enough to exercise both the 8-lane blocks and the remainder.
        let xs: Vec<f64> = (0..21).map(|i| f64::from(i % 5)).collect();
        let ys: Vec<f64> = (0..21).map(|i| f64::from((i * 3) % 5)).collect();
        for (a, b) in [
            (v(&xs), v(&ys)),
            (v(&[1.0, 2.0]), v(&[2.0, 1.0])),
            (v(&[3.0; 9]), v(&[3.0; 9])),
            (v(&[]), v(&[])),
        ] {
            assert_eq!(
                dominance_pair(&a, &b),
                (weakly_dominates(&a, &b), weakly_dominates(&b, &a))
            );
        }
    }

    #[test]
    fn nan_components_break_dominance_both_ways() {
        // NaN compares false under both ≥ directions, so a NaN component
        // must make the pair incomparable — for the scalar path and the
        // fused kernel alike.
        let a = v(&[1.0, f64::NAN, 3.0]);
        let b = v(&[1.0, 2.0, 3.0]);
        assert!(!weakly_dominates(&a, &b));
        assert!(!weakly_dominates(&b, &a));
        assert_eq!(dominance_pair(&a, &b), (false, false));
        assert_eq!(relation(&a, &b), DominanceRelation::Incomparable);
    }

    #[test]
    fn set_level_dominance() {
        use crate::vector::PropertySet;
        let mk = |n: &str, p: &[f64], u: &[f64]| {
            PropertySet::new(
                n,
                vec![
                    PropertyVector::new("priv", p.to_vec()),
                    PropertyVector::new("util", u.to_vec()),
                ],
            )
        };
        let s1 = mk("a", &[3.0, 3.0], &[2.0, 2.0]);
        let s2 = mk("b", &[3.0, 3.0], &[1.0, 2.0]);
        assert!(set_weakly_dominates(&s1, &s2));
        assert!(set_strongly_dominates(&s1, &s2));
        assert_eq!(set_relation(&s1, &s2), DominanceRelation::FirstDominates);
        assert_eq!(set_relation(&s1, &s1), DominanceRelation::Equal);

        // Privacy better in one, utility better in the other → incomparable.
        let s3 = mk("c", &[4.0, 4.0], &[1.0, 1.0]);
        assert_eq!(set_relation(&s1, &s3), DominanceRelation::Incomparable);
        assert!(!set_strongly_dominates(&s1, &s3));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_sets_panic() {
        use crate::vector::PropertySet;
        let s1 = PropertySet::new("a", vec![PropertyVector::new("x", vec![1.0])]);
        let s2 = PropertySet::new("b", vec![PropertyVector::new("y", vec![1.0])]);
        let _ = set_weakly_dominates(&s1, &s2);
    }
}
