//! Tournament summaries: comparing *sets of candidate anonymizations*.
//!
//! The paper's comparators are pairwise; real studies (its §1: "to better
//! compare anonymization algorithms") involve several candidates. This
//! module runs a comparator over all ordered pairs and aggregates the
//! verdicts into a [`ComparisonMatrix`] with Copeland scores (wins −
//! losses), the standard way to turn pairwise preferences into a ranking.

use crate::comparators::{Comparator, Preference};
use crate::preference::SetComparator;
use crate::vector::{PropertySet, PropertyVector};

/// All pairwise outcomes of one comparator over a candidate list.
///
/// ```
/// use anoncmp_core::prelude::*;
/// let a = PropertyVector::new("a", vec![3.0, 3.0]);
/// let b = PropertyVector::new("b", vec![2.0, 2.0]);
/// let m = ComparisonMatrix::of_vectors(&["a", "b"], &[a, b], &CoverageComparator);
/// assert_eq!(m.champion(), Some(0));
/// assert_eq!(m.copeland(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ComparisonMatrix {
    names: Vec<String>,
    /// `outcome[i][j]` is the preference of candidate `i` vs candidate `j`
    /// (diagonal entries are `Tie`).
    outcomes: Vec<Vec<Preference>>,
    comparator: String,
}

impl ComparisonMatrix {
    /// Compares every pair of property vectors under `comparator`.
    ///
    /// # Panics
    /// Panics if `names` and `vectors` lengths differ, or the comparator
    /// itself panics (e.g. dimension mismatches).
    pub fn of_vectors(
        names: &[&str],
        vectors: &[PropertyVector],
        comparator: &dyn Comparator,
    ) -> Self {
        assert_eq!(names.len(), vectors.len(), "one name per candidate");
        let outcomes = (0..vectors.len())
            .map(|i| {
                (0..vectors.len())
                    .map(|j| {
                        if i == j {
                            Preference::Tie
                        } else {
                            comparator.compare(&vectors[i], &vectors[j])
                        }
                    })
                    .collect()
            })
            .collect();
        ComparisonMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            outcomes,
            comparator: comparator.name(),
        }
    }

    /// Compares every pair of aligned property sets under a
    /// multi-property comparator.
    pub fn of_sets(sets: &[PropertySet], comparator: &dyn SetComparator) -> Self {
        let outcomes = (0..sets.len())
            .map(|i| {
                (0..sets.len())
                    .map(|j| {
                        if i == j {
                            Preference::Tie
                        } else {
                            comparator.compare(&sets[i], &sets[j])
                        }
                    })
                    .collect()
            })
            .collect();
        ComparisonMatrix {
            names: sets.iter().map(|s| s.anonymization().to_owned()).collect(),
            outcomes,
            comparator: comparator.name(),
        }
    }

    /// Candidate names, in input order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The comparator's name.
    pub fn comparator(&self) -> &str {
        &self.comparator
    }

    /// The verdict of candidate `i` against candidate `j`.
    pub fn outcome(&self, i: usize, j: usize) -> Preference {
        self.outcomes[i][j]
    }

    /// Number of strict wins of candidate `i`.
    pub fn wins(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::First)
            .count()
    }

    /// Number of strict losses of candidate `i`.
    pub fn losses(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::Second)
            .count()
    }

    /// Number of incomparable verdicts involving candidate `i` (only
    /// nonzero for dominance-based comparators).
    pub fn incomparabilities(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::Incomparable)
            .count()
    }

    /// Copeland score of candidate `i`: wins − losses.
    pub fn copeland(&self, i: usize) -> i64 {
        self.wins(i) as i64 - self.losses(i) as i64
    }

    /// Candidate indices ranked by Copeland score (best first, stable for
    /// ties).
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.names.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.copeland(i)));
        order
    }

    /// The champion's index (highest Copeland score), if any candidates
    /// exist.
    pub fn champion(&self) -> Option<usize> {
        self.ranking().first().copied()
    }

    /// Renders the matrix and ranking as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("pairwise verdicts under ▶{}:\n", self.comparator));
        let w = self.names.iter().map(String::len).max().unwrap_or(4).max(4);
        out.push_str(&format!("  {:<w$}", "", w = w + 1));
        for n in &self.names {
            out.push_str(&format!(" {n:>w$}", w = w));
        }
        out.push('\n');
        for (i, n) in self.names.iter().enumerate() {
            out.push_str(&format!("  {n:<w$}", w = w + 1));
            for j in 0..self.names.len() {
                let cell = match self.outcomes[i][j] {
                    _ if i == j => "—",
                    Preference::First => "▶",
                    Preference::Second => "◀",
                    Preference::Tie => "=",
                    Preference::Incomparable => "∥",
                };
                out.push_str(&format!(" {cell:>w$}", w = w));
            }
            out.push('\n');
        }
        out.push_str("  ranking (Copeland):");
        for &i in &self.ranking() {
            out.push_str(&format!(" {} ({:+})", self.names[i], self.copeland(i)));
        }
        out.push('\n');
        out
    }
}

/// Kendall rank-correlation (tau-a) between two rankings of the same
/// candidates, each given as a list of candidate indices from best to
/// worst. `1.0` means identical order, `-1.0` fully reversed, `0.0`
/// uncorrelated. Useful for asking "do two comparators agree on who is
/// better?" across a candidate pool.
///
/// # Panics
/// Panics if the rankings differ in length, contain different index sets,
/// or have fewer than two candidates.
pub fn kendall_tau(ranking_a: &[usize], ranking_b: &[usize]) -> f64 {
    assert_eq!(
        ranking_a.len(),
        ranking_b.len(),
        "rankings must cover the same candidates"
    );
    let n = ranking_a.len();
    assert!(n >= 2, "rank correlation needs at least two candidates");
    // position[candidate] in each ranking.
    let pos = |ranking: &[usize]| -> Vec<usize> {
        let mut p = vec![usize::MAX; n];
        for (rank, &cand) in ranking.iter().enumerate() {
            assert!(cand < n, "candidate index out of range");
            assert_eq!(p[cand], usize::MAX, "duplicate candidate in ranking");
            p[cand] = rank;
        }
        p
    };
    let pa = pos(ranking_a);
    let pb = pos(ranking_b);
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = (pa[i] as i64 - pa[j] as i64).signum();
            let b = (pb[i] as i64 - pb[j] as i64).signum();
            if a * b > 0 {
                concordant += 1;
            } else if a * b < 0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparators::{CoverageComparator, DominanceComparator};
    use crate::index::BinaryIndex;
    use crate::preference::WeightedComparator;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn matrix_and_copeland_scores() {
        // a dominates b dominates c.
        let vecs = vec![v(&[3.0, 3.0]), v(&[2.0, 2.0]), v(&[1.0, 1.0])];
        let m = ComparisonMatrix::of_vectors(&["a", "b", "c"], &vecs, &CoverageComparator);
        assert_eq!(m.outcome(0, 1), Preference::First);
        assert_eq!(m.outcome(1, 0), Preference::Second);
        assert_eq!(m.wins(0), 2);
        assert_eq!(m.losses(2), 2);
        assert_eq!(m.copeland(0), 2);
        assert_eq!(m.copeland(1), 0);
        assert_eq!(m.copeland(2), -2);
        assert_eq!(m.ranking(), vec![0, 1, 2]);
        assert_eq!(m.champion(), Some(0));
        assert_eq!(m.comparator(), "cov");
        assert_eq!(m.names(), &["a", "b", "c"]);
    }

    #[test]
    fn incomparabilities_counted_for_dominance() {
        let vecs = vec![v(&[2.0, 1.0]), v(&[1.0, 2.0])];
        let m = ComparisonMatrix::of_vectors(&["a", "b"], &vecs, &DominanceComparator);
        assert_eq!(m.incomparabilities(0), 1);
        assert_eq!(m.copeland(0), 0);
        let s = m.render();
        assert!(s.contains('∥'));
    }

    #[test]
    fn set_matrix_via_wtd() {
        let mk = |name: &str, p: &[f64], u: &[f64]| {
            PropertySet::new(
                name,
                vec![
                    PropertyVector::new("priv", p.to_vec()),
                    PropertyVector::new("util", u.to_vec()),
                ],
            )
        };
        let sets = vec![
            mk("good", &[5.0, 5.0], &[5.0, 5.0]),
            mk("bad", &[1.0, 1.0], &[1.0, 1.0]),
        ];
        let wtd = WeightedComparator::equal(vec![
            Box::new(CoverageComparator) as Box<dyn BinaryIndex>,
            Box::new(CoverageComparator),
        ]);
        let m = ComparisonMatrix::of_sets(&sets, &wtd);
        assert_eq!(m.champion(), Some(0));
        assert!(m.render().contains("good"));
    }

    #[test]
    fn render_shape() {
        let vecs = vec![v(&[1.0]), v(&[1.0])];
        let m = ComparisonMatrix::of_vectors(&["x", "y"], &vecs, &CoverageComparator);
        let s = m.render();
        assert!(s.contains('='));
        assert!(s.contains("ranking (Copeland): x (+0) y (+0)"));
    }

    #[test]
    #[should_panic(expected = "one name per candidate")]
    fn name_count_checked() {
        let _ = ComparisonMatrix::of_vectors(&["a"], &[v(&[1.0]), v(&[2.0])], &CoverageComparator);
    }

    #[test]
    fn kendall_tau_values() {
        assert_eq!(kendall_tau(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(kendall_tau(&[0, 1, 2], &[2, 1, 0]), -1.0);
        // One adjacent swap out of three pairs: (3 - 1 - 1·2)/… compute:
        // pairs = 3, concordant 2, discordant 1 → 1/3.
        assert!((kendall_tau(&[0, 1, 2], &[1, 0, 2]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_between_comparator_rankings() {
        use crate::comparators::SpreadComparator;
        let vecs = vec![v(&[5.0, 5.0]), v(&[3.0, 3.0]), v(&[1.0, 1.0])];
        let names = ["a", "b", "c"];
        let cov = ComparisonMatrix::of_vectors(&names, &vecs, &CoverageComparator);
        let spr = ComparisonMatrix::of_vectors(&names, &vecs, &SpreadComparator);
        // On a dominance chain every comparator agrees.
        assert_eq!(kendall_tau(&cov.ranking(), &spr.ranking()), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate")]
    fn kendall_rejects_duplicates() {
        let _ = kendall_tau(&[0, 0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "same candidates")]
    fn kendall_rejects_length_mismatch() {
        let _ = kendall_tau(&[0, 1], &[0, 1, 2]);
    }

    #[test]
    fn empty_matrix() {
        let m = ComparisonMatrix::of_vectors(&[], &[], &CoverageComparator);
        assert_eq!(m.champion(), None);
        assert!(m.ranking().is_empty());
    }
}
