//! Tournament summaries: comparing *sets of candidate anonymizations*.
//!
//! The paper's comparators are pairwise; real studies (its §1: "to better
//! compare anonymization algorithms") involve several candidates. This
//! module runs a comparator over all ordered pairs and aggregates the
//! verdicts into a [`ComparisonMatrix`] with Copeland scores (wins −
//! losses), the standard way to turn pairwise preferences into a ranking.
//!
//! The matrix is built by a batched kernel: the comparator publishes a
//! [`BatchSpec`] describing which of its work is per-vector (computed once
//! per candidate) and which is symmetric in a pair (computed once per
//! unordered pair), and the kernel fills the upper triangle plus its
//! mirror from that shared work — bit-identical to the naive `M(M−1)`
//! scalar sweep, at a fraction of the floating-point work.
//! [`ComparisonMatrix::of_vectors_parallel`] additionally spreads the pair
//! list over threads.

use crate::comparators::{
    additive_epsilon_index, coverage_index, multiplicative_epsilon_index, prefer_higher,
    prefer_lower, shared_min_product, spread_index, BatchSpec, Comparator, Preference,
};
use crate::dominance::dominance_pair;
use crate::preference::SetComparator;
use crate::vector::{PropertySet, PropertyVector};

/// Maps a pair of weak-dominance checks to the preference
/// [`DominanceComparator`](crate::comparators::DominanceComparator)
/// produces — the same four-way match as `dominance::relation`.
fn dominance_preference(fwd: bool, bwd: bool) -> Preference {
    match (fwd, bwd) {
        (true, true) => Preference::Tie,
        (true, false) => Preference::First,
        (false, true) => Preference::Second,
        (false, false) => Preference::Incomparable,
    }
}

/// Evaluates one unordered pair `(i, j)` under a batch spec, returning
/// `(outcome[i][j], outcome[j][i])`.
///
/// For every built-in spec the two directions share their index values:
/// the scalar path would recompute the identical pure-function values for
/// the mirrored call, so reusing them with swapped arguments reproduces it
/// bit-for-bit.
fn pair_outcomes(
    spec: &BatchSpec,
    comparator: &dyn Comparator,
    vectors: &[PropertyVector],
    i: usize,
    j: usize,
) -> (Preference, Preference) {
    match spec {
        BatchSpec::Keyed {
            keys,
            lower_is_better,
            epsilon,
        } => {
            if *lower_is_better {
                (
                    prefer_lower(keys[i], keys[j], *epsilon),
                    prefer_lower(keys[j], keys[i], *epsilon),
                )
            } else {
                (
                    prefer_higher(keys[i], keys[j], *epsilon),
                    prefer_higher(keys[j], keys[i], *epsilon),
                )
            }
        }
        BatchSpec::Coverage => {
            let f = coverage_index(&vectors[i], &vectors[j]);
            let b = coverage_index(&vectors[j], &vectors[i]);
            (prefer_higher(f, b, 0.0), prefer_higher(b, f, 0.0))
        }
        BatchSpec::Spread => {
            let f = spread_index(&vectors[i], &vectors[j]);
            let b = spread_index(&vectors[j], &vectors[i]);
            (prefer_higher(f, b, 0.0), prefer_higher(b, f, 0.0))
        }
        BatchSpec::AdditiveEpsilon => {
            let f = additive_epsilon_index(&vectors[i], &vectors[j]);
            let b = additive_epsilon_index(&vectors[j], &vectors[i]);
            (prefer_lower(f, b, 0.0), prefer_lower(b, f, 0.0))
        }
        BatchSpec::MultiplicativeEpsilon => {
            let f = multiplicative_epsilon_index(&vectors[i], &vectors[j]);
            let b = multiplicative_epsilon_index(&vectors[j], &vectors[i]);
            (prefer_lower(f, b, 0.0), prefer_lower(b, f, 0.0))
        }
        BatchSpec::HypervolumeExact { own } => {
            let shared = shared_min_product(&vectors[i], &vectors[j]);
            (
                prefer_higher(own[i] - shared, own[j] - shared, 0.0),
                prefer_higher(own[j] - shared, own[i] - shared, 0.0),
            )
        }
        BatchSpec::Dominance => {
            // One fused pass yields both directions (reads each vector
            // once); the preference mapping is unchanged.
            let (fwd, bwd) = dominance_pair(&vectors[i], &vectors[j]);
            (
                dominance_preference(fwd, bwd),
                dominance_preference(bwd, fwd),
            )
        }
        BatchSpec::Pairwise => (
            comparator.compare(&vectors[i], &vectors[j]),
            comparator.compare(&vectors[j], &vectors[i]),
        ),
    }
}

/// Fills the upper triangle (and its mirror) of `outcomes` sequentially.
fn fill_outcomes(
    outcomes: &mut [Vec<Preference>],
    spec: &BatchSpec,
    comparator: &dyn Comparator,
    vectors: &[PropertyVector],
) {
    #[allow(clippy::needless_range_loop)] // `i`/`j` index `outcomes` and `vectors` in lockstep
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            let (f, b) = pair_outcomes(spec, comparator, vectors, i, j);
            outcomes[i][j] = f;
            outcomes[j][i] = b;
        }
    }
}

/// All pairwise outcomes of one comparator over a candidate list.
///
/// ```
/// use anoncmp_core::prelude::*;
/// let a = PropertyVector::new("a", vec![3.0, 3.0]);
/// let b = PropertyVector::new("b", vec![2.0, 2.0]);
/// let m = ComparisonMatrix::of_vectors(&["a", "b"], &[a, b], &CoverageComparator);
/// assert_eq!(m.champion(), Some(0));
/// assert_eq!(m.copeland(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ComparisonMatrix {
    names: Vec<String>,
    /// `outcome[i][j]` is the preference of candidate `i` vs candidate `j`
    /// (diagonal entries are `Tie`).
    outcomes: Vec<Vec<Preference>>,
    comparator: String,
}

impl ComparisonMatrix {
    /// Compares every pair of property vectors under `comparator`.
    ///
    /// Runs the batched kernel: the comparator's [`BatchSpec`] shares
    /// per-vector and per-pair work across the matrix, producing outcomes
    /// bit-identical to calling [`Comparator::compare`] on every ordered
    /// pair. Use [`ComparisonMatrix::of_vectors_parallel`] to additionally
    /// spread the pair evaluations over threads.
    ///
    /// # Panics
    /// Panics if `names` and `vectors` lengths differ, or the comparator
    /// itself panics (e.g. dimension mismatches).
    pub fn of_vectors(
        names: &[&str],
        vectors: &[PropertyVector],
        comparator: &dyn Comparator,
    ) -> Self {
        assert_eq!(names.len(), vectors.len(), "one name per candidate");
        let m = vectors.len();
        let mut outcomes = vec![vec![Preference::Tie; m]; m];
        if m >= 2 {
            let spec = comparator.batch_spec(vectors);
            fill_outcomes(&mut outcomes, &spec, comparator, vectors);
        }
        ComparisonMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            outcomes,
            comparator: comparator.name(),
        }
    }

    /// Like [`ComparisonMatrix::of_vectors`], with the pair evaluations
    /// chunked over up to `threads` worker threads. The outcome matrix is
    /// identical to the sequential kernel's — each pair's verdict depends
    /// only on that pair, so scheduling cannot change results.
    ///
    /// # Panics
    /// Panics if `names` and `vectors` lengths differ, or the comparator
    /// itself panics (worker panics are propagated).
    pub fn of_vectors_parallel(
        names: &[&str],
        vectors: &[PropertyVector],
        comparator: &(dyn Comparator + Sync),
        threads: usize,
    ) -> Self {
        assert_eq!(names.len(), vectors.len(), "one name per candidate");
        let m = vectors.len();
        let mut outcomes = vec![vec![Preference::Tie; m]; m];
        if m >= 2 {
            let spec = comparator.batch_spec(vectors);
            let pairs: Vec<(usize, usize)> = (0..m)
                .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
                .collect();
            let threads = threads.clamp(1, pairs.len());
            if threads <= 1 {
                fill_outcomes(&mut outcomes, &spec, comparator, vectors);
            } else {
                let chunk = pairs.len().div_ceil(threads);
                let spec = &spec;
                let parts: Vec<Vec<(usize, usize, Preference, Preference)>> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = pairs
                            .chunks(chunk)
                            .map(|part| {
                                s.spawn(move || {
                                    part.iter()
                                        .map(|&(i, j)| {
                                            let (f, b) =
                                                pair_outcomes(spec, comparator, vectors, i, j);
                                            (i, j, f, b)
                                        })
                                        .collect()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("comparator worker panicked"))
                            .collect()
                    });
                for part in parts {
                    for (i, j, f, b) in part {
                        outcomes[i][j] = f;
                        outcomes[j][i] = b;
                    }
                }
            }
        }
        ComparisonMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            outcomes,
            comparator: comparator.name(),
        }
    }

    /// Compares every pair of aligned property sets under a
    /// multi-property comparator.
    pub fn of_sets(sets: &[PropertySet], comparator: &dyn SetComparator) -> Self {
        let outcomes = (0..sets.len())
            .map(|i| {
                (0..sets.len())
                    .map(|j| {
                        if i == j {
                            Preference::Tie
                        } else {
                            comparator.compare(&sets[i], &sets[j])
                        }
                    })
                    .collect()
            })
            .collect();
        ComparisonMatrix {
            names: sets.iter().map(|s| s.anonymization().to_owned()).collect(),
            outcomes,
            comparator: comparator.name(),
        }
    }

    /// Candidate names, in input order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The comparator's name.
    pub fn comparator(&self) -> &str {
        &self.comparator
    }

    /// The verdict of candidate `i` against candidate `j`.
    pub fn outcome(&self, i: usize, j: usize) -> Preference {
        self.outcomes[i][j]
    }

    /// Number of strict wins of candidate `i`.
    pub fn wins(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::First)
            .count()
    }

    /// Number of strict losses of candidate `i`.
    pub fn losses(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::Second)
            .count()
    }

    /// Number of incomparable verdicts involving candidate `i` (only
    /// nonzero for dominance-based comparators).
    pub fn incomparabilities(&self, i: usize) -> usize {
        self.outcomes[i]
            .iter()
            .filter(|&&p| p == Preference::Incomparable)
            .count()
    }

    /// Copeland score of candidate `i`: wins − losses.
    pub fn copeland(&self, i: usize) -> i64 {
        self.wins(i) as i64 - self.losses(i) as i64
    }

    /// Candidate indices ranked by Copeland score (best first, stable for
    /// ties).
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.names.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.copeland(i)));
        order
    }

    /// The champion's index (highest Copeland score), if any candidates
    /// exist.
    pub fn champion(&self) -> Option<usize> {
        self.ranking().first().copied()
    }

    /// Renders the matrix and ranking as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("pairwise verdicts under ▶{}:\n", self.comparator));
        let w = self.names.iter().map(String::len).max().unwrap_or(4).max(4);
        out.push_str(&format!("  {:<w$}", "", w = w + 1));
        for n in &self.names {
            out.push_str(&format!(" {n:>w$}", w = w));
        }
        out.push('\n');
        for (i, n) in self.names.iter().enumerate() {
            out.push_str(&format!("  {n:<w$}", w = w + 1));
            for j in 0..self.names.len() {
                let cell = match self.outcomes[i][j] {
                    _ if i == j => "—",
                    Preference::First => "▶",
                    Preference::Second => "◀",
                    Preference::Tie => "=",
                    Preference::Incomparable => "∥",
                };
                out.push_str(&format!(" {cell:>w$}", w = w));
            }
            out.push('\n');
        }
        out.push_str("  ranking (Copeland):");
        for &i in &self.ranking() {
            out.push_str(&format!(" {} ({:+})", self.names[i], self.copeland(i)));
        }
        out.push('\n');
        out
    }
}

/// Kendall rank-correlation (tau-a) between two rankings of the same
/// candidates, each given as a list of candidate indices from best to
/// worst. `1.0` means identical order, `-1.0` fully reversed, `0.0`
/// uncorrelated. Useful for asking "do two comparators agree on who is
/// better?" across a candidate pool.
///
/// # Panics
/// Panics if the rankings differ in length, contain different index sets,
/// or have fewer than two candidates.
pub fn kendall_tau(ranking_a: &[usize], ranking_b: &[usize]) -> f64 {
    assert_eq!(
        ranking_a.len(),
        ranking_b.len(),
        "rankings must cover the same candidates"
    );
    let n = ranking_a.len();
    assert!(n >= 2, "rank correlation needs at least two candidates");
    // position[candidate] in each ranking.
    let pos = |ranking: &[usize]| -> Vec<usize> {
        let mut p = vec![usize::MAX; n];
        for (rank, &cand) in ranking.iter().enumerate() {
            assert!(cand < n, "candidate index out of range");
            assert_eq!(p[cand], usize::MAX, "duplicate candidate in ranking");
            p[cand] = rank;
        }
        p
    };
    let pa = pos(ranking_a);
    let pb = pos(ranking_b);
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = (pa[i] as i64 - pa[j] as i64).signum();
            let b = (pb[i] as i64 - pb[j] as i64).signum();
            if a * b > 0 {
                concordant += 1;
            } else if a * b < 0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparators::{CoverageComparator, DominanceComparator};
    use crate::index::BinaryIndex;
    use crate::preference::WeightedComparator;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn matrix_and_copeland_scores() {
        // a dominates b dominates c.
        let vecs = vec![v(&[3.0, 3.0]), v(&[2.0, 2.0]), v(&[1.0, 1.0])];
        let m = ComparisonMatrix::of_vectors(&["a", "b", "c"], &vecs, &CoverageComparator);
        assert_eq!(m.outcome(0, 1), Preference::First);
        assert_eq!(m.outcome(1, 0), Preference::Second);
        assert_eq!(m.wins(0), 2);
        assert_eq!(m.losses(2), 2);
        assert_eq!(m.copeland(0), 2);
        assert_eq!(m.copeland(1), 0);
        assert_eq!(m.copeland(2), -2);
        assert_eq!(m.ranking(), vec![0, 1, 2]);
        assert_eq!(m.champion(), Some(0));
        assert_eq!(m.comparator(), "cov");
        assert_eq!(m.names(), &["a", "b", "c"]);
    }

    #[test]
    fn incomparabilities_counted_for_dominance() {
        let vecs = vec![v(&[2.0, 1.0]), v(&[1.0, 2.0])];
        let m = ComparisonMatrix::of_vectors(&["a", "b"], &vecs, &DominanceComparator);
        assert_eq!(m.incomparabilities(0), 1);
        assert_eq!(m.copeland(0), 0);
        let s = m.render();
        assert!(s.contains('∥'));
    }

    #[test]
    fn set_matrix_via_wtd() {
        let mk = |name: &str, p: &[f64], u: &[f64]| {
            PropertySet::new(
                name,
                vec![
                    PropertyVector::new("priv", p.to_vec()),
                    PropertyVector::new("util", u.to_vec()),
                ],
            )
        };
        let sets = vec![
            mk("good", &[5.0, 5.0], &[5.0, 5.0]),
            mk("bad", &[1.0, 1.0], &[1.0, 1.0]),
        ];
        let wtd = WeightedComparator::equal(vec![
            Box::new(CoverageComparator) as Box<dyn BinaryIndex>,
            Box::new(CoverageComparator),
        ]);
        let m = ComparisonMatrix::of_sets(&sets, &wtd);
        assert_eq!(m.champion(), Some(0));
        assert!(m.render().contains("good"));
    }

    #[test]
    fn render_shape() {
        let vecs = vec![v(&[1.0]), v(&[1.0])];
        let m = ComparisonMatrix::of_vectors(&["x", "y"], &vecs, &CoverageComparator);
        let s = m.render();
        assert!(s.contains('='));
        assert!(s.contains("ranking (Copeland): x (+0) y (+0)"));
    }

    #[test]
    #[should_panic(expected = "one name per candidate")]
    fn name_count_checked() {
        let _ = ComparisonMatrix::of_vectors(&["a"], &[v(&[1.0]), v(&[2.0])], &CoverageComparator);
    }

    #[test]
    fn kendall_tau_values() {
        assert_eq!(kendall_tau(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(kendall_tau(&[0, 1, 2], &[2, 1, 0]), -1.0);
        // One adjacent swap out of three pairs: (3 - 1 - 1·2)/… compute:
        // pairs = 3, concordant 2, discordant 1 → 1/3.
        assert!((kendall_tau(&[0, 1, 2], &[1, 0, 2]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_between_comparator_rankings() {
        use crate::comparators::SpreadComparator;
        let vecs = vec![v(&[5.0, 5.0]), v(&[3.0, 3.0]), v(&[1.0, 1.0])];
        let names = ["a", "b", "c"];
        let cov = ComparisonMatrix::of_vectors(&names, &vecs, &CoverageComparator);
        let spr = ComparisonMatrix::of_vectors(&names, &vecs, &SpreadComparator);
        // On a dominance chain every comparator agrees.
        assert_eq!(kendall_tau(&cov.ranking(), &spr.ranking()), 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate")]
    fn kendall_rejects_duplicates() {
        let _ = kendall_tau(&[0, 0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "same candidates")]
    fn kendall_rejects_length_mismatch() {
        let _ = kendall_tau(&[0, 1], &[0, 1, 2]);
    }

    #[test]
    fn empty_matrix() {
        let m = ComparisonMatrix::of_vectors(&[], &[], &CoverageComparator);
        assert_eq!(m.champion(), None);
        assert!(m.ranking().is_empty());
    }

    /// A deterministic pool of positive vectors with plenty of ties,
    /// dominance chains, and incomparable pairs.
    fn pool(m: usize, n: usize) -> (Vec<String>, Vec<PropertyVector>) {
        let vectors: Vec<PropertyVector> = (0..m)
            .map(|i| {
                let vals: Vec<f64> = (0..n)
                    .map(|t| ((i * 7 + t * 11) % 13) as f64 + 1.0)
                    .collect();
                PropertyVector::new(format!("c{i}"), vals)
            })
            .collect();
        let names = (0..m).map(|i| format!("c{i}")).collect();
        (names, vectors)
    }

    /// The naive scalar sweep the kernel must reproduce bit-for-bit.
    fn scalar_outcomes(vectors: &[PropertyVector], cmp: &dyn Comparator) -> Vec<Vec<Preference>> {
        (0..vectors.len())
            .map(|i| {
                (0..vectors.len())
                    .map(|j| {
                        if i == j {
                            Preference::Tie
                        } else {
                            cmp.compare(&vectors[i], &vectors[j])
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_kernel_matches_scalar_sweep_for_every_comparator() {
        use crate::comparators::{
            EpsilonComparator, EpsilonKind, HvMode, HypervolumeComparator, RankComparator,
            SpreadComparator,
        };
        let (names, vectors) = pool(9, 17);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rank = RankComparator::toward_uniform(14.0, 17).with_epsilon(0.25);
        let ideal = RankComparator::toward_ideal_of(&vectors.iter().collect::<Vec<_>>());
        let comparators: Vec<Box<dyn Comparator>> = vec![
            Box::new(CoverageComparator),
            Box::new(SpreadComparator),
            Box::new(rank),
            Box::new(ideal),
            Box::new(HypervolumeComparator::with_mode(HvMode::Exact)),
            Box::new(HypervolumeComparator::with_mode(HvMode::Log)),
            Box::new(HypervolumeComparator::default()),
            Box::new(EpsilonComparator::default()),
            Box::new(EpsilonComparator {
                kind: EpsilonKind::Multiplicative,
            }),
            Box::new(DominanceComparator),
        ];
        for cmp in &comparators {
            let expected = scalar_outcomes(&vectors, cmp.as_ref());
            let m = ComparisonMatrix::of_vectors(&name_refs, &vectors, cmp.as_ref());
            #[allow(clippy::needless_range_loop)] // `i`/`j` index `expected` and `m` in lockstep
            for i in 0..vectors.len() {
                for j in 0..vectors.len() {
                    assert_eq!(
                        m.outcome(i, j),
                        expected[i][j],
                        "{} disagrees at ({i},{j})",
                        cmp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_kernel_matches_sequential() {
        use crate::comparators::{HypervolumeComparator, RankComparator, SpreadComparator};
        let (names, vectors) = pool(13, 31);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let rank = RankComparator::toward_uniform(14.0, 31);
        let comparators: Vec<&(dyn Comparator + Sync)> = vec![
            &CoverageComparator,
            &SpreadComparator,
            &rank,
            &HypervolumeComparator {
                mode: crate::comparators::HvMode::Exact,
            },
            &DominanceComparator,
        ];
        for cmp in comparators {
            let seq = ComparisonMatrix::of_vectors(&name_refs, &vectors, cmp);
            for threads in [1, 2, 5, 64] {
                let par = ComparisonMatrix::of_vectors_parallel(&name_refs, &vectors, cmp, threads);
                for i in 0..vectors.len() {
                    for j in 0..vectors.len() {
                        assert_eq!(
                            par.outcome(i, j),
                            seq.outcome(i, j),
                            "{} with {threads} threads disagrees at ({i},{j})",
                            Comparator::name(cmp)
                        );
                    }
                }
                assert_eq!(par.ranking(), seq.ranking());
            }
        }
    }

    #[test]
    fn unknown_comparators_fall_back_to_pairwise() {
        // A deliberately non-antisymmetric comparator: the kernel must not
        // mirror it, only evaluate both ordered calls.
        struct AlwaysFirst;
        impl Comparator for AlwaysFirst {
            fn name(&self) -> String {
                "always-first".into()
            }
            fn compare(&self, _: &PropertyVector, _: &PropertyVector) -> Preference {
                Preference::First
            }
        }
        let (names, vectors) = pool(4, 3);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let m = ComparisonMatrix::of_vectors(&name_refs, &vectors, &AlwaysFirst);
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j {
                    Preference::Tie
                } else {
                    Preference::First
                };
                assert_eq!(m.outcome(i, j), want);
            }
        }
    }

    #[test]
    fn single_candidate_matrix_is_trivial() {
        // One candidate means no pairs: the kernel must not touch the
        // comparator (a nonpositive vector under hv would otherwise panic
        // during precomputation where the scalar path never evaluated it).
        let v = PropertyVector::new("z", vec![0.0, -1.0]);
        let m = ComparisonMatrix::of_vectors(
            &["z"],
            &[v],
            &crate::comparators::HypervolumeComparator::default(),
        );
        assert_eq!(m.outcome(0, 0), Preference::Tie);
        assert_eq!(m.champion(), Some(0));
    }
}
