//! # anoncmp-core
//!
//! The comparison framework of *"On the Comparison of Microdata Disclosure
//! Control Algorithms"* (Dewri, Ray, Ray & Whitley, EDBT 2009): property
//! vectors, quality index functions, dominance-based strict comparators,
//! the ▶-better comparators (rank, coverage, spread, hypervolume),
//! multi-property preference schemes (weighted, lexicographic, goal-based),
//! anonymization-bias statistics, and the computational apparatus for
//! Theorem 1.
//!
//! ## The idea
//!
//! Scalar privacy parameters such as `k` in k-anonymity describe an entire
//! release with one aggregate number, hiding *anonymization bias*: two
//! releases with the same `k` can protect individual tuples very
//! differently. The paper represents each measurable property of a release
//! as an `N`-dimensional **property vector** — one component per tuple —
//! and compares anonymizations through functions on those vectors.
//!
//! ## Quick tour
//!
//! ```
//! use anoncmp_core::prelude::*;
//!
//! // The paper's equivalence-class-size vectors for T3a and T3b — both
//! // 3-anonymous, yet far from equally protective.
//! let t3a = PropertyVector::from_usizes("eq-class-size", &[3, 3, 3, 3, 4, 4, 4, 3, 3, 4]);
//! let t3b = PropertyVector::from_usizes("eq-class-size", &[3, 7, 7, 3, 7, 7, 7, 3, 7, 7]);
//!
//! // The scalar view cannot separate them…
//! assert_eq!(classic::MinIndex.value(&t3a), classic::MinIndex.value(&t3b));
//!
//! // …but the vector view can: T3b strongly dominates T3a,
//! assert!(strongly_dominates(&t3b, &t3a));
//!
//! // and the coverage comparator quantifies by how much: every tuple of
//! // T3b does at least as well, only 30% of T3a's do.
//! assert_eq!(coverage_index(&t3b, &t3a), 1.0);
//! assert_eq!(coverage_index(&t3a, &t3b), 0.3);
//! assert_eq!(CoverageComparator.compare(&t3b, &t3a), Preference::First);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bias;
pub mod comparators;
pub mod dominance;
pub mod index;
pub mod numeric_props;
pub mod pareto;
pub mod preference;
pub mod properties;
pub mod query;
pub mod risk;
pub mod summary;
pub mod theory;
pub mod vector;
pub mod wire;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::bias::{gini, lorenz_curve, BiasReport};
    pub use crate::comparators::{
        additive_epsilon_index, coverage_index, hypervolume_index, log_volume_proxy,
        multiplicative_epsilon_index, rank_index, spread_index, BatchSpec, Comparator,
        CoverageComparator, DominanceComparator, EpsilonComparator, EpsilonKind, HvMode,
        HypervolumeComparator, NormalizedSpread, Preference, RankComparator, SpreadComparator,
    };
    pub use crate::dominance::{
        non_dominated, relation, set_relation, set_strongly_dominates, set_weakly_dominates,
        strongly_dominates, weakly_dominates, DominanceRelation,
    };
    pub use crate::index::{classic, normalize_pair, BinaryIndex, UnaryIndex};
    pub use crate::numeric_props::{
        BoundedDistanceLoss, NeighborhoodRisk, RiskMetric, DEFAULT_RISK_NEIGHBORHOOD,
    };
    pub use crate::pareto::{
        crowding_distance, non_dominated_sort, non_dominated_sort_by, nsga2_order, nsga2_order_by,
        pareto_front, point_strongly_dominates, point_weakly_dominates,
    };
    pub use crate::preference::{
        GoalBasis, GoalComparator, LexicographicComparator, SetComparator, WeightedComparator,
    };
    pub use crate::properties::{
        induce_property_set, BreachProbability, Discernibility, DistinctSensitiveCount,
        EqClassSize, GeneralizationLoss, IyengarUtility, Precision, Property, SensitiveValueCount,
        TClosenessDistance,
    };
    pub use crate::query::{QueryUtility, RangeQuery, Workload};
    pub use crate::risk::{per_tuple_risk, RiskReport};
    pub use crate::summary::{kendall_tau, ComparisonMatrix};
    pub use crate::theory::{
        check_pair, corollary1_cones, falsify, projection_family, proof_seed_pairs, Counterexample,
        SplitMix64, ViolationKind,
    };
    pub use crate::vector::{PropertySet, PropertyVector};
}

pub use prelude::*;
