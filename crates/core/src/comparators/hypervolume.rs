//! The ▶hv-better comparator (paper §5.4).
//!
//! A "tournament-style" comparison: a property vector is preferred when the
//! hypervolume of property vectors it alone weakly dominates is larger —
//! i.e. when more *possible other anonymizations* would be worse than it.
//! The induced index is
//! `P_hv(D₁,D₂) = Π_i d_i¹ − Π_i min(d_i¹, d_i²)`,
//! with `D₁ ▶hv D₂ ⟺ P_hv(D₁,D₂) > P_hv(D₂,D₁)` and
//! `P_hv(D₁,D₂) = 0 ⟹ D₂ ⪰ D₁`.
//!
//! Because the common min-product term cancels from the comparison,
//! `P_hv(D₁,D₂) > P_hv(D₂,D₁) ⟺ Π d_i¹ > Π d_i²`, so for large `N` —
//! where the products overflow `f64` — the comparator works in log space
//! (`Σ ln d_i`), which preserves the ordering exactly for positive vectors
//! (DESIGN.md decision 3; the `hv_log_vs_exact` bench demonstrates the
//! agreement).

use crate::comparators::{prefer_higher, BatchSpec, Comparator, Preference};
use crate::index::BinaryIndex;
use crate::vector::PropertyVector;

/// `P_hv(D₁,D₂) = Π d_i¹ − Π min(d_i¹, d_i²)`, computed exactly.
///
/// ```
/// use anoncmp_core::prelude::*;
/// // §5.4's worked example: 56727 vs 37888.
/// let s = PropertyVector::new("s", vec![3.0, 3.0, 3.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
/// let t = PropertyVector::new("t", vec![4.0; 8]);
/// assert_eq!(hypervolume_index(&s, &t), 56_727.0);
/// assert_eq!(hypervolume_index(&t, &s), 37_888.0);
/// ```
///
/// Requires strictly positive components (the hypervolume of the dominated
/// region is only meaningful above the origin).
///
/// # Panics
/// Panics if dimensions differ or any component is not strictly positive.
pub fn hypervolume_index(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(d1.len(), d2.len(), "hypervolume requires equal dimensions");
    assert_positive(d1);
    assert_positive(d2);
    let own: f64 = d1.iter().product();
    let shared: f64 = d1.iter().zip(d2.iter()).map(|(a, b)| a.min(b)).product();
    own - shared
}

/// `Σ ln d_i`: the log-space proxy whose pairwise ordering matches the
/// hypervolume comparison for positive vectors.
pub fn log_volume_proxy(d: &PropertyVector) -> f64 {
    assert_positive(d);
    d.iter().map(f64::ln).sum()
}

/// `Π_i d_i`: the "own" product term of [`hypervolume_index`], with the
/// same positivity check and fold order. Precomputed once per candidate by
/// the batch kernel.
pub(crate) fn own_product(d: &PropertyVector) -> f64 {
    assert_positive(d);
    d.iter().product()
}

/// `Π_i min(d_i¹, d_i²)`: the min-product term of [`hypervolume_index`],
/// symmetric in its arguments and computed once per unordered pair by the
/// batch kernel. Same dimension check and fold order as the scalar path.
pub(crate) fn shared_min_product(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(d1.len(), d2.len(), "hypervolume requires equal dimensions");
    d1.iter().zip(d2.iter()).map(|(a, b)| a.min(b)).product()
}

fn assert_positive(d: &PropertyVector) {
    assert!(
        d.iter().all(|x| x > 0.0),
        "hypervolume comparison requires strictly positive property values \
         (vector '{}' violates this)",
        d.name()
    );
}

/// How the hypervolume comparator evaluates its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HvMode {
    /// Exact products; safe for small `N` (roughly `N ≲ 300` for values
    /// around `10`).
    Exact,
    /// Log-space proxy; safe for any `N`, identical ordering.
    Log,
    /// Exact below the dimension threshold (64), log space above.
    #[default]
    Auto,
}

/// The ▶hv-better comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct HypervolumeComparator {
    /// Evaluation mode.
    pub mode: HvMode,
}

impl HypervolumeComparator {
    /// Dimension above which [`HvMode::Auto`] switches to log space.
    pub const AUTO_THRESHOLD: usize = 64;

    /// A comparator with the given mode.
    pub fn with_mode(mode: HvMode) -> Self {
        HypervolumeComparator { mode }
    }

    fn use_log(&self, n: usize) -> bool {
        match self.mode {
            HvMode::Exact => false,
            HvMode::Log => true,
            HvMode::Auto => n > Self::AUTO_THRESHOLD,
        }
    }
}

impl Comparator for HypervolumeComparator {
    fn name(&self) -> String {
        "hv".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        if self.use_log(d1.len()) {
            prefer_higher(log_volume_proxy(d1), log_volume_proxy(d2), 0.0)
        } else {
            prefer_higher(hypervolume_index(d1, d2), hypervolume_index(d2, d1), 0.0)
        }
    }

    /// In log mode each vector's proxy is a per-vector key; in exact mode
    /// the own products are precomputed per vector and only the symmetric
    /// min-product term remains per pair.
    fn batch_spec(&self, vectors: &[PropertyVector]) -> BatchSpec {
        let n = vectors.first().map_or(0, PropertyVector::len);
        if self.use_log(n) {
            BatchSpec::Keyed {
                keys: vectors.iter().map(log_volume_proxy).collect(),
                lower_is_better: false,
                epsilon: 0.0,
            }
        } else {
            BatchSpec::HypervolumeExact {
                own: vectors.iter().map(own_product).collect(),
            }
        }
    }
}

impl BinaryIndex for HypervolumeComparator {
    fn name(&self) -> String {
        "P_hv".into()
    }

    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        hypervolume_index(d1, d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn section_5_4_worked_example() {
        // s = (3,3,3,5,5,5,5,5), t = (4,4,4,4,4,4,4,4):
        // P_hv(s,t) = 3³·5⁵ − 3³·4⁵ = 84375 − 27648 = 56727
        // P_hv(t,s) = 4⁸ − 3³·4⁵ = 65536 − 27648 = 37888.
        let s = v(&[3.0, 3.0, 3.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
        let t = v(&[4.0; 8]);
        assert_eq!(hypervolume_index(&s, &t), 56727.0);
        assert_eq!(hypervolume_index(&t, &s), 37888.0);
        assert_eq!(
            HypervolumeComparator::default().compare(&s, &t),
            Preference::First
        );
    }

    #[test]
    fn zero_index_implies_weak_dominance_by_other() {
        // §5.4: P_hv(D1,D2) = 0 ⟹ D2 ⪰ D1.
        let d1 = v(&[2.0, 3.0]);
        let d2 = v(&[2.0, 4.0]);
        assert_eq!(hypervolume_index(&d1, &d2), 0.0);
        assert!(crate::dominance::weakly_dominates(&d2, &d1));
        assert!(hypervolume_index(&d2, &d1) > 0.0);
    }

    #[test]
    fn exact_and_log_modes_agree_on_small_vectors() {
        let cases = [
            (vec![3.0, 3.0, 3.0, 5.0, 5.0], vec![4.0; 5]),
            (vec![1.0, 9.0], vec![3.0, 3.0]),
            (vec![2.0, 2.0], vec![2.0, 2.0]),
            (vec![7.0, 1.0, 2.0], vec![2.0, 2.0, 2.0]),
        ];
        for (a, b) in cases {
            let da = v(&a);
            let db = v(&b);
            let exact = HypervolumeComparator::with_mode(HvMode::Exact).compare(&da, &db);
            let log = HypervolumeComparator::with_mode(HvMode::Log).compare(&da, &db);
            assert_eq!(exact, log, "modes disagree on {a:?} vs {b:?}");
        }
    }

    #[test]
    fn log_mode_handles_huge_dimensions() {
        // 10 000 components of 5 vs 4: exact products overflow, log works.
        let big = v(&vec![5.0; 10_000]);
        let small = v(&vec![4.0; 10_000]);
        let c = HypervolumeComparator::default(); // Auto → log
        assert_eq!(c.compare(&big, &small), Preference::First);
        assert!(log_volume_proxy(&big) > log_volume_proxy(&small));
    }

    #[test]
    fn auto_threshold_switches() {
        let c = HypervolumeComparator::default();
        assert!(!c.use_log(64));
        assert!(c.use_log(65));
        assert!(HypervolumeComparator::with_mode(HvMode::Log).use_log(1));
        assert!(!HypervolumeComparator::with_mode(HvMode::Exact).use_log(1_000_000));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn nonpositive_components_rejected() {
        let _ = hypervolume_index(&v(&[1.0, 0.0]), &v(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = hypervolume_index(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    fn names() {
        assert_eq!(Comparator::name(&HypervolumeComparator::default()), "hv");
        assert_eq!(BinaryIndex::name(&HypervolumeComparator::default()), "P_hv");
    }
}
