//! The ε-indicator comparator, adopted from Zitzler et al.'s performance
//! assessment of multiobjective optimizers — the work the paper names as
//! "the backbone for this study" (§6). A natural fifth ▶-better
//! comparator alongside §5.1–§5.4.
//!
//! The **additive ε-indicator** `I_ε+(D₁,D₂) = max_i (d_i² − d_i¹)` is the
//! smallest ε by which `D₁` must be uniformly raised to weakly dominate
//! `D₂`; `I_ε+(D₁,D₂) ≤ 0 ⟺ D₁ ⪰ D₂`. The **multiplicative** variant
//! `I_ε(D₁,D₂) = max_i (d_i² / d_i¹)` (positive vectors) scales instead;
//! `I_ε ≤ 1 ⟺ D₁ ⪰ D₂`. The comparator prefers the vector that needs the
//! smaller correction: `D₁ ▶eps D₂ ⟺ I(D₁,D₂) < I(D₂,D₁)`.
//!
//! Like ▶spr, the ε-indicator is magnitude-aware; unlike ▶spr it measures
//! the **worst single tuple** rather than the total, so it is the
//! comparator of choice when the concern is the most-disadvantaged
//! individual (a maximin reading of anonymization bias).

use crate::comparators::{prefer_lower, BatchSpec, Comparator, Preference};
use crate::index::BinaryIndex;
use crate::vector::PropertyVector;

/// `I_ε+(D₁,D₂) = max_i (d_i² − d_i¹)`.
///
/// # Panics
/// Panics if dimensions differ or the vectors are empty.
pub fn additive_epsilon_index(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(
        d1.len(),
        d2.len(),
        "epsilon indicator requires equal dimensions"
    );
    assert!(
        !d1.is_empty(),
        "epsilon indicator of empty vectors is undefined"
    );
    d1.iter()
        .zip(d2.iter())
        .map(|(a, b)| b - a)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// `I_ε(D₁,D₂) = max_i (d_i² / d_i¹)` for strictly positive vectors.
///
/// # Panics
/// Panics if dimensions differ, the vectors are empty, or any component is
/// not strictly positive.
pub fn multiplicative_epsilon_index(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(
        d1.len(),
        d2.len(),
        "epsilon indicator requires equal dimensions"
    );
    assert!(
        !d1.is_empty(),
        "epsilon indicator of empty vectors is undefined"
    );
    assert!(
        d1.iter().all(|x| x > 0.0) && d2.iter().all(|x| x > 0.0),
        "multiplicative epsilon requires strictly positive values"
    );
    d1.iter()
        .zip(d2.iter())
        .map(|(a, b)| b / a)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Which ε-indicator variant a comparator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpsilonKind {
    /// Additive `I_ε+`.
    #[default]
    Additive,
    /// Multiplicative `I_ε` (positive vectors only).
    Multiplicative,
}

/// The ▶eps-better comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpsilonComparator {
    /// Indicator variant.
    pub kind: EpsilonKind,
}

impl EpsilonComparator {
    /// The indicator value `I(D₁,D₂)` under the configured variant.
    pub fn index(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        match self.kind {
            EpsilonKind::Additive => additive_epsilon_index(d1, d2),
            EpsilonKind::Multiplicative => multiplicative_epsilon_index(d1, d2),
        }
    }
}

impl Comparator for EpsilonComparator {
    fn name(&self) -> String {
        match self.kind {
            EpsilonKind::Additive => "eps+".into(),
            EpsilonKind::Multiplicative => "eps*".into(),
        }
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        prefer_lower(self.index(d1, d2), self.index(d2, d1), 0.0)
    }

    fn batch_spec(&self, _vectors: &[PropertyVector]) -> BatchSpec {
        match self.kind {
            EpsilonKind::Additive => BatchSpec::AdditiveEpsilon,
            EpsilonKind::Multiplicative => BatchSpec::MultiplicativeEpsilon,
        }
    }
}

impl BinaryIndex for EpsilonComparator {
    fn name(&self) -> String {
        match self.kind {
            EpsilonKind::Additive => "I_eps+".into(),
            EpsilonKind::Multiplicative => "I_eps*".into(),
        }
    }

    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        // Negated so that "higher is better" holds, matching the other
        // binary indices consumed by the preference schemes.
        -self.index(d1, d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::weakly_dominates;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn additive_epsilon_characterizes_dominance() {
        let d1 = v(&[3.0, 5.0]);
        let d2 = v(&[3.0, 4.0]);
        assert!(additive_epsilon_index(&d1, &d2) <= 0.0);
        assert!(weakly_dominates(&d1, &d2));
        assert_eq!(additive_epsilon_index(&d2, &d1), 1.0, "needs +1 on tuple 2");
        assert!(!weakly_dominates(&d2, &d1));
    }

    #[test]
    fn multiplicative_epsilon_characterizes_dominance() {
        let d1 = v(&[2.0, 8.0]);
        let d2 = v(&[1.0, 4.0]);
        assert!(multiplicative_epsilon_index(&d1, &d2) <= 1.0);
        assert_eq!(multiplicative_epsilon_index(&d2, &d1), 2.0);
    }

    #[test]
    fn comparator_prefers_smaller_correction() {
        // On the paper's T3a/T3b class-size vectors, T3b needs no
        // correction to cover T3a (it dominates), T3a needs +4.
        let s = v(&[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]);
        let t = v(&[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]);
        let c = EpsilonComparator::default();
        assert!(c.index(&t, &s) <= 0.0);
        assert_eq!(c.index(&s, &t), 4.0);
        assert_eq!(c.compare(&t, &s), Preference::First);
        assert_eq!(c.compare(&s, &t), Preference::Second);
    }

    #[test]
    fn maximin_reading_differs_from_spread() {
        use crate::comparators::{spread_index, SpreadComparator};
        // D1 wins total spread, D2 wins the worst-tuple view: D1 is ahead
        // by 3 + 3 across two tuples, but leaves one tuple 5 behind.
        let d1 = v(&[8.0, 8.0, 1.0]);
        let d2 = v(&[5.0, 5.0, 6.0]);
        assert!(spread_index(&d1, &d2) > spread_index(&d2, &d1));
        assert_eq!(SpreadComparator.compare(&d1, &d2), Preference::First);
        let eps = EpsilonComparator::default();
        // I(D1,D2): worst shortfall of D1 vs D2 = 6 − 1 = 5.
        // I(D2,D1): worst shortfall of D2 vs D1 = 8 − 5 = 3 → D2 wins.
        assert_eq!(eps.compare(&d1, &d2), Preference::Second);
    }

    #[test]
    fn equal_vectors_tie() {
        let d = v(&[1.0, 2.0]);
        let c = EpsilonComparator::default();
        assert_eq!(c.compare(&d, &d), Preference::Tie);
        assert_eq!(additive_epsilon_index(&d, &d), 0.0);
        assert_eq!(multiplicative_epsilon_index(&d, &d), 1.0);
    }

    #[test]
    fn binary_index_is_negated() {
        let d1 = v(&[1.0]);
        let d2 = v(&[3.0]);
        let c = EpsilonComparator::default();
        assert_eq!(BinaryIndex::value(&c, &d1, &d2), -2.0);
        assert_eq!(BinaryIndex::name(&c), "I_eps+");
        assert_eq!(Comparator::name(&c), "eps+");
        let m = EpsilonComparator {
            kind: EpsilonKind::Multiplicative,
        };
        assert_eq!(Comparator::name(&m), "eps*");
        assert_eq!(BinaryIndex::name(&m), "I_eps*");
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn multiplicative_rejects_nonpositive() {
        let _ = multiplicative_epsilon_index(&v(&[0.0]), &v(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = additive_epsilon_index(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn empty_vectors_panic() {
        let _ = additive_epsilon_index(&v(&[]), &v(&[]));
    }
}
