//! The ▶rank-better comparator (paper §5.1).
//!
//! Property vectors are ranked by their distance from a point of interest
//! `D_max` — "quite often the property vector that offers the maximum
//! measure of the property for every tuple". A lower rank (smaller
//! distance) is better, and vectors whose ranks differ by at most a
//! tolerance `ε` are "considered equally good". The rank of a vector can be
//! read as "an estimate of the bias present in an anonymization w.r.t. a
//! particular property".

use crate::comparators::{prefer_lower, BatchSpec, Comparator, Preference};
use crate::vector::PropertyVector;

/// `P_rank(D) = ‖D − D_max‖` (Euclidean).
pub fn rank_index(d: &PropertyVector, d_max: &PropertyVector) -> f64 {
    d.euclidean_distance(d_max)
}

/// The ▶rank-better comparator: prefers the vector closer to `D_max`.
#[derive(Debug, Clone)]
pub struct RankComparator {
    d_max: PropertyVector,
    epsilon: f64,
}

impl RankComparator {
    /// Ranks against an explicit point of interest, with exact comparison
    /// (`ε = 0`).
    pub fn new(d_max: PropertyVector) -> Self {
        RankComparator {
            d_max,
            epsilon: 0.0,
        }
    }

    /// Sets the tolerance `ε` within which two ranks tie.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "tolerance must be nonnegative");
        self.epsilon = epsilon;
        self
    }

    /// Builds `D_max` as the uniform vector `(m, m, …, m)` of dimension
    /// `n` — e.g. every tuple in a class of size `N` for the
    /// equivalence-class-size property.
    pub fn toward_uniform(m: f64, n: usize) -> Self {
        RankComparator::new(PropertyVector::new("D_max", vec![m; n]))
    }

    /// Builds `D_max` as the component-wise maximum of the given vectors:
    /// the ideal point of the comparison set.
    ///
    /// # Panics
    /// Panics if `vectors` is empty or dimensions differ.
    pub fn toward_ideal_of(vectors: &[&PropertyVector]) -> Self {
        let first = vectors
            .first()
            .expect("ideal point needs at least one vector");
        let n = first.len();
        let mut ideal = vec![f64::NEG_INFINITY; n];
        for v in vectors {
            assert_eq!(v.len(), n, "vectors must share a dimension");
            for (slot, x) in ideal.iter_mut().zip(v.iter()) {
                *slot = slot.max(x);
            }
        }
        RankComparator::new(PropertyVector::new("D_max", ideal))
    }

    /// The point of interest.
    pub fn d_max(&self) -> &PropertyVector {
        &self.d_max
    }

    /// The rank (distance from `D_max`) of a vector.
    pub fn rank(&self, d: &PropertyVector) -> f64 {
        rank_index(d, &self.d_max)
    }
}

impl Comparator for RankComparator {
    fn name(&self) -> String {
        "rank".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        prefer_lower(self.rank(d1), self.rank(d2), self.epsilon)
    }

    /// Each vector's rank is a function of that vector alone; the batch
    /// kernel computes it once per candidate instead of once per
    /// comparison (`M` distance evaluations instead of `M(M−1)·2`).
    fn batch_spec(&self, vectors: &[PropertyVector]) -> BatchSpec {
        BatchSpec::Keyed {
            keys: vectors.iter().map(|d| self.rank(d)).collect(),
            lower_is_better: true,
            epsilon: self.epsilon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn closer_vector_wins() {
        let c = RankComparator::toward_uniform(10.0, 2);
        let near = v(&[9.0, 9.0]);
        let far = v(&[5.0, 5.0]);
        assert_eq!(c.compare(&near, &far), Preference::First);
        assert_eq!(c.compare(&far, &near), Preference::Second);
        assert_eq!(c.compare(&near, &near), Preference::Tie);
    }

    #[test]
    fn equidistant_vectors_tie() {
        // Points on the same arc around D_max are incomparable and "are
        // assigned the same rank" (§5.1) — the comparator calls them a tie.
        let c = RankComparator::toward_uniform(0.0, 2);
        let a = v(&[3.0, 4.0]);
        let b = v(&[4.0, 3.0]);
        assert_eq!(c.compare(&a, &b), Preference::Tie);
        assert!((c.rank(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_tolerance_creates_ties() {
        let c = RankComparator::toward_uniform(0.0, 1).with_epsilon(0.5);
        let a = v(&[1.0]);
        let b = v(&[1.4]);
        assert_eq!(c.compare(&a, &b), Preference::Tie);
        let b = v(&[2.0]);
        assert_eq!(c.compare(&a, &b), Preference::First);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_epsilon_rejected() {
        let _ = RankComparator::toward_uniform(0.0, 1).with_epsilon(-1.0);
    }

    #[test]
    fn ideal_point_construction() {
        let a = v(&[3.0, 7.0]);
        let b = v(&[5.0, 2.0]);
        let c = RankComparator::toward_ideal_of(&[&a, &b]);
        assert_eq!(c.d_max().values(), &[5.0, 7.0]);
        // a is at distance 2, b at distance 5 → a preferred.
        assert_eq!(c.compare(&a, &b), Preference::First);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn ideal_of_empty_panics() {
        let _ = RankComparator::toward_ideal_of(&[]);
    }

    #[test]
    fn rank_on_paper_vectors() {
        // Distances of the three anonymizations' class-size vectors from
        // the ideal (10,…,10): T3b is closest, then T4, then T3a.
        let t3a = v(&[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]);
        let t3b = v(&[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]);
        let t4 = v(&[4.0, 6.0, 4.0, 4.0, 6.0, 6.0, 6.0, 4.0, 6.0, 6.0]);
        let c = RankComparator::toward_uniform(10.0, 10);
        assert!(c.rank(&t3b) < c.rank(&t4));
        assert!(c.rank(&t4) < c.rank(&t3a));
        assert_eq!(c.compare(&t3b, &t4), Preference::First);
        assert_eq!(c.compare(&t3a, &t4), Preference::Second);
    }
}
