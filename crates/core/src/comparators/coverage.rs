//! The ▶cov-better comparator (paper §5.2).
//!
//! "The coverage comparator compares two property vectors based on the
//! fraction of tuples in one that has a better measurement of the property
//! than in the other." Its induced binary quality index is
//! `P_cov(D₁,D₂) = |{ i : d_i¹ ≥ d_i² }| / N`, and
//! `D₁ ▶cov D₂ ⟺ P_cov(D₁,D₂) > P_cov(D₂,D₁)`.

use crate::comparators::{prefer_higher, BatchSpec, Comparator, Preference};
use crate::index::BinaryIndex;
use crate::vector::PropertyVector;

/// `P_cov(D₁,D₂) = |{ i : d_i¹ ≥ d_i² }| / N`.
///
/// ```
/// use anoncmp_core::prelude::*;
/// // The paper's §5.5 values: T3a covers 30% of T3b, T3b covers 100%.
/// let pa = PropertyVector::from_usizes("s", &[3, 3, 3, 3, 4, 4, 4, 3, 3, 4]);
/// let pb = PropertyVector::from_usizes("t", &[3, 7, 7, 3, 7, 7, 7, 3, 7, 7]);
/// assert_eq!(coverage_index(&pa, &pb), 0.3);
/// assert_eq!(coverage_index(&pb, &pa), 1.0);
/// ```
///
/// # Panics
/// Panics if dimensions differ or the vectors are empty.
pub fn coverage_index(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(d1.len(), d2.len(), "coverage requires equal dimensions");
    assert!(!d1.is_empty(), "coverage of empty vectors is undefined");
    let wins = d1.iter().zip(d2.iter()).filter(|(a, b)| a >= b).count();
    wins as f64 / d1.len() as f64
}

/// The ▶cov-better comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageComparator;

impl Comparator for CoverageComparator {
    fn name(&self) -> String {
        "cov".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        prefer_higher(coverage_index(d1, d2), coverage_index(d2, d1), 0.0)
    }

    fn batch_spec(&self, _vectors: &[PropertyVector]) -> BatchSpec {
        BatchSpec::Coverage
    }
}

impl BinaryIndex for CoverageComparator {
    fn name(&self) -> String {
        "P_cov".into()
    }

    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        coverage_index(d1, d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn section_5_3_example_ties_under_coverage() {
        // D1 = (2,2,3,4,5), D2 = (3,2,4,2,3): both cover 3/5.
        let d1 = v(&[2.0, 2.0, 3.0, 4.0, 5.0]);
        let d2 = v(&[3.0, 2.0, 4.0, 2.0, 3.0]);
        assert!((coverage_index(&d1, &d2) - 0.6).abs() < 1e-12);
        assert!((coverage_index(&d2, &d1) - 0.6).abs() < 1e-12);
        assert_eq!(CoverageComparator.compare(&d1, &d2), Preference::Tie);
    }

    #[test]
    fn paper_t3a_t3b_coverage() {
        // §5.5: P_cov(p_a, p_b) = 0.3 < 1 = P_cov(p_b, p_a).
        let pa = v(&[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 3.0, 4.0]);
        let pb = v(&[3.0, 7.0, 7.0, 3.0, 7.0, 7.0, 7.0, 3.0, 7.0, 7.0]);
        assert!((coverage_index(&pa, &pb) - 0.3).abs() < 1e-12);
        assert!((coverage_index(&pb, &pa) - 1.0).abs() < 1e-12);
        assert_eq!(CoverageComparator.compare(&pb, &pa), Preference::First);
        assert_eq!(CoverageComparator.compare(&pa, &pb), Preference::Second);
    }

    #[test]
    fn strict_dominance_yields_full_and_zero_coverage() {
        // §5.2: if P_cov(D1,D2) = 1 and P_cov(D2,D1) = 0 then D1 ≻ D2.
        let d1 = v(&[5.0, 6.0]);
        let d2 = v(&[4.0, 5.0]);
        assert_eq!(coverage_index(&d1, &d2), 1.0);
        assert_eq!(coverage_index(&d2, &d1), 0.0);
        assert!(crate::dominance::strongly_dominates(&d1, &d2));
    }

    #[test]
    fn equal_vectors_cover_fully_both_ways() {
        let d = v(&[1.0, 2.0]);
        assert_eq!(coverage_index(&d, &d), 1.0);
        assert_eq!(CoverageComparator.compare(&d, &d), Preference::Tie);
    }

    #[test]
    fn binary_index_view_matches_function() {
        let d1 = v(&[1.0, 3.0]);
        let d2 = v(&[2.0, 2.0]);
        let idx: &dyn BinaryIndex = &CoverageComparator;
        assert_eq!(idx.value(&d1, &d2), coverage_index(&d1, &d2));
        assert_eq!(BinaryIndex::name(&CoverageComparator), "P_cov");
        assert_eq!(Comparator::name(&CoverageComparator), "cov");
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = coverage_index(&v(&[1.0]), &v(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn empty_vectors_panic() {
        let _ = coverage_index(&v(&[]), &v(&[]));
    }
}
