//! ▶-better comparators (paper §5).
//!
//! Dominance-based comparison needs at least `N` unary quality indices
//! (Theorem 1) and frequently ends in non-dominance. The paper therefore
//! introduces *metric-better* (`▶-better`) comparators: weaker orderings
//! that still "pay adequate attention to the property values across all
//! tuples". This module provides the four single-property comparators of
//! §5.1–§5.4 — rank, coverage, spread, and hypervolume — behind a common
//! [`Comparator`] trait, plus a [`DominanceComparator`] adapter so strict
//! and ▶-better comparisons share one API (DESIGN.md decision 4).

mod coverage;
mod epsilon;
mod hypervolume;
mod rank;
mod spread;

pub use coverage::{coverage_index, CoverageComparator};
pub use epsilon::{
    additive_epsilon_index, multiplicative_epsilon_index, EpsilonComparator, EpsilonKind,
};
pub use hypervolume::{hypervolume_index, log_volume_proxy, HvMode, HypervolumeComparator};
pub use rank::{rank_index, RankComparator};
pub use spread::{spread_index, NormalizedSpread, SpreadComparator};

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dominance::{self, DominanceRelation};
use crate::vector::PropertyVector;

/// Outcome of comparing two property vectors (or sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preference {
    /// The first argument is ▶-better.
    First,
    /// The second argument is ▶-better.
    Second,
    /// Equally good under this comparator.
    Tie,
    /// The comparator cannot order them (only dominance-based comparators
    /// produce this).
    Incomparable,
}

impl Preference {
    /// The preference with swapped arguments.
    pub fn flipped(self) -> Preference {
        match self {
            Preference::First => Preference::Second,
            Preference::Second => Preference::First,
            other => other,
        }
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Preference::First => "first is better",
            Preference::Second => "second is better",
            Preference::Tie => "equally good",
            Preference::Incomparable => "incomparable",
        };
        f.write_str(s)
    }
}

/// An ordering operation on property vectors: the paper's comparator `▷`.
pub trait Comparator {
    /// Display name, e.g. `"cov"`.
    fn name(&self) -> String;

    /// Compares two property vectors measuring the same property on the
    /// same dataset.
    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference;
}

/// Adapter exposing strict dominance (§4) through the [`Comparator`] API:
/// strong dominance maps to a strict preference, equality to a tie, and
/// non-dominance to [`Preference::Incomparable`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DominanceComparator;

impl Comparator for DominanceComparator {
    fn name(&self) -> String {
        "dominance".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        match dominance::relation(d1, d2) {
            DominanceRelation::Equal => Preference::Tie,
            DominanceRelation::FirstDominates => Preference::First,
            DominanceRelation::SecondDominates => Preference::Second,
            DominanceRelation::Incomparable => Preference::Incomparable,
        }
    }
}

/// Orders a pair of index values where **higher is better**, with an
/// absolute tolerance: values within `epsilon` tie.
pub(crate) fn prefer_higher(a: f64, b: f64, epsilon: f64) -> Preference {
    if (a - b).abs() <= epsilon {
        Preference::Tie
    } else if a > b {
        Preference::First
    } else {
        Preference::Second
    }
}

/// Orders a pair of index values where **lower is better**, with an
/// absolute tolerance.
pub(crate) fn prefer_lower(a: f64, b: f64, epsilon: f64) -> Preference {
    prefer_higher(b, a, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_flip_and_display() {
        assert_eq!(Preference::First.flipped(), Preference::Second);
        assert_eq!(Preference::Second.flipped(), Preference::First);
        assert_eq!(Preference::Tie.flipped(), Preference::Tie);
        assert_eq!(Preference::Incomparable.flipped(), Preference::Incomparable);
        assert_eq!(Preference::Tie.to_string(), "equally good");
    }

    #[test]
    fn dominance_comparator_maps_relations() {
        let c = DominanceComparator;
        let a = PropertyVector::new("a", vec![2.0, 2.0]);
        let b = PropertyVector::new("b", vec![1.0, 2.0]);
        let x = PropertyVector::new("x", vec![2.0, 1.0]);
        assert_eq!(c.compare(&a, &b), Preference::First);
        assert_eq!(c.compare(&b, &a), Preference::Second);
        assert_eq!(c.compare(&a, &a), Preference::Tie);
        assert_eq!(c.compare(&b, &x), Preference::Incomparable);
        assert_eq!(c.name(), "dominance");
    }

    #[test]
    fn prefer_helpers_respect_epsilon() {
        assert_eq!(prefer_higher(1.0, 0.9, 0.2), Preference::Tie);
        assert_eq!(prefer_higher(1.0, 0.5, 0.2), Preference::First);
        assert_eq!(prefer_lower(1.0, 0.5, 0.2), Preference::Second);
        assert_eq!(prefer_lower(0.5, 1.0, 0.0), Preference::First);
    }
}
