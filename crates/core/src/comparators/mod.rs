//! ▶-better comparators (paper §5).
//!
//! Dominance-based comparison needs at least `N` unary quality indices
//! (Theorem 1) and frequently ends in non-dominance. The paper therefore
//! introduces *metric-better* (`▶-better`) comparators: weaker orderings
//! that still "pay adequate attention to the property values across all
//! tuples". This module provides the four single-property comparators of
//! §5.1–§5.4 — rank, coverage, spread, and hypervolume — behind a common
//! [`Comparator`] trait, plus a [`DominanceComparator`] adapter so strict
//! and ▶-better comparisons share one API (DESIGN.md decision 4).

mod coverage;
mod epsilon;
mod hypervolume;
mod rank;
mod spread;

pub use coverage::{coverage_index, CoverageComparator};
pub use epsilon::{
    additive_epsilon_index, multiplicative_epsilon_index, EpsilonComparator, EpsilonKind,
};
pub(crate) use hypervolume::shared_min_product;
pub use hypervolume::{hypervolume_index, log_volume_proxy, HvMode, HypervolumeComparator};
pub use rank::{rank_index, RankComparator};
pub use spread::{spread_index, NormalizedSpread, SpreadComparator};

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dominance::{self, DominanceRelation};
use crate::vector::PropertyVector;

/// Outcome of comparing two property vectors (or sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preference {
    /// The first argument is ▶-better.
    First,
    /// The second argument is ▶-better.
    Second,
    /// Equally good under this comparator.
    Tie,
    /// The comparator cannot order them (only dominance-based comparators
    /// produce this).
    Incomparable,
}

impl Preference {
    /// The preference with swapped arguments.
    pub fn flipped(self) -> Preference {
        match self {
            Preference::First => Preference::Second,
            Preference::Second => Preference::First,
            other => other,
        }
    }
}

impl fmt::Display for Preference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Preference::First => "first is better",
            Preference::Second => "second is better",
            Preference::Tie => "equally good",
            Preference::Incomparable => "incomparable",
        };
        f.write_str(s)
    }
}

/// An ordering operation on property vectors: the paper's comparator `▷`.
pub trait Comparator {
    /// Display name, e.g. `"cov"`.
    fn name(&self) -> String;

    /// Compares two property vectors measuring the same property on the
    /// same dataset.
    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference;

    /// How the all-pairs kernel
    /// ([`ComparisonMatrix`](crate::summary::ComparisonMatrix)) may batch
    /// this comparator over a candidate list.
    ///
    /// The default is [`BatchSpec::Pairwise`]: no assumptions, every
    /// ordered pair goes through [`Comparator::compare`]. An
    /// implementation overriding this must return a spec whose kernel
    /// evaluation is **bit-identical** to calling `compare` on every
    /// ordered pair — the kernel shares work (per-vector keys, symmetric
    /// per-pair index values) but never changes the floating-point
    /// operations or their order. The spec may assume all candidates share
    /// one dimension, as vectors induced on anonymizations of the same
    /// dataset always do (§3).
    fn batch_spec(&self, vectors: &[PropertyVector]) -> BatchSpec {
        let _ = vectors;
        BatchSpec::Pairwise
    }
}

/// Batched evaluation strategy for computing all pairwise preferences of a
/// comparator over a candidate list (the [`ComparisonMatrix`] kernel in
/// [`crate::summary`]).
///
/// Each variant tells the kernel how to reproduce
/// [`Comparator::compare`] bit-for-bit while sharing work across pairs:
/// per-vector quantities (scalar keys, own hypervolume products) are
/// computed once per vector instead of once per comparison, and index
/// values of an unordered pair are computed once instead of twice — the
/// mirrored matrix entry reuses them with the arguments swapped, which is
/// exactly what the scalar path would recompute.
///
/// [`ComparisonMatrix`]: crate::summary::ComparisonMatrix
#[derive(Debug, Clone)]
pub enum BatchSpec {
    /// The comparator reduces each vector to one scalar index; pairs
    /// compare keys under an absolute tolerance. `keys[i]` must equal the
    /// index value the scalar path computes for candidate `i`.
    Keyed {
        /// Per-vector index values, aligned with the candidate list.
        keys: Vec<f64>,
        /// Whether a smaller key wins (e.g. rank distance) or a larger one
        /// (e.g. the log-volume proxy).
        lower_is_better: bool,
        /// Keys within this tolerance tie.
        epsilon: f64,
    },
    /// Coverage indices both ways, once per unordered pair
    /// ([`CoverageComparator`]).
    Coverage,
    /// Spread indices both ways, once per unordered pair
    /// ([`SpreadComparator`]).
    Spread,
    /// Additive ε-indicator both ways, once per unordered pair.
    AdditiveEpsilon,
    /// Multiplicative ε-indicator both ways, once per unordered pair.
    MultiplicativeEpsilon,
    /// Exact hypervolume with per-vector own products precomputed; the
    /// min-product term is symmetric in the pair and computed once.
    HypervolumeExact {
        /// `Π_i d_i` for each candidate, in candidate order.
        own: Vec<f64>,
    },
    /// Weak-dominance checks both ways, once per unordered pair
    /// ([`DominanceComparator`]).
    Dominance,
    /// No batching contract: call [`Comparator::compare`] on every ordered
    /// pair. The safe default for arbitrary user comparators.
    Pairwise,
}

/// Adapter exposing strict dominance (§4) through the [`Comparator`] API:
/// strong dominance maps to a strict preference, equality to a tie, and
/// non-dominance to [`Preference::Incomparable`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DominanceComparator;

impl Comparator for DominanceComparator {
    fn name(&self) -> String {
        "dominance".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        match dominance::relation(d1, d2) {
            DominanceRelation::Equal => Preference::Tie,
            DominanceRelation::FirstDominates => Preference::First,
            DominanceRelation::SecondDominates => Preference::Second,
            DominanceRelation::Incomparable => Preference::Incomparable,
        }
    }

    fn batch_spec(&self, _vectors: &[PropertyVector]) -> BatchSpec {
        BatchSpec::Dominance
    }
}

/// Orders a pair of index values where **higher is better**, with an
/// absolute tolerance: values within `epsilon` tie.
pub(crate) fn prefer_higher(a: f64, b: f64, epsilon: f64) -> Preference {
    if (a - b).abs() <= epsilon {
        Preference::Tie
    } else if a > b {
        Preference::First
    } else {
        Preference::Second
    }
}

/// Orders a pair of index values where **lower is better**, with an
/// absolute tolerance.
pub(crate) fn prefer_lower(a: f64, b: f64, epsilon: f64) -> Preference {
    prefer_higher(b, a, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_flip_and_display() {
        assert_eq!(Preference::First.flipped(), Preference::Second);
        assert_eq!(Preference::Second.flipped(), Preference::First);
        assert_eq!(Preference::Tie.flipped(), Preference::Tie);
        assert_eq!(Preference::Incomparable.flipped(), Preference::Incomparable);
        assert_eq!(Preference::Tie.to_string(), "equally good");
    }

    #[test]
    fn dominance_comparator_maps_relations() {
        let c = DominanceComparator;
        let a = PropertyVector::new("a", vec![2.0, 2.0]);
        let b = PropertyVector::new("b", vec![1.0, 2.0]);
        let x = PropertyVector::new("x", vec![2.0, 1.0]);
        assert_eq!(c.compare(&a, &b), Preference::First);
        assert_eq!(c.compare(&b, &a), Preference::Second);
        assert_eq!(c.compare(&a, &a), Preference::Tie);
        assert_eq!(c.compare(&b, &x), Preference::Incomparable);
        assert_eq!(c.name(), "dominance");
    }

    #[test]
    fn prefer_helpers_respect_epsilon() {
        assert_eq!(prefer_higher(1.0, 0.9, 0.2), Preference::Tie);
        assert_eq!(prefer_higher(1.0, 0.5, 0.2), Preference::First);
        assert_eq!(prefer_lower(1.0, 0.5, 0.2), Preference::Second);
        assert_eq!(prefer_lower(0.5, 1.0, 0.0), Preference::First);
    }
}
