//! The ▶spr-better comparator (paper §5.3).
//!
//! Coverage ignores the *magnitude* of per-tuple differences. The spread
//! comparator's index
//! `P_spr(D₁,D₂) = Σ_i max(d_i¹ − d_i², 0)`
//! "measures the total difference in magnitude of the measured property for
//! the tuples on which D₁ performs better than D₂", with
//! `D₁ ▶spr D₂ ⟺ P_spr(D₁,D₂) > P_spr(D₂,D₁)` and the useful identity
//! `P_spr(D₁,D₂) = 0 ⟺ D₂ ⪰ D₁`.

use crate::comparators::{prefer_higher, BatchSpec, Comparator, Preference};
use crate::index::BinaryIndex;
use crate::vector::PropertyVector;

/// `P_spr(D₁,D₂) = Σ_i max(d_i¹ − d_i², 0)`.
///
/// ```
/// use anoncmp_core::prelude::*;
/// // §5.3: D1 = (2,2,3,4,5), D2 = (3,2,4,2,3) — coverage ties at 3/5
/// // but the spread separates them 4 vs 2.
/// let d1 = PropertyVector::new("D1", vec![2.0, 2.0, 3.0, 4.0, 5.0]);
/// let d2 = PropertyVector::new("D2", vec![3.0, 2.0, 4.0, 2.0, 3.0]);
/// assert_eq!(spread_index(&d1, &d2), 4.0);
/// assert_eq!(spread_index(&d2, &d1), 2.0);
/// ```
///
/// # Panics
/// Panics if dimensions differ.
pub fn spread_index(d1: &PropertyVector, d2: &PropertyVector) -> f64 {
    assert_eq!(d1.len(), d2.len(), "spread requires equal dimensions");
    d1.iter()
        .zip(d2.iter())
        .map(|(a, b)| (a - b).max(0.0))
        .sum()
}

/// The ▶spr-better comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadComparator;

impl Comparator for SpreadComparator {
    fn name(&self) -> String {
        "spr".into()
    }

    fn compare(&self, d1: &PropertyVector, d2: &PropertyVector) -> Preference {
        prefer_higher(spread_index(d1, d2), spread_index(d2, d1), 0.0)
    }

    fn batch_spec(&self, _vectors: &[PropertyVector]) -> BatchSpec {
        BatchSpec::Spread
    }
}

impl BinaryIndex for SpreadComparator {
    fn name(&self) -> String {
        "P_spr".into()
    }

    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        spread_index(d1, d2)
    }
}

/// A normalized spread index: `P_spr(D₁,D₂) / (P_spr(D₁,D₂) + P_spr(D₂,D₁))`
/// in `[0, 1]`, suitable for the weighted multi-property comparator whose
/// §5.5 description advises normalizing index values before weighting.
/// A fully tied pair (both spreads zero) scores `0.5`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedSpread;

impl BinaryIndex for NormalizedSpread {
    fn name(&self) -> String {
        "P_spr-norm".into()
    }

    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
        let fwd = spread_index(d1, d2);
        let bwd = spread_index(d2, d1);
        crate::index::normalize_pair(fwd, bwd).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::weakly_dominates;

    fn v(vals: &[f64]) -> PropertyVector {
        PropertyVector::new("p", vals.to_vec())
    }

    #[test]
    fn section_5_3_first_example() {
        // D1 = (2,2,3,4,5), D2 = (3,2,4,2,3): spreads 4 vs 2, D1 wins even
        // though coverage ties.
        let d1 = v(&[2.0, 2.0, 3.0, 4.0, 5.0]);
        let d2 = v(&[3.0, 2.0, 4.0, 2.0, 3.0]);
        assert_eq!(spread_index(&d1, &d2), 4.0);
        assert_eq!(spread_index(&d2, &d1), 2.0);
        assert_eq!(SpreadComparator.compare(&d1, &d2), Preference::First);
    }

    #[test]
    fn section_5_3_second_example_prefers_2_anonymous() {
        // The 3-anonymous vector vs the 2-anonymous vector: P_spr values
        // "compare at 2 and 8", favoring the 2-anonymous generalization —
        // counter to the minimum-class-size preference.
        let three = v(&[
            3.0, 3.0, 3.0, 5.0, 5.0, 5.0, 5.0, 5.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0,
        ]);
        let two = v(&[
            2.0, 2.0, 6.0, 6.0, 6.0, 6.0, 6.0, 6.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0,
        ]);
        assert_eq!(spread_index(&three, &two), 2.0);
        assert_eq!(spread_index(&two, &three), 8.0);
        assert_eq!(SpreadComparator.compare(&two, &three), Preference::First);
        // The scalar k prefers the other one: min 3 vs min 2.
        assert!(three.min().unwrap() > two.min().unwrap());
    }

    #[test]
    fn zero_spread_iff_weak_dominance() {
        let d1 = v(&[1.0, 2.0, 3.0]);
        let d2 = v(&[1.0, 3.0, 3.0]);
        // d2 ⪰ d1, so P_spr(d1, d2) = 0.
        assert!(weakly_dominates(&d2, &d1));
        assert_eq!(spread_index(&d1, &d2), 0.0);
        assert!(spread_index(&d2, &d1) > 0.0);
        // And equal vectors: zero both ways.
        assert_eq!(spread_index(&d1, &d1), 0.0);
        assert_eq!(SpreadComparator.compare(&d1, &d1), Preference::Tie);
    }

    #[test]
    fn normalized_spread_sums_to_one() {
        let d1 = v(&[2.0, 2.0, 3.0, 4.0, 5.0]);
        let d2 = v(&[3.0, 2.0, 4.0, 2.0, 3.0]);
        let a = NormalizedSpread.value(&d1, &d2);
        let b = NormalizedSpread.value(&d2, &d1);
        assert!((a + b - 1.0).abs() < 1e-12);
        assert!((a - 4.0 / 6.0).abs() < 1e-12);
        // Tied pair → 0.5.
        assert_eq!(NormalizedSpread.value(&d1, &d1), 0.5);
    }

    #[test]
    fn binary_index_names() {
        assert_eq!(BinaryIndex::name(&SpreadComparator), "P_spr");
        assert_eq!(BinaryIndex::name(&NormalizedSpread), "P_spr-norm");
        assert_eq!(Comparator::name(&SpreadComparator), "spr");
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = spread_index(&v(&[1.0]), &v(&[1.0, 2.0]));
    }
}
