//! Quality index functions (paper Definition 3).
//!
//! An *m-ary quality index* maps `m` property vectors to a real number.
//! Unary indices (`m = 1`) measure aggregate features of one anonymization
//! — the classical scalar privacy parameters `k`, `ℓ`, `t` are all unary
//! indices on suitable property vectors (§3). Binary indices (`m = 2`)
//! compare the per-tuple values of two anonymizations and are the basis of
//! the ▶-better comparators of §5.

use crate::vector::PropertyVector;

/// A unary quality index `P : Π → ℝ` (paper Definition 3 with `m = 1`).
pub trait UnaryIndex {
    /// Display name, e.g. `"P_k-anon"`.
    fn name(&self) -> String;

    /// The index value of one property vector.
    fn value(&self, d: &PropertyVector) -> f64;
}

/// A binary quality index `P : Π² → ℝ` (paper Definition 3 with `m = 2`).
///
/// Values are **not** required to be antisymmetric; comparators evaluate
/// both `P(D₁,D₂)` and `P(D₂,D₁)`.
pub trait BinaryIndex {
    /// Display name, e.g. `"P_cov"`.
    fn name(&self) -> String;

    /// The index value of an ordered pair of property vectors.
    fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64;
}

/// Classical unary and binary indices from §3 of the paper.
pub mod classic {
    use super::*;

    /// `P_k-anon(s) = min(s)`: the scalar `k` of k-anonymity when applied
    /// to the equivalence-class-size vector; also the scalar `ℓ` of the
    /// paper's ℓ-diversity example when applied to the sensitive-count
    /// vector.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MinIndex;

    impl UnaryIndex for MinIndex {
        fn name(&self) -> String {
            "P_min".into()
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            d.min().unwrap_or(f64::NAN)
        }
    }

    /// `P_s-avg(s) = Σ s_i / N`: the paper's average-class-size example
    /// (3.4 for T3a).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MeanIndex;

    impl UnaryIndex for MeanIndex {
        fn name(&self) -> String {
            "P_avg".into()
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            d.mean().unwrap_or(f64::NAN)
        }
    }

    /// `P_max(s) = max(s)`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MaxIndex;

    impl UnaryIndex for MaxIndex {
        fn name(&self) -> String {
            "P_max".into()
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            d.max().unwrap_or(f64::NAN)
        }
    }

    /// `P_sum(s) = Σ s_i`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct SumIndex;

    impl UnaryIndex for SumIndex {
        fn name(&self) -> String {
            "P_sum".into()
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            d.sum()
        }
    }

    /// `P_median(s)`: the lower median of the components.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MedianIndex;

    impl UnaryIndex for MedianIndex {
        fn name(&self) -> String {
            "P_median".into()
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            if d.is_empty() {
                return f64::NAN;
            }
            let mut v: Vec<f64> = d.values().to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("property values are not NaN"));
            v[(v.len() - 1) / 2]
        }
    }

    /// `P_p-norm(s) = (Σ |s_i|^p)^(1/p)`.
    #[derive(Debug, Clone, Copy)]
    pub struct NormIndex {
        /// The norm order `p ≥ 1`.
        pub p: f64,
    }

    impl UnaryIndex for NormIndex {
        fn name(&self) -> String {
            format!("P_{}-norm", self.p)
        }

        fn value(&self, d: &PropertyVector) -> f64 {
            d.iter()
                .map(|x| x.abs().powf(self.p))
                .sum::<f64>()
                .powf(1.0 / self.p)
        }
    }

    /// `P_binary(s, t) = |{ i : s_i > t_i }|`: the strict-count binary
    /// index of §3 (`P_binary(s,t) = 0`, `P_binary(t,s) = 7` for the
    /// paper's T3a/T3b class-size vectors).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct CountStrictlyGreater;

    impl BinaryIndex for CountStrictlyGreater {
        fn name(&self) -> String {
            "P_binary".into()
        }

        fn value(&self, d1: &PropertyVector, d2: &PropertyVector) -> f64 {
            assert_eq!(d1.len(), d2.len(), "binary indices need equal dimensions");
            d1.iter().zip(d2.iter()).filter(|(a, b)| a > b).count() as f64
        }
    }
}

/// Normalizes a pair of nonnegative binary-index values to fractions of
/// their sum, the normalization §5.5 advises before weighting. Returns
/// `(0.5, 0.5)` when both are zero (fully tied pair).
pub fn normalize_pair(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    if s == 0.0 {
        (0.5, 0.5)
    } else {
        (a / s, b / s)
    }
}

#[cfg(test)]
mod tests {
    use super::classic::*;
    use super::*;

    fn t3a() -> PropertyVector {
        PropertyVector::from_usizes("s", &[3, 3, 3, 3, 4, 4, 4, 3, 3, 4])
    }

    fn t3b() -> PropertyVector {
        PropertyVector::from_usizes("t", &[3, 7, 7, 3, 7, 7, 7, 3, 7, 7])
    }

    #[test]
    fn paper_worked_numbers_section3() {
        // P_k-anon(s) = min(s) = 3 for T3a.
        assert_eq!(MinIndex.value(&t3a()), 3.0);
        // P_s-avg(s) = 3.4 for T3a.
        assert!((MeanIndex.value(&t3a()) - 3.4).abs() < 1e-12);
        // ℓ = P_ℓ-div((2,2,1,2,2,1,2,1,2,1)) = 1 for T3a.
        let ldiv = PropertyVector::from_usizes("c", &[2, 2, 1, 2, 2, 1, 2, 1, 2, 1]);
        assert_eq!(MinIndex.value(&ldiv), 1.0);
        // P_binary(s,t) = 0 and P_binary(t,s) = 7.
        assert_eq!(CountStrictlyGreater.value(&t3a(), &t3b()), 0.0);
        assert_eq!(CountStrictlyGreater.value(&t3b(), &t3a()), 7.0);
    }

    #[test]
    fn other_unary_indices() {
        let d = PropertyVector::new("d", vec![4.0, 1.0, 3.0]);
        assert_eq!(MaxIndex.value(&d), 4.0);
        assert_eq!(SumIndex.value(&d), 8.0);
        assert_eq!(MedianIndex.value(&d), 3.0);
        let even = PropertyVector::new("d", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(MedianIndex.value(&even), 2.0, "lower median");
        let e = NormIndex { p: 2.0 }.value(&PropertyVector::new("d", vec![3.0, 4.0]));
        assert!((e - 5.0).abs() < 1e-12);
        let e = NormIndex { p: 1.0 }.value(&PropertyVector::new("d", vec![-3.0, 4.0]));
        assert!((e - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vectors_yield_nan() {
        let empty = PropertyVector::new("e", vec![]);
        assert!(MinIndex.value(&empty).is_nan());
        assert!(MeanIndex.value(&empty).is_nan());
        assert!(MaxIndex.value(&empty).is_nan());
        assert!(MedianIndex.value(&empty).is_nan());
        assert_eq!(SumIndex.value(&empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn binary_index_dimension_mismatch() {
        let a = PropertyVector::new("a", vec![1.0]);
        let b = PropertyVector::new("b", vec![1.0, 2.0]);
        let _ = CountStrictlyGreater.value(&a, &b);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MinIndex.name(), "P_min");
        assert_eq!(CountStrictlyGreater.name(), "P_binary");
        assert_eq!(NormIndex { p: 2.0 }.name(), "P_2-norm");
    }

    #[test]
    fn normalize_pair_behaviour() {
        assert_eq!(normalize_pair(1.0, 3.0), (0.25, 0.75));
        assert_eq!(normalize_pair(0.0, 0.0), (0.5, 0.5));
        assert_eq!(normalize_pair(2.0, 0.0), (1.0, 0.0));
    }
}
