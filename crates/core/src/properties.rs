//! Property extractors: from an anonymized table to a property vector.
//!
//! Each [`Property`] measures one scalar per tuple (paper §3): the size of
//! the tuple's equivalence class, the count of its sensitive value inside
//! the class, its contribution to information loss, and so on. Extractors
//! emit vectors in the **higher-is-better** orientation assumed by the
//! paper's comparators (§5); lower-is-better measurements are negated and
//! the raw (un-negated) variant is available separately where useful.

use anoncmp_microdata::loss::{
    discernibility_vector, discernibility_vector_chunked, discernibility_vector_encoded,
    precision_vector, precision_vector_chunked, precision_vector_encoded, LossMetric,
};
use anoncmp_microdata::parallel as chunk_parallel;
use anoncmp_microdata::prelude::{
    AnonymizedTable, ChunkedCodec, Dataset, GenCodec, NodePartition, Value,
};

use crate::vector::{PropertySet, PropertyVector};

/// A per-tuple measurable property of an anonymization.
pub trait Property {
    /// The property's display name (becomes the vector name).
    fn name(&self) -> String;

    /// Measures the property on every tuple, in the higher-is-better
    /// orientation.
    fn extract(&self, table: &AnonymizedTable) -> PropertyVector;

    /// Measures the property directly from a codec partition — no table
    /// materialization — returning a vector **bit-identical** to
    /// [`Property::extract`] on the decoded node (same values, same
    /// order, same name).
    ///
    /// The default implementation decodes the node and falls back to
    /// [`Property::extract`]; the built-in properties override it with
    /// kernels that read class sizes, per-row class ids, and per-level
    /// dictionaries straight from the codec.
    ///
    /// # Panics
    /// If `partition` does not fit `codec` (mismatched levels or dataset),
    /// consistent with the comparators' panics on mismatched dimensions.
    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let table = codec
            .decode(partition.levels(), "encoded-extract")
            .expect("partition levels fit the codec");
        self.extract(&table)
    }

    /// Measures the property from the **out-of-core chunked store** — no
    /// materialized dataset exists at all — returning a vector
    /// bit-identical to [`Property::extract_encoded`] (and therefore to
    /// [`Property::extract`] on the decoded node), or `None` when the
    /// property has no chunked kernel.
    ///
    /// The default returns `None`: without a materialized table there is
    /// no generic fallback, so custom properties opt in explicitly. All
    /// nine built-ins override this with kernels that stream the chunked
    /// columns; their only O(rows) state is the per-row class-id vector
    /// (cached on the partition) and the output vector itself.
    ///
    /// # Panics
    /// If `partition` does not fit `codec`, consistent with
    /// [`Property::extract_encoded`].
    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let _ = (codec, partition);
        None
    }
}

/// Per-row class ids from the chunked store (cached on the partition) —
/// the shared entry point of the chunked extractors.
fn chunked_class_ids<'a>(codec: &ChunkedCodec, partition: &'a NodePartition) -> &'a [u32] {
    partition
        .class_ids_chunked(codec)
        .expect("partition levels fit the codec")
}

/// Per-`(class, sensitive code)` occurrence counts by streaming the
/// sensitive column chunk-at-a-time. Codes index the column's
/// distinct-value summary; the code ↔ value mapping is a bijection over
/// the values present, so counts keyed by code equal counts keyed by
/// [`Value`].
fn chunked_sensitive_counts(
    codec: &ChunkedCodec,
    ids: &[u32],
    col: usize,
) -> std::collections::HashMap<(u32, u32), usize> {
    // Workers tally per-chunk partial counts; merging integer tallies is
    // key-wise commutative, so the folded map is deterministic at every
    // thread count (and the reduce runs in chunk order regardless).
    let mut counts: std::collections::HashMap<(u32, u32), usize> = std::collections::HashMap::new();
    codec
        .map_raw_chunks(
            col,
            || (),
            |(), base, codes| {
                let mut partial: std::collections::HashMap<(u32, u32), usize> =
                    std::collections::HashMap::new();
                for (i, &code) in codes.iter().enumerate() {
                    *partial.entry((ids[base + i], code)).or_insert(0) += 1;
                }
                Ok(partial)
            },
            |_, partial| {
                for (key, n) in partial {
                    *counts.entry(key).or_insert(0) += n;
                }
                Ok(())
            },
        )
        .expect("chunked column streams");
    counts
}

fn resolve_sensitive_column_chunked(codec: &ChunkedCodec, column: Option<usize>) -> usize {
    column.unwrap_or_else(|| {
        *codec
            .schema()
            .sensitive()
            .first()
            .expect("schema declares at least one sensitive attribute")
    })
}

/// Per-row class sizes under a partition — the shared kernel of the
/// class-size-derived properties.
fn encoded_class_sizes(codec: &GenCodec, partition: &NodePartition) -> Vec<u32> {
    let ids = partition
        .class_ids(codec)
        .expect("partition levels fit the codec");
    let sizes = partition.sizes();
    ids.iter().map(|&c| sizes[c as usize]).collect()
}

/// Size of the equivalence class a tuple belongs to — the property behind
/// k-anonymity and the paper's running example (`s = (3,3,3,3,4,4,4,3,3,4)`
/// for T3a).
#[derive(Debug, Clone, Copy, Default)]
pub struct EqClassSize;

impl Property for EqClassSize {
    fn name(&self) -> String {
        "eq-class-size".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let sizes: Vec<usize> = (0..table.len())
            .map(|t| table.classes().class_size_of(t))
            .collect();
        PropertyVector::from_usizes(self.name(), &sizes)
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let sizes: Vec<usize> = encoded_class_sizes(codec, partition)
            .into_iter()
            .map(|s| s as usize)
            .collect();
        PropertyVector::from_usizes(self.name(), &sizes)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let ids = chunked_class_ids(codec, partition);
        let class_sizes = partition.sizes();
        let mut sizes: Vec<usize> = vec![0; ids.len()];
        chunk_parallel::fill_spans(&mut sizes, codec.threads(), |base, span| {
            for (i, s) in span.iter_mut().enumerate() {
                *s = class_sizes[ids[base + i] as usize] as usize;
            }
        });
        Some(PropertyVector::from_usizes(self.name(), &sizes))
    }
}

/// Per-tuple probability of a privacy breach under the equivalence-class
/// re-identification model: `1 / |EC(t)|` (§1: "every tuple has at most a
/// 1/3 probability of privacy breach"). Extracted negated so that higher
/// (less negative) is better.
#[derive(Debug, Clone, Copy, Default)]
pub struct BreachProbability;

impl BreachProbability {
    /// The raw probabilities (lower is better), for reporting.
    pub fn raw(&self, table: &AnonymizedTable) -> PropertyVector {
        let v: Vec<f64> = (0..table.len())
            .map(|t| 1.0 / table.classes().class_size_of(t) as f64)
            .collect();
        PropertyVector::new("breach-probability", v)
    }
}

impl Property for BreachProbability {
    fn name(&self) -> String {
        "-breach-probability".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        self.raw(table).negated().renamed(self.name())
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let v: Vec<f64> = encoded_class_sizes(codec, partition)
            .into_iter()
            .map(|s| -(1.0 / s as f64))
            .collect();
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let ids = chunked_class_ids(codec, partition);
        let sizes = partition.sizes();
        let mut v: Vec<f64> = vec![0.0; ids.len()];
        chunk_parallel::fill_spans(&mut v, codec.threads(), |base, span| {
            for (i, p) in span.iter_mut().enumerate() {
                *p = -(1.0 / sizes[ids[base + i] as usize] as f64);
            }
        });
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Number of times a tuple's sensitive value appears within its equivalence
/// class — the property the paper uses for ℓ-diversity
/// (`(2,2,1,2,2,1,2,1,2,1)` for T3a with Marital Status sensitive).
///
/// Counts are taken on the **original** sensitive values, which the data
/// publisher performing the comparison has access to even when the release
/// generalizes or suppresses the sensitive column.
#[derive(Debug, Clone, Copy, Default)]
pub struct SensitiveValueCount {
    /// Column of the sensitive attribute; `None` selects the schema's first
    /// sensitive attribute.
    pub column: Option<usize>,
}

fn resolve_sensitive_column(table: &AnonymizedTable, column: Option<usize>) -> usize {
    resolve_sensitive_column_of(table.dataset(), column)
}

fn resolve_sensitive_column_of(ds: &Dataset, column: Option<usize>) -> usize {
    column.unwrap_or_else(|| {
        *ds.schema()
            .sensitive()
            .first()
            .expect("schema declares at least one sensitive attribute")
    })
}

/// Per-`(class, sensitive value)` occurrence counts in one pass — the
/// shared kernel of the encoded sensitive-value properties. Returns the
/// per-row class ids alongside the count map.
fn sensitive_counts<'a>(
    codec: &'a GenCodec,
    partition: &'a NodePartition,
    col: usize,
) -> (&'a [u32], std::collections::HashMap<(u32, Value), usize>) {
    let ds = codec.dataset();
    let ids = partition
        .class_ids(codec)
        .expect("partition levels fit the codec");
    let mut counts: std::collections::HashMap<(u32, Value), usize> =
        std::collections::HashMap::new();
    for (row, &class) in ids.iter().enumerate() {
        *counts.entry((class, *ds.value(row, col))).or_insert(0) += 1;
    }
    (ids, counts)
}

impl Property for SensitiveValueCount {
    fn name(&self) -> String {
        "sensitive-value-count".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let col = resolve_sensitive_column(table, self.column);
        let ds = table.dataset();
        let counts: Vec<usize> = (0..table.len())
            .map(|t| {
                let class = table.classes().class_of(t);
                let own: &Value = ds.value(t, col);
                table
                    .classes()
                    .members(class)
                    .iter()
                    .filter(|&&m| ds.value(m as usize, col) == own)
                    .count()
            })
            .collect();
        PropertyVector::from_usizes(self.name(), &counts)
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let ds = codec.dataset();
        let col = resolve_sensitive_column_of(ds, self.column);
        let (ids, counts) = sensitive_counts(codec, partition, col);
        let v: Vec<usize> = ids
            .iter()
            .enumerate()
            .map(|(row, &class)| counts[&(class, *ds.value(row, col))])
            .collect();
        PropertyVector::from_usizes(self.name(), &v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let col = resolve_sensitive_column_chunked(codec, self.column);
        let ids = chunked_class_ids(codec, partition);
        let counts = chunked_sensitive_counts(codec, ids, col);
        let mut v: Vec<usize> = Vec::with_capacity(codec.rows());
        codec
            .map_raw_chunks(
                col,
                || (),
                |(), base, codes| {
                    Ok(codes
                        .iter()
                        .enumerate()
                        .map(|(i, &code)| counts[&(ids[base + i], code)])
                        .collect::<Vec<usize>>())
                },
                |_, chunk_counts| {
                    v.extend_from_slice(&chunk_counts);
                    Ok(())
                },
            )
            .expect("chunked column streams");
        Some(PropertyVector::from_usizes(self.name(), &v))
    }
}

/// Number of *distinct* sensitive values in a tuple's equivalence class —
/// the per-tuple decomposition of distinct ℓ-diversity (Machanavajjhala et
/// al., cited in §6). Higher is better.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistinctSensitiveCount {
    /// Column of the sensitive attribute; `None` selects the schema's first
    /// sensitive attribute.
    pub column: Option<usize>,
}

impl Property for DistinctSensitiveCount {
    fn name(&self) -> String {
        "distinct-sensitive-count".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        let col = resolve_sensitive_column(table, self.column);
        let ds = table.dataset();
        // Compute per class once, then scatter to tuples.
        let mut per_class: Vec<usize> = Vec::with_capacity(table.classes().class_count());
        for (_, members) in table.classes().iter() {
            let mut vals: Vec<&Value> =
                members.iter().map(|&m| ds.value(m as usize, col)).collect();
            vals.sort_unstable();
            vals.dedup();
            per_class.push(vals.len());
        }
        let counts: Vec<usize> = (0..table.len())
            .map(|t| per_class[table.classes().class_of(t)])
            .collect();
        PropertyVector::from_usizes(self.name(), &counts)
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let ds = codec.dataset();
        let col = resolve_sensitive_column_of(ds, self.column);
        let ids = partition
            .class_ids(codec)
            .expect("partition levels fit the codec");
        // Distinct sensitive values per class, in one pass over the rows.
        let mut per_class: Vec<Vec<Value>> = vec![Vec::new(); partition.class_count()];
        for (row, &class) in ids.iter().enumerate() {
            per_class[class as usize].push(*ds.value(row, col));
        }
        let distinct: Vec<usize> = per_class
            .into_iter()
            .map(|mut vals| {
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            })
            .collect();
        let v: Vec<usize> = ids.iter().map(|&c| distinct[c as usize]).collect();
        PropertyVector::from_usizes(self.name(), &v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let col = resolve_sensitive_column_chunked(codec, self.column);
        let ids = chunked_class_ids(codec, partition);
        // Each `(class, code)` key occurs once per distinct sensitive value
        // present in that class, so counting keys counts distinct values.
        let counts = chunked_sensitive_counts(codec, ids, col);
        let mut distinct: Vec<usize> = vec![0; partition.class_count()];
        for &(class, _) in counts.keys() {
            distinct[class as usize] += 1;
        }
        let mut v: Vec<usize> = vec![0; ids.len()];
        chunk_parallel::fill_spans(&mut v, codec.threads(), |base, span| {
            for (i, d) in span.iter_mut().enumerate() {
                *d = distinct[ids[base + i] as usize];
            }
        });
        Some(PropertyVector::from_usizes(self.name(), &v))
    }
}

/// Per-tuple t-closeness distance: the total variation distance between the
/// sensitive-value distribution of the tuple's equivalence class and the
/// global distribution (Li et al., cited in §6). Lower raw distance is
/// better, so the property extracts negated.
#[derive(Debug, Clone, Copy, Default)]
pub struct TClosenessDistance {
    /// Column of the sensitive attribute; `None` selects the schema's first
    /// sensitive attribute.
    pub column: Option<usize>,
}

impl TClosenessDistance {
    /// Raw per-tuple distances in `[0, 1]` (lower is better).
    pub fn raw(&self, table: &AnonymizedTable) -> PropertyVector {
        let col = resolve_sensitive_column(table, self.column);
        let ds = table.dataset();
        let n = table.len() as f64;
        // Global distribution over observed sensitive values.
        let mut global: Vec<(Value, f64)> = Vec::new();
        for t in 0..table.len() {
            let v = *ds.value(t, col);
            match global.iter_mut().find(|(g, _)| *g == v) {
                Some((_, c)) => *c += 1.0,
                None => global.push((v, 1.0)),
            }
        }
        for (_, c) in &mut global {
            *c /= n;
        }
        // Per-class total variation distance.
        let mut per_class: Vec<f64> = Vec::with_capacity(table.classes().class_count());
        for (_, members) in table.classes().iter() {
            let m = members.len() as f64;
            let mut tv = 0.0;
            for (gv, gp) in &global {
                let local = members
                    .iter()
                    .filter(|&&t| ds.value(t as usize, col) == gv)
                    .count() as f64
                    / m;
                tv += (local - gp).abs();
            }
            per_class.push(tv / 2.0);
        }
        let v: Vec<f64> = (0..table.len())
            .map(|t| per_class[table.classes().class_of(t)])
            .collect();
        PropertyVector::new("t-closeness-distance", v)
    }
}

impl Property for TClosenessDistance {
    fn name(&self) -> String {
        "-t-closeness-distance".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        self.raw(table).negated().renamed(self.name())
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let ds = codec.dataset();
        let col = resolve_sensitive_column_of(ds, self.column);
        let n = codec.rows() as f64;
        // Global distribution over observed sensitive values, in the same
        // first-appearance order as the materialized path (the TV sum
        // accumulates in this order, so the order matters bit-for-bit).
        let mut global: Vec<(Value, f64)> = Vec::new();
        for t in 0..codec.rows() {
            let v = *ds.value(t, col);
            match global.iter_mut().find(|(g, _)| *g == v) {
                Some((_, c)) => *c += 1.0,
                None => global.push((v, 1.0)),
            }
        }
        for (_, c) in &mut global {
            *c /= n;
        }
        let (ids, counts) = sensitive_counts(codec, partition, col);
        let per_class: Vec<f64> = partition
            .sizes()
            .iter()
            .enumerate()
            .map(|(class, &size)| {
                let m = size as f64;
                let mut tv = 0.0;
                for (gv, gp) in &global {
                    let local = counts.get(&(class as u32, *gv)).copied().unwrap_or(0) as f64 / m;
                    tv += (local - gp).abs();
                }
                tv / 2.0
            })
            .collect();
        let v: Vec<f64> = ids.iter().map(|&c| -per_class[c as usize]).collect();
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let col = resolve_sensitive_column_chunked(codec, self.column);
        let n = codec.rows() as f64;
        // Global distribution over sensitive codes, in row-stream
        // first-appearance order. The code ↔ value bijection preserves the
        // materialized path's ordering, so the TV sum accumulates in the
        // same order and the distances match bit-for-bit. Parallel chunks
        // tally chunk-local first-appearance lists; merging them in chunk
        // order reproduces the global first-appearance order, and the
        // tallies are exact integers in f64, so the sums are too.
        let mut global: Vec<(u32, f64)> = Vec::new();
        codec
            .map_raw_chunks(
                col,
                || (),
                |(), _, codes| {
                    let mut partial: Vec<(u32, f64)> = Vec::new();
                    for &code in codes {
                        match partial.iter_mut().find(|(g, _)| *g == code) {
                            Some((_, c)) => *c += 1.0,
                            None => partial.push((code, 1.0)),
                        }
                    }
                    Ok(partial)
                },
                |_, partial| {
                    for (code, count) in partial {
                        match global.iter_mut().find(|(g, _)| *g == code) {
                            Some((_, c)) => *c += count,
                            None => global.push((code, count)),
                        }
                    }
                    Ok(())
                },
            )
            .expect("chunked column streams");
        for (_, c) in &mut global {
            *c /= n;
        }
        let ids = chunked_class_ids(codec, partition);
        let counts = chunked_sensitive_counts(codec, ids, col);
        let sizes = partition.sizes();
        // Per-class TV distances are independent; the within-class sum
        // runs over `global` in its fixed order either way.
        let mut per_class: Vec<f64> = vec![0.0; sizes.len()];
        chunk_parallel::fill_spans(&mut per_class, codec.threads(), |base, span| {
            for (i, out) in span.iter_mut().enumerate() {
                let class = base + i;
                let m = sizes[class] as f64;
                let mut tv = 0.0;
                for &(code, gp) in &global {
                    let local = counts.get(&(class as u32, code)).copied().unwrap_or(0) as f64 / m;
                    tv += (local - gp).abs();
                }
                *out = tv / 2.0;
            }
        });
        let mut v: Vec<f64> = vec![0.0; ids.len()];
        chunk_parallel::fill_spans(&mut v, codec.threads(), |base, span| {
            for (i, out) in span.iter_mut().enumerate() {
                *out = -per_class[ids[base + i] as usize];
            }
        });
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Per-tuple data utility under a configurable loss metric:
/// `utility(t) = a − Σ_col loss(t, col)` with `a` the number of columns the
/// metric sums over — the convention that reproduces the paper's §5.5
/// Iyengar-utility vectors `u_a`/`u_b` exactly (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct IyengarUtility {
    metric: LossMetric,
}

impl IyengarUtility {
    /// Utility under the paper's §5.5 configuration
    /// ([`LossMetric::paper_ratio`]).
    pub fn paper() -> Self {
        IyengarUtility {
            metric: LossMetric::paper_ratio(),
        }
    }

    /// Utility under a custom loss metric.
    pub fn with_metric(metric: LossMetric) -> Self {
        IyengarUtility { metric }
    }
}

impl Default for IyengarUtility {
    fn default() -> Self {
        IyengarUtility::paper()
    }
}

impl Property for IyengarUtility {
    fn name(&self) -> String {
        "iyengar-utility".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        PropertyVector::new(self.name(), self.metric.utility_vector(table))
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let v = self
            .metric
            .utility_vector_encoded(codec, partition.levels())
            .expect("partition levels fit the codec");
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let v = self
            .metric
            .utility_vector_chunked(codec, partition.levels())
            .expect("partition levels fit the codec");
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Per-tuple generalization loss (lower is better; extracted negated).
#[derive(Debug, Clone)]
pub struct GeneralizationLoss {
    metric: LossMetric,
}

impl GeneralizationLoss {
    /// Loss under Iyengar's classic LM over quasi-identifiers.
    pub fn classic() -> Self {
        GeneralizationLoss {
            metric: LossMetric::classic(),
        }
    }

    /// Loss under a custom metric.
    pub fn with_metric(metric: LossMetric) -> Self {
        GeneralizationLoss { metric }
    }

    /// Raw per-tuple losses (lower is better).
    pub fn raw(&self, table: &AnonymizedTable) -> PropertyVector {
        PropertyVector::new("generalization-loss", self.metric.loss_vector(table))
    }
}

impl Property for GeneralizationLoss {
    fn name(&self) -> String {
        "-generalization-loss".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        self.raw(table).negated().renamed(self.name())
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let v: Vec<f64> = self
            .metric
            .loss_vector_encoded(codec, partition.levels())
            .expect("partition levels fit the codec")
            .into_iter()
            .map(|l| -l)
            .collect();
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let v: Vec<f64> = self
            .metric
            .loss_vector_chunked(codec, partition.levels())
            .expect("partition levels fit the codec")
            .into_iter()
            .map(|l| -l)
            .collect();
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Per-tuple precision (Sweeney's Prec decomposed by tuple; higher is
/// better).
#[derive(Debug, Clone, Copy, Default)]
pub struct Precision;

impl Property for Precision {
    fn name(&self) -> String {
        "precision".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        PropertyVector::new(self.name(), precision_vector(table))
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let v = precision_vector_encoded(codec, partition.levels())
            .expect("partition levels fit the codec");
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let v = precision_vector_chunked(codec, partition.levels())
            .expect("partition levels fit the codec");
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Per-tuple discernibility penalty (Bayardo–Agrawal DM decomposed by
/// tuple; lower is better, extracted negated).
#[derive(Debug, Clone, Copy, Default)]
pub struct Discernibility;

impl Discernibility {
    /// Raw penalties (lower is better).
    pub fn raw(&self, table: &AnonymizedTable) -> PropertyVector {
        PropertyVector::new("discernibility", discernibility_vector(table))
    }
}

impl Property for Discernibility {
    fn name(&self) -> String {
        "-discernibility".into()
    }

    fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
        self.raw(table).negated().renamed(self.name())
    }

    fn extract_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> PropertyVector {
        let v: Vec<f64> = discernibility_vector_encoded(codec, partition)
            .expect("partition levels fit the codec")
            .into_iter()
            .map(|d| -d)
            .collect();
        PropertyVector::new(self.name(), v)
    }

    fn extract_chunked(
        &self,
        codec: &ChunkedCodec,
        partition: &NodePartition,
    ) -> Option<PropertyVector> {
        let v: Vec<f64> = discernibility_vector_chunked(codec, partition)
            .expect("partition levels fit the codec")
            .into_iter()
            .map(|d| -d)
            .collect();
        Some(PropertyVector::new(self.name(), v))
    }
}

/// Induces the [`PropertySet`] of an r-property anonymization (paper
/// Definition 2): applies each property in order to the same table.
pub fn induce_property_set(table: &AnonymizedTable, properties: &[&dyn Property]) -> PropertySet {
    PropertySet::new(
        table.name().to_owned(),
        properties.iter().map(|p| p.extract(table)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    use anoncmp_microdata::prelude::*;

    /// A 6-tuple dataset with ages grouped into two classes under a width-10
    /// bucketing: {10,12,15} and {25,27,25}, sensitive values x,y,x / y,y,x.
    fn fixture() -> AnonymizedTable {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(IntervalLadder::uniform(10, &[10]).unwrap().into())
                .unwrap(),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(11), Value::Cat(0)],
                vec![Value::Int(12), Value::Cat(1)],
                vec![Value::Int(15), Value::Cat(0)],
                vec![Value::Int(25), Value::Cat(1)],
                vec![Value::Int(27), Value::Cat(1)],
                vec![Value::Int(25), Value::Cat(0)],
            ],
        )
        .unwrap();
        let lattice = Lattice::new(schema).unwrap();
        lattice.apply(&ds, &[1], "fixture").unwrap()
    }

    #[test]
    fn eq_class_size_vector() {
        let t = fixture();
        let v = EqClassSize.extract(&t);
        assert_eq!(v.values(), &[3.0; 6]);
        assert_eq!(v.name(), "eq-class-size");
    }

    #[test]
    fn breach_probability_is_negated_inverse_class_size() {
        let t = fixture();
        let raw = BreachProbability.raw(&t);
        for p in raw.iter() {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
        let oriented = BreachProbability.extract(&t);
        for p in oriented.iter() {
            assert!((p + 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sensitive_value_count() {
        let t = fixture();
        let v = SensitiveValueCount::default().extract(&t);
        // Class 1 {11,12,15}: x,y,x → counts 2,1,2.
        // Class 2 {25,27,25}: y,y,x → counts 2,2,1.
        assert_eq!(v.values(), &[2.0, 1.0, 2.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn distinct_sensitive_count() {
        let t = fixture();
        let v = DistinctSensitiveCount::default().extract(&t);
        assert_eq!(v.values(), &[2.0; 6]);
    }

    #[test]
    fn t_closeness_distance_bounds_and_uniform_case() {
        let t = fixture();
        let raw = TClosenessDistance::default().raw(&t);
        // Global distribution: x 3/6, y 3/6. Class 1: x 2/3 → TV = |2/3-1/2| = 1/6.
        for d in raw.iter() {
            assert!((d - 1.0 / 6.0).abs() < 1e-12);
        }
        let oriented = TClosenessDistance::default().extract(&t);
        for d in oriented.iter() {
            assert!(d <= 0.0);
        }
    }

    #[test]
    fn utility_and_loss_are_consistent() {
        let t = fixture();
        let metric = LossMetric::paper_ratio();
        let u = IyengarUtility::with_metric(metric.clone()).extract(&t);
        let l = GeneralizationLoss::with_metric(metric).raw(&t);
        let a = 2.0; // two columns in ColumnSet::All
        for (uu, ll) in u.iter().zip(l.iter()) {
            assert!((uu + ll - a).abs() < 1e-12);
        }
    }

    #[test]
    fn precision_and_discernibility() {
        let t = fixture();
        let p = Precision.extract(&t);
        // age at level 1 of 2 → cell ratio 0.5 → precision 0.5 (only one
        // hierarchy-bearing column).
        for x in p.iter() {
            assert!((x - 0.5).abs() < 1e-12);
        }
        let d = Discernibility.raw(&t);
        assert_eq!(d.values(), &[3.0; 6]);
        let dn = Discernibility.extract(&t);
        assert_eq!(dn.values(), &[-3.0; 6]);
    }

    #[test]
    fn encoded_extraction_is_bit_identical_to_table_extraction() {
        let t = fixture();
        let codec = GenCodec::new(t.dataset()).unwrap();
        let partition = codec.partition(&[1]).unwrap();
        let props: Vec<Box<dyn Property>> = vec![
            Box::new(EqClassSize),
            Box::new(BreachProbability),
            Box::new(SensitiveValueCount::default()),
            Box::new(DistinctSensitiveCount::default()),
            Box::new(TClosenessDistance::default()),
            Box::new(IyengarUtility::with_metric(LossMetric::paper_ratio())),
            Box::new(GeneralizationLoss::classic()),
            Box::new(Precision),
            Box::new(Discernibility),
        ];
        for p in &props {
            let from_table = p.extract(&t);
            let from_codec = p.extract_encoded(&codec, &partition);
            assert_eq!(from_table.name(), from_codec.name(), "{}", p.name());
            assert_eq!(from_table.values(), from_codec.values(), "{}", p.name());
        }
    }

    #[test]
    fn chunked_extraction_is_bit_identical_to_table_extraction() {
        let t = fixture();
        let props: Vec<Box<dyn Property>> = vec![
            Box::new(EqClassSize),
            Box::new(BreachProbability),
            Box::new(SensitiveValueCount::default()),
            Box::new(DistinctSensitiveCount::default()),
            Box::new(TClosenessDistance::default()),
            Box::new(IyengarUtility::with_metric(LossMetric::paper_ratio())),
            Box::new(GeneralizationLoss::classic()),
            Box::new(Precision),
            Box::new(Discernibility),
        ];
        for chunk_rows in [1, 2, 4, 6, 64] {
            let codec = ChunkedCodec::from_dataset(t.dataset(), chunk_rows).unwrap();
            let partition = codec.partition(&[1]).unwrap();
            for p in &props {
                let from_table = p.extract(&t);
                let from_chunks = p
                    .extract_chunked(&codec, &partition)
                    .expect("built-ins have chunked kernels");
                assert_eq!(
                    from_table.name(),
                    from_chunks.name(),
                    "{} @ chunk_rows={chunk_rows}",
                    p.name()
                );
                assert_eq!(
                    from_table.values(),
                    from_chunks.values(),
                    "{} @ chunk_rows={chunk_rows}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn custom_properties_default_to_no_chunked_kernel() {
        struct RowIndex;
        impl Property for RowIndex {
            fn name(&self) -> String {
                "row-index".into()
            }
            fn extract(&self, table: &AnonymizedTable) -> PropertyVector {
                PropertyVector::new(self.name(), (0..table.len()).map(|i| i as f64).collect())
            }
        }
        let t = fixture();
        let codec = ChunkedCodec::from_dataset(t.dataset(), 3).unwrap();
        let partition = codec.partition(&[1]).unwrap();
        assert!(RowIndex.extract_chunked(&codec, &partition).is_none());
    }

    #[test]
    fn induce_property_set_preserves_order() {
        let t = fixture();
        let props: Vec<&dyn Property> = vec![&EqClassSize, &Precision];
        let set = induce_property_set(&t, &props);
        assert_eq!(set.r(), 2);
        assert_eq!(set.anonymization(), "fixture");
        assert_eq!(set.vector(0).name(), "eq-class-size");
        assert_eq!(set.vector(1).name(), "precision");
    }

    #[test]
    fn explicit_sensitive_column_selection() {
        let t = fixture();
        let v = SensitiveValueCount { column: Some(1) }.extract(&t);
        assert_eq!(v.len(), 6);
        let w = SensitiveValueCount::default().extract(&t);
        assert_eq!(v.values(), w.values());
    }

    #[test]
    fn suppressed_release_has_full_class() {
        let t = fixture();
        let ds = t.dataset().clone();
        let sup = AnonymizedTable::fully_suppressed(ds, "sup");
        assert_eq!(EqClassSize.extract(&sup).values(), &[6.0; 6]);
        // t-closeness distance of the single full class is 0.
        let d = TClosenessDistance::default().raw(&sup);
        for x in d.iter() {
            assert!(x.abs() < 1e-12);
        }
    }
}
