//! Property-based equivalence tests for the encoded kernels: on arbitrary
//! tables and lattice nodes, `Property::extract_encoded` must reproduce
//! the materialized `Property::extract` bit for bit, and the batched
//! [`ComparisonMatrix`] kernel must reproduce the scalar
//! `Comparator::compare` sweep on every comparator.

use std::sync::Arc;

use proptest::prelude::*;

use anoncmp_core::prelude::*;
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{
    Attribute, Dataset, GenCodec, IntervalLadder, Lattice, Role, Schema, Taxonomy, Value,
};

fn small_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::integer("age", Role::QuasiIdentifier, 0, 99)
            .with_hierarchy(IntervalLadder::uniform(0, &[10, 30]).unwrap().into())
            .unwrap(),
        Attribute::from_taxonomy(
            "city",
            Role::QuasiIdentifier,
            Taxonomy::masking(&["aa", "ab", "ba", "bb"], &[1]).unwrap(),
        ),
        Attribute::categorical("d", Role::Sensitive, ["x", "y", "z"]),
    ])
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        (0i64..100, 0u32..4, 0u32..3)
            .prop_map(|(a, c, d)| vec![Value::Int(a), Value::Cat(c), Value::Cat(d)]),
        1..40,
    )
}

fn all_properties() -> Vec<Box<dyn Property>> {
    vec![
        Box::new(EqClassSize),
        Box::new(BreachProbability),
        Box::new(SensitiveValueCount::default()),
        Box::new(DistinctSensitiveCount::default()),
        Box::new(TClosenessDistance::default()),
        Box::new(IyengarUtility::with_metric(LossMetric::paper_ratio())),
        Box::new(IyengarUtility::with_metric(LossMetric::classic())),
        Box::new(GeneralizationLoss::classic()),
        Box::new(Precision),
        Box::new(Discernibility),
    ]
}

proptest! {
    #[test]
    fn encoded_extraction_matches_table_extraction(
        rows in arb_rows(),
        l0 in 0usize..4,
        l1 in 0usize..3,
    ) {
        let schema = small_schema();
        let ds = Dataset::new(schema.clone(), rows).expect("rows are in-domain");
        let lattice = Lattice::new(schema).expect("lattice");
        let table = lattice.apply(&ds, &[l0, l1], "t").expect("valid levels");
        let codec = GenCodec::new(&ds).expect("every QI has a hierarchy");
        let partition = codec.partition(&[l0, l1]).expect("valid levels");
        for p in all_properties() {
            let from_table = p.extract(&table);
            let from_codec = p.extract_encoded(&codec, &partition);
            prop_assert_eq!(from_table.name(), from_codec.name(), "{}", p.name());
            prop_assert_eq!(from_table.len(), from_codec.len(), "{}", p.name());
            // Bit-level equality, stricter than `==` (distinguishes ±0.0).
            for (a, b) in from_table.iter().zip(from_codec.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: {} vs {}", p.name(), a, b);
            }
        }
    }
}

fn arb_pool() -> impl Strategy<Value = Vec<PropertyVector>> {
    (2usize..7, 1usize..9).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            proptest::collection::vec(0.1f64..10.0, n..=n)
                .prop_map(|values| PropertyVector::new("p", values)),
            m..=m,
        )
    })
}

proptest! {
    #[test]
    fn matrix_kernel_matches_scalar_sweep(pool in arb_pool()) {
        let names: Vec<String> = (0..pool.len()).map(|i| i.to_string()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let refs: Vec<&PropertyVector> = pool.iter().collect();
        let comparators: Vec<Box<dyn Comparator>> = vec![
            Box::new(CoverageComparator),
            Box::new(SpreadComparator),
            Box::new(RankComparator::toward_ideal_of(&refs)),
            Box::new(RankComparator::toward_ideal_of(&refs).with_epsilon(0.5)),
            Box::new(HypervolumeComparator::with_mode(HvMode::Exact)),
            Box::new(HypervolumeComparator::with_mode(HvMode::Log)),
            Box::new(EpsilonComparator::default()),
            Box::new(EpsilonComparator { kind: EpsilonKind::Multiplicative }),
            Box::new(DominanceComparator),
        ];
        for c in &comparators {
            let matrix = ComparisonMatrix::of_vectors(&name_refs, &pool, c.as_ref());
            for i in 0..pool.len() {
                for j in 0..pool.len() {
                    let expected = if i == j {
                        Preference::Tie
                    } else {
                        c.compare(&pool[i], &pool[j])
                    };
                    prop_assert_eq!(
                        matrix.outcome(i, j),
                        expected,
                        "{} diverges at ({}, {})",
                        c.name(),
                        i,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matrix_matches_sequential(pool in arb_pool(), threads in 1usize..5) {
        let names: Vec<String> = (0..pool.len()).map(|i| i.to_string()).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let sequential = ComparisonMatrix::of_vectors(&name_refs, &pool, &CoverageComparator);
        let parallel =
            ComparisonMatrix::of_vectors_parallel(&name_refs, &pool, &CoverageComparator, threads);
        for i in 0..pool.len() {
            for j in 0..pool.len() {
                prop_assert_eq!(sequential.outcome(i, j), parallel.outcome(i, j));
            }
        }
    }
}
