//! Property-based equivalence for the chunked extraction path: on
//! arbitrary tables, lattice nodes, chunk sizes (degenerate,
//! non-dividing, oversized), and worker thread counts {1, 2, 8},
//! `Property::extract_chunked` must reproduce the materialized
//! `Property::extract` bit for bit for all nine built-in properties.
//! Thread count must never be observable in any extracted vector.

use std::sync::Arc;

use proptest::prelude::*;

use anoncmp_core::prelude::*;
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{
    Attribute, ChunkedCodec, Dataset, IntervalLadder, Lattice, Role, Schema, Taxonomy, Value,
};

fn small_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::integer("age", Role::QuasiIdentifier, 0, 99)
            .with_hierarchy(IntervalLadder::uniform(0, &[10, 30]).unwrap().into())
            .unwrap(),
        Attribute::from_taxonomy(
            "city",
            Role::QuasiIdentifier,
            Taxonomy::masking(&["aa", "ab", "ba", "bb"], &[1]).unwrap(),
        ),
        Attribute::categorical("d", Role::Sensitive, ["x", "y", "z"]),
    ])
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        (0i64..100, 0u32..4, 0u32..3)
            .prop_map(|(a, c, d)| vec![Value::Int(a), Value::Cat(c), Value::Cat(d)]),
        1..40,
    )
}

fn all_properties() -> Vec<Box<dyn Property>> {
    vec![
        Box::new(EqClassSize),
        Box::new(BreachProbability),
        Box::new(SensitiveValueCount::default()),
        Box::new(DistinctSensitiveCount::default()),
        Box::new(TClosenessDistance::default()),
        Box::new(IyengarUtility::with_metric(LossMetric::paper_ratio())),
        Box::new(IyengarUtility::with_metric(LossMetric::classic())),
        Box::new(GeneralizationLoss::classic()),
        Box::new(Precision),
        Box::new(Discernibility),
    ]
}

proptest! {
    #[test]
    fn chunked_extraction_matches_table_extraction(
        rows in arb_rows(),
        l0 in 0usize..4,
        l1 in 0usize..3,
    ) {
        let schema = small_schema();
        let ds = Dataset::new(schema.clone(), rows).expect("rows are in-domain");
        let lattice = Lattice::new(schema).expect("lattice");
        let table = lattice.apply(&ds, &[l0, l1], "t").expect("valid levels");
        for chunk_rows in [1, 7, 4096, ds.len() + 1] {
            let codec = ChunkedCodec::from_dataset(&ds, chunk_rows).expect("chunked build");
            for threads in [1usize, 2, 8] {
                codec.set_threads(threads);
                let partition = codec.partition(&[l0, l1]).expect("valid levels");
                for p in all_properties() {
                    let from_table = p.extract(&table);
                    let from_chunks = p
                        .extract_chunked(&codec, &partition)
                        .expect("built-ins have chunked kernels");
                    prop_assert_eq!(from_table.name(), from_chunks.name(), "{}", p.name());
                    prop_assert_eq!(from_table.len(), from_chunks.len(), "{}", p.name());
                    // Bit-level equality, stricter than `==` (distinguishes ±0.0).
                    for (a, b) in from_table.iter().zip(from_chunks.iter()) {
                        prop_assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} @ chunk_rows={} threads={}: {} vs {}",
                            p.name(),
                            chunk_rows,
                            threads,
                            a,
                            b
                        );
                    }
                }
            }
        }
    }
}
