//! Property-based equivalence for the perturbative wing:
//!
//! 1. The numeric properties' contiguous-slice fast paths are
//!    **bit-identical** to their row-at-a-time reference implementations
//!    over randomly generated bases and releases — the guarantee that
//!    lets the engine cache and compare vectors across code paths.
//! 2. A [`ComparisonMatrix`] built over mixed-family vectors (negated
//!    losses next to class-size-like magnitudes) returns exactly the
//!    verdict of calling the comparator on each pair directly, both in
//!    the batched and the parallel kernels.

use anoncmp_core::prelude::*;
use anoncmp_microdata::numeric::{NumericBase, NumericRelease};
use anoncmp_microdata::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A random numeric base: `n` rows over two integer quasi-identifiers
/// plus one categorical sensitive column.
fn base_of(rows: &[(i64, i64)]) -> Arc<NumericBase> {
    let schema = Schema::new(vec![
        Attribute::integer("age", Role::QuasiIdentifier, -1_000, 1_000),
        Attribute::integer("income", Role::QuasiIdentifier, -100_000, 100_000),
        Attribute::categorical("dx", Role::Sensitive, ["a", "b"]),
    ])
    .unwrap();
    let mut b = DatasetBuilder::with_capacity(schema, rows.len());
    for (i, (age, income)) in rows.iter().enumerate() {
        let dx = if i % 2 == 0 { "a" } else { "b" };
        b.push_labels(&[&age.to_string(), &income.to_string(), dx])
            .unwrap();
    }
    NumericBase::of(&b.build().unwrap()).unwrap()
}

fn bits(v: &PropertyVector) -> Vec<u64> {
    v.values().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fast_paths_match_naive_reference_bitwise(
        rows in proptest::collection::vec((-500i64..500, -50_000i64..50_000), 4..24),
        jitter in proptest::collection::vec((-40.0f64..40.0, -4_000.0f64..4_000.0), 24),
        k in 1usize..6,
    ) {
        let base = base_of(&rows);
        let n = base.len();
        let released: Vec<Vec<f64>> = (0..base.width())
            .map(|c| {
                base.column(c)
                    .iter()
                    .zip(&jitter)
                    .map(|(&x, j)| x + if c == 0 { j.0 } else { j.1 })
                    .collect()
            })
            .collect();
        let rel = NumericRelease::new("prop", base.clone(), released);
        prop_assert_eq!(rel.len(), n);

        for metric in [RiskMetric::StdEuclid, RiskMetric::Mahalanobis] {
            let prop = NeighborhoodRisk { metric, k };
            let fast = prop.extract_numeric(&rel);
            let naive = prop.extract_numeric_naive(&rel);
            prop_assert_eq!(bits(&fast), bits(&naive), "{:?} k={}", metric, k);
        }
        let fast = BoundedDistanceLoss.extract_numeric(&rel);
        let naive = BoundedDistanceLoss.extract_numeric_naive(&rel);
        prop_assert_eq!(bits(&fast), bits(&naive));
    }

    #[test]
    fn matrix_kernels_match_scalar_compare_on_mixed_vectors(
        candidates in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..60.0, 12),
            2..6,
        ),
        negate_mask in proptest::collection::vec(0usize..2, 6),
    ) {
        // Mixed families in one slate: some vectors look like negated
        // bounded losses (all components in [-1, 0]), others like raw
        // class-size magnitudes — exactly what an E17-style tournament
        // feeds the matrix.
        let vectors: Vec<PropertyVector> = candidates
            .iter()
            .enumerate()
            .map(|(i, vals)| {
                let vals: Vec<f64> = if negate_mask[i % negate_mask.len()] == 1 {
                    vals.iter().map(|v| -(v.abs() / 60.0)).collect()
                } else {
                    vals.iter().map(|v| v.abs()).collect()
                };
                PropertyVector::new(format!("c{i}"), vals)
            })
            .collect();
        let names: Vec<String> = (0..vectors.len()).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        let comparator = CoverageComparator;
        let batched = ComparisonMatrix::of_vectors(&name_refs, &vectors, &comparator);
        let parallel = ComparisonMatrix::of_vectors_parallel(&name_refs, &vectors, &comparator, 4);
        for i in 0..vectors.len() {
            for j in 0..vectors.len() {
                if i == j {
                    continue;
                }
                let scalar = comparator.compare(&vectors[i], &vectors[j]);
                prop_assert_eq!(batched.outcome(i, j), scalar, "batched ({i},{j})");
                prop_assert_eq!(parallel.outcome(i, j), scalar, "parallel ({i},{j})");
            }
        }
    }
}
