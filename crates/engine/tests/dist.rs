//! Integration and property tests for the sharded multi-process runner.
//!
//! The contract under test is the one `dist`'s module docs argue for:
//! the job→shard assignment is a pure function of content fingerprints
//! (a partition of the `u64` space, independent of worker count), and
//! the merged journal is **byte-identical** to a single-process run —
//! across worker counts, shard counts, and worker-loss kill points.
//!
//! The real-process tests re-execute this very test binary as the
//! worker: [`dist_worker_entry`] calls `run_worker_from_env`, which is a
//! no-op unless the supervisor put a shard assignment in the
//! environment, and the `WorkerCommand` filters the child harness down
//! to exactly that test.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

use anoncmp_core::wire::WireDataset;
use anoncmp_engine::dist::{self, DistChaos, DistConfig, GridSpec, WorkerCommand};
use anoncmp_engine::prelude::*;
use proptest::prelude::*;

/// The grid every test runs: small enough to sweep in milliseconds,
/// wide enough (6 jobs) that 3- and 4-way shard plans are non-trivial.
fn grid(shards: usize) -> GridSpec {
    GridSpec {
        dataset: WireDataset::Census {
            rows: 70,
            seed: 23,
            zip_pool: 8,
        },
        algorithms: vec!["datafly".into(), "mondrian".into(), "top-down".into()],
        ks: vec![2, 3],
        max_suppression: 4,
        properties: vec!["eq-class-size".into()],
        root_seed: 0xED5B_2009,
        shards,
        engine_jobs: 1,
    }
}

/// A scratch directory unique to one test (and one process).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anoncmp-dist-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Re-execute this test binary as the worker, running only
/// [`dist_worker_entry`].
fn test_worker() -> WorkerCommand {
    WorkerCommand::current_exe(vec![
        "dist_worker_entry".into(),
        "--exact".into(),
        "--test-threads=1".into(),
    ])
    .expect("current exe")
}

struct Reference {
    jobs: Vec<EvalJob>,
    /// Canonical journal text of an uninterrupted single-process run.
    canonical: String,
}

/// The single-process ground truth, computed once: sweep the grid with
/// one engine thread and a checkpoint journal, then canonicalize the
/// journal exactly as the merge does.
fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let jobs = grid(1).jobs().expect("grid expands");
        let path =
            std::env::temp_dir().join(format!("anoncmp-dist-ref-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        engine.checkpoint_to(&path).expect("checkpoint journal");
        let sweep = engine.run(&jobs);
        assert!(
            sweep
                .outcomes
                .iter()
                .all(|o| o.record.status == JobStatus::Ok),
            "the fixture grid must sweep cleanly"
        );
        engine.detach_journal();
        let replay = Journal::replay(&path).expect("replay reference journal");
        let _ = fs::remove_file(&path);
        let (canonical, merged, missing) = dist::canonical_journal(&jobs, &replay.completed);
        assert_eq!(merged, jobs.len());
        assert_eq!(missing, 0);
        Reference { jobs, canonical }
    })
}

/// A paper-style comparison table derived from a merged journal — the
/// "final report table" the acceptance criteria pin byte-identity on.
fn report_table(merged: &Path, jobs: &[EvalJob]) -> String {
    let replay = Journal::replay(merged).expect("replay merged journal");
    let mut table = format!(
        "{:<16} {:>3} {:>8} {:>10} {:>12}\n",
        "algorithm", "k", "classes", "suppressed", "loss"
    );
    for job in jobs {
        let record = &replay.completed[&job.job_fingerprint()];
        let metrics = record.metrics.as_ref().expect("Ok record has metrics");
        table.push_str(&format!(
            "{:<16} {:>3} {:>8} {:>10} {:>12.4}\n",
            record.algorithm, record.k, metrics.classes, metrics.suppressed, metrics.total_loss
        ));
    }
    table
}

/// Worker entry point for the real-process tests. Without the
/// supervisor's environment this is a no-op that trivially passes; with
/// it, the process runs its assigned shard and the harness exit code
/// reports success to the supervisor.
#[test]
fn dist_worker_entry() {
    dist::run_worker_from_env().expect("worker run succeeds");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Satellite 4a: shard-range planning is a partition of the `u64`
    /// fingerprint space — contiguous, gap-free, and in exact agreement
    /// with `shard_of` — for every fingerprint we throw at it and for
    /// shard counts beyond the ones production uses.
    #[test]
    fn shard_planning_is_a_partition(
        shards in 1usize..=9,
        fps in prop::collection::vec(0u64..=u64::MAX, 1..48),
    ) {
        let ranges = dist::plan_shards(shards);
        prop_assert_eq!(ranges.len(), shards);
        prop_assert_eq!(ranges[0].lo, 0);
        prop_assert_eq!(ranges[shards - 1].hi, u64::MAX);
        for pair in ranges.windows(2) {
            prop_assert!(pair[0].hi < pair[1].lo, "ranges must not overlap");
            prop_assert_eq!(pair[0].hi + 1, pair[1].lo, "ranges must not leave gaps");
        }
        // Edges and random fingerprints each land in exactly one range,
        // and that range is the one `shard_of` names.
        let edges = ranges.iter().flat_map(|r| [r.lo, r.hi]);
        for fp in fps.iter().copied().chain(edges) {
            let owners: Vec<usize> = (0..shards).filter(|&s| ranges[s].contains(fp)).collect();
            prop_assert_eq!(owners.len(), 1, "fingerprint {:016x} owned by {:?}", fp, &owners);
            prop_assert_eq!(owners[0], dist::shard_of(fp, shards));
        }
    }

    /// The grid's job→shard assignment depends only on content
    /// fingerprints and the shard count — recomputing it for any
    /// worker count {1, 2, 3, 8} yields the same assignment, so work
    /// never moves when the worker fleet is resized.
    #[test]
    fn shard_assignment_is_stable_across_worker_counts(shards in 1usize..=8) {
        let jobs = reference().jobs.clone();
        let baseline: Vec<usize> = jobs
            .iter()
            .map(|job| dist::shard_of(job.job_fingerprint(), shards))
            .collect();
        for _workers in [1usize, 2, 3, 8] {
            // The assignment has no worker-count input at all; pin that
            // by recomputing it once per fleet size.
            let again: Vec<usize> = jobs
                .iter()
                .map(|job| dist::shard_of(job.job_fingerprint(), shards))
                .collect();
            prop_assert_eq!(&again, &baseline);
        }
        let mut covered = HashSet::new();
        for &shard in &baseline {
            prop_assert!(shard < shards);
            covered.insert(shard);
        }
        prop_assert!(!covered.is_empty());
    }

    /// Satellite 4b: merging shard journals produced under any shard
    /// count and any mid-shard kill point (torn journal + heal by
    /// resume) is byte-identical to the single-process canonical
    /// journal. This is the in-process half of the byte-identity
    /// argument; the real-process half is below.
    #[test]
    fn merge_is_byte_identical_across_shard_counts_and_kill_points(
        shards in 1usize..=5,
        victim_pick in 0usize..8,
        kill in 0u64..6,
    ) {
        let reference = reference();
        let spec = grid(shards);
        let victim = victim_pick % shards;
        let dir = temp_dir(&format!("inproc-{shards}-{victim}-{kill}"));
        fs::create_dir_all(&dir).expect("create scratch dir");

        for shard in 0..shards {
            let shard_jobs: Vec<EvalJob> = reference
                .jobs
                .iter()
                .filter(|job| dist::shard_of(job.job_fingerprint(), shards) == shard)
                .cloned()
                .collect();
            if shard_jobs.is_empty() {
                continue;
            }
            let journal = dir.join(format!("shard-{shard}.jsonl"));
            let meta = spec.shard_meta(shard);

            // First worker: its journal is torn dead after `kill`
            // fsync'd appends when this shard is the victim.
            let chaos = (shard == victim).then(|| {
                let mut chaos = ChaosConfig::abort_after(0);
                chaos.abort_after_appends = None;
                chaos.truncate_journal_after = Some(kill);
                chaos
            });
            let engine = Engine::new(EngineConfig {
                jobs: 1,
                chaos,
                ..EngineConfig::default()
            });
            engine.resume_sharded(&journal, meta).expect("open shard journal");
            engine.run(&shard_jobs);
            engine.detach_journal();

            // Reassigned worker: resume the torn journal and heal.
            if shard == victim {
                let engine = Engine::new(EngineConfig {
                    jobs: 1,
                    ..EngineConfig::default()
                });
                let resumed = engine.resume_sharded(&journal, meta).expect("heal shard journal");
                prop_assert!(resumed.replayed as u64 <= shard_jobs.len() as u64);
                engine.run(&shard_jobs);
                engine.detach_journal();
            }
        }

        let merged = dir.join("merged.jsonl");
        let report = dist::merge_shards(&dir, &spec, &merged).expect("merge shard journals");
        prop_assert_eq!(report.merged, reference.jobs.len());
        prop_assert_eq!(report.missing, 0);
        let text = fs::read_to_string(&merged).expect("read merged journal");
        prop_assert_eq!(&text, &reference.canonical);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Acceptance: merged N-worker output (records *and* the derived report
/// table) is byte-identical to the single-process run for worker counts
/// {1, 2, 4}, with real worker processes.
#[test]
fn merged_output_is_byte_identical_for_worker_counts_1_2_4() {
    let reference = reference();
    let worker = test_worker();
    let mut tables = Vec::new();
    for workers in [1usize, 2, 4] {
        let dir = temp_dir(&format!("workers-{workers}"));
        let spec = grid(4);
        let config = DistConfig::new(&dir, workers);
        let report = dist::run_supervisor(&spec, &config, &worker).expect("supervised run");
        assert_eq!(report.restarts, 0, "clean runs restart nothing");
        assert_eq!(report.merge.missing, 0);
        assert_eq!(report.merge.merged, reference.jobs.len());
        let text = fs::read_to_string(&report.merged_path).expect("read merged journal");
        assert_eq!(
            text, reference.canonical,
            "{workers}-worker merged journal must be byte-identical to the single-process run"
        );
        tables.push(report_table(&report.merged_path, &reference.jobs));
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        tables.windows(2).all(|pair| pair[0] == pair[1]),
        "derived report tables must be byte-identical across worker counts"
    );
}

/// Acceptance: killing a worker mid-sweep (seeded chaos, SIGABRT after
/// a planned number of fsync'd appends) heals via reassignment — the
/// replacement resumes *exactly* the records the dead worker journaled,
/// nothing is quarantined, and the merged artifact is unchanged.
#[test]
fn killed_worker_heals_via_reassignment_with_exact_counts() {
    let reference = reference();
    let spec = grid(3);
    let chaos = DistChaos { seed: 17 };

    // Recompute the kill plan the supervisor will arm, so the healing
    // assertions below can be exact rather than merely "some restart".
    let mut per_shard = vec![0usize; spec.shards];
    let mut seen = HashSet::new();
    for job in &reference.jobs {
        let fp = job.job_fingerprint();
        if seen.insert(fp) {
            per_shard[dist::shard_of(fp, spec.shards)] += 1;
        }
    }
    let plan = chaos.plan(&per_shard).expect("a shard with >= 2 jobs");
    assert!(plan.kill_after >= 1 && plan.kill_after < per_shard[plan.victim] as u64);

    let dir = temp_dir("chaos-kill");
    let mut config = DistConfig::new(&dir, 2);
    config.chaos = Some(chaos);
    let report = dist::run_supervisor(&spec, &config, &test_worker()).expect("supervised run");

    assert_eq!(report.restarts, 1, "exactly the planned worker dies");
    assert_eq!(report.quarantined_total(), 0, "healing quarantines nothing");
    let victim = &report.shards[plan.victim];
    assert_eq!(victim.restarts, 1);
    assert_eq!(
        victim.resumed as u64, plan.kill_after,
        "the replacement resumes exactly the records the dead worker fsync'd"
    );
    for shard in 0..spec.shards {
        let quarantined = fs::metadata(dir.join(format!("shard-{shard}.failed.jsonl")))
            .map(|m| m.len())
            .unwrap_or(0);
        assert_eq!(
            quarantined, 0,
            "shard {shard} quarantine file must be empty"
        );
    }
    let text = fs::read_to_string(&report.merged_path).expect("read merged journal");
    assert_eq!(
        text, reference.canonical,
        "a healed run merges byte-identical to an undisturbed one"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A worker that is alive but wedged (no heartbeats) is detected by the
/// stall timeout, killed, and its shard reassigned — same healed,
/// byte-identical outcome as a crash.
#[test]
fn stalled_worker_is_killed_and_reassigned() {
    let reference = reference();
    let spec = grid(3);
    let hang_shard = reference
        .jobs
        .iter()
        .map(|job| dist::shard_of(job.job_fingerprint(), spec.shards))
        .min()
        .expect("a non-empty shard");

    let dir = temp_dir("chaos-stall");
    let mut config = DistConfig::new(&dir, 2);
    config.hang_first = Some(hang_shard);
    config.stall_timeout = Duration::from_millis(500);
    let report = dist::run_supervisor(&spec, &config, &test_worker()).expect("supervised run");

    assert_eq!(report.restarts, 1, "the wedged worker is killed once");
    assert_eq!(report.shards[hang_shard].restarts, 1);
    assert_eq!(report.quarantined_total(), 0);
    let text = fs::read_to_string(&report.merged_path).expect("read merged journal");
    assert_eq!(text, reference.canonical);
    let _ = fs::remove_dir_all(&dir);
}
