//! Property tests for the hardened JSON parser.
//!
//! `serde::json::parse` runs on attacker-controlled bytes in the
//! `anoncmp-serve` daemon, so it must be total: bounded recursion (no
//! stack overflow on `[[[[…`), bounded document size, and clean `None`
//! on everything it rejects. These properties drive the limits with
//! generated nesting depths, padded documents, and torn inputs, and pin
//! that the limits never reject the workspace's own well-formed output.

use proptest::prelude::*;
use serde::json::{parse, parse_with_limits, ParseLimits, Value, DEFAULT_MAX_DEPTH};

/// A document of exactly `depth` nested containers, alternating arrays
/// and objects so both recursion sites are exercised.
fn nested(depth: usize) -> String {
    let mut out = String::new();
    for level in 0..depth {
        if level % 2 == 0 {
            out.push('[');
        } else {
            out.push_str("{\"k\":");
        }
    }
    out.push('1');
    for level in (0..depth).rev() {
        if level % 2 == 0 {
            out.push(']');
        } else {
            out.push('}');
        }
    }
    out
}

#[test]
fn default_depth_limit_rejects_deep_nesting_without_overflow() {
    // Two orders of magnitude past the limit: would overflow the stack
    // unguarded, must simply return None guarded.
    for depth in [DEFAULT_MAX_DEPTH + 1, 10_000, 1_000_000] {
        let doc: String = "[".repeat(depth);
        assert_eq!(parse(&doc), None, "unterminated depth {depth}");
        let balanced = nested(depth);
        assert_eq!(parse(&balanced), None, "balanced depth {depth}");
    }
}

#[test]
fn default_depth_limit_is_exact() {
    assert!(parse(&nested(DEFAULT_MAX_DEPTH)).is_some());
    assert_eq!(parse(&nested(DEFAULT_MAX_DEPTH + 1)), None);
}

#[test]
fn zero_depth_falls_back_to_default() {
    let limits = ParseLimits {
        max_depth: 0,
        max_bytes: 0,
    };
    assert!(parse_with_limits(&nested(DEFAULT_MAX_DEPTH), limits).is_some());
    assert_eq!(
        parse_with_limits(&nested(DEFAULT_MAX_DEPTH + 1), limits),
        None
    );
}

#[test]
fn size_guard_rejects_oversized_documents() {
    let limits = ParseLimits {
        max_depth: 16,
        max_bytes: 64,
    };
    let small = "{\"k\":1}";
    assert!(parse_with_limits(small, limits).is_some());
    let big = format!("{{\"k\":\"{}\"}}", "x".repeat(128));
    assert_eq!(parse_with_limits(&big, limits), None);
    // The guard is on bytes received, before any parsing work: even a
    // syntactically broken oversized body is rejected by length alone.
    let garbage = "g".repeat(65);
    assert_eq!(parse_with_limits(&garbage, limits), None);
}

proptest! {
    #[test]
    fn depth_limit_is_a_sharp_boundary(depth in 1usize..300, limit in 1usize..300) {
        let limits = ParseLimits { max_depth: limit, max_bytes: 0 };
        let doc = nested(depth);
        let parsed = parse_with_limits(&doc, limits);
        if depth <= limit {
            prop_assert!(parsed.is_some(), "depth {} within limit {}", depth, limit);
        } else {
            prop_assert_eq!(parsed, None);
        }
    }

    #[test]
    fn size_limit_is_a_sharp_boundary(payload in 0usize..200, budget in 1usize..200) {
        let doc = format!("\"{}\"", "a".repeat(payload));
        let limits = ParseLimits { max_depth: 8, max_bytes: budget };
        let parsed = parse_with_limits(&doc, limits);
        if doc.len() <= budget {
            prop_assert_eq!(parsed, Some(Value::Str("a".repeat(payload))));
        } else {
            prop_assert_eq!(parsed, None);
        }
    }

    #[test]
    fn workspace_records_survive_the_default_limits(rows in 1usize..20, seed in 0u64..1000) {
        // Whatever the engine writes, the hardened default parse reads
        // back byte-identically — hardening must not break the journal.
        let values: Vec<f64> = (0..rows).map(|i| i as f64 + 0.5).collect();
        let doc = format!(
            "{{\"job_id\":\"{seed:x}\",\"seed\":{seed},\"properties\":[{{\"name\":\"eq\",\"values\":{}}}]}}",
            serde::Serialize::to_json(&values)
        );
        let v = parse(&doc);
        prop_assert!(v.is_some(), "rejected workspace output: {}", doc);
        prop_assert_eq!(v.unwrap().to_json(), doc);
    }

    #[test]
    fn truncated_deep_documents_never_panic(depth in 1usize..2000, cut in 0usize..4000) {
        // Torn prefixes of deep documents: parse must return (None or
        // Some) without panicking or overflowing, at any cut point.
        let doc = nested(depth);
        let cut = cut.min(doc.len());
        if doc.is_char_boundary(cut) {
            let _ = parse(&doc[..cut]);
        }
    }
}
