//! Property tests for checkpoint-journal replay.
//!
//! The journal's contract is *prefix-insensitivity*: whatever subset of
//! completed jobs made it to disk before a crash — in whatever order the
//! workers happened to append them — resuming and re-running produces the
//! same canonical record set as an uninterrupted sweep. The properties
//! here drive that with random subsets and permutations of a real
//! journal's lines, plus the cache interaction the engine must survive:
//! dropping every cached release while keeping journal-replayed vectors
//! valid.

use std::sync::OnceLock;

use anoncmp_engine::prelude::*;
use proptest::prelude::*;

/// A small, fast grid the fixture sweeps once.
fn small_grid() -> Vec<EvalJob> {
    [2usize, 4]
        .into_iter()
        .flat_map(|k| {
            [
                AlgorithmSpec::Datafly,
                AlgorithmSpec::Mondrian,
                AlgorithmSpec::TopDown,
            ]
            .into_iter()
            .map(move |algorithm| EvalJob {
                dataset: DatasetSpec::Census {
                    rows: 90,
                    seed: 17,
                    zip_pool: 10,
                },
                algorithm,
                k,
                max_suppression: 6,
                properties: vec![PropertySpec::EqClassSize, PropertySpec::IyengarUtility],
            })
        })
        .collect()
}

struct Fixture {
    jobs: Vec<EvalJob>,
    canonical: String,
    /// The complete journal's lines, one per completed job.
    journal_lines: Vec<String>,
}

/// Sweeps the grid once with a checkpoint journal attached and keeps the
/// journal's lines; every property case replays a different slice of it.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "anoncmp-journal-proptest-fixture-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let jobs = small_grid();
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        engine.checkpoint_to(&path).unwrap();
        let sweep = engine.run(&jobs);
        assert!(sweep.outcomes.iter().all(|o| o.record.status.is_ok()));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let journal_lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert_eq!(journal_lines.len(), jobs.len());
        Fixture {
            jobs,
            canonical: sweep.canonical_jsonl(),
            journal_lines,
        }
    })
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "anoncmp-journal-proptest-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&p).ok();
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any subset of the journal's lines, in any order, resumes to the
    /// same canonical record set: replayed jobs are served, missing ones
    /// recomputed, and the merge is indistinguishable from a clean run.
    #[test]
    fn any_journal_prefix_resumes_to_identical_records(
        subset in prop::sample::subsequence((0..6usize).collect::<Vec<_>>(), 0..=6),
        shuffle_seed in 0u64..1_000,
    ) {
        let fx = fixture();
        // Deterministically permute the chosen lines: worker scheduling
        // means journal order is arbitrary, and replay must not care.
        let mut picked: Vec<usize> = subset;
        let n = picked.len();
        for i in (1..n).rev() {
            let j = (shuffle_seed as usize)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i) % (i + 1);
            picked.swap(i, j);
        }

        let path = temp_journal("prefix");
        let mut text = String::new();
        for &ix in &picked {
            text.push_str(&fx.journal_lines[ix]);
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();

        let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
        let summary = engine.resume(&path).unwrap();
        prop_assert_eq!(summary.replayed, n);
        prop_assert_eq!(summary.dropped, 0);
        let sweep = engine.run(&fx.jobs);
        prop_assert_eq!(sweep.resumed, n);
        prop_assert_eq!(&sweep.canonical_jsonl(), &fx.canonical);
        std::fs::remove_file(&path).ok();
    }

    /// Replay is idempotent under duplication: journaling the same
    /// completed jobs twice (an append raced with a kill and re-ran, say)
    /// changes nothing.
    #[test]
    fn duplicated_journal_lines_are_harmless(dup_ix in 0usize..6) {
        let fx = fixture();
        let path = temp_journal("dup");
        let mut text = fx.journal_lines.join("\n");
        text.push('\n');
        text.push_str(&fx.journal_lines[dup_ix]);
        text.push('\n');
        std::fs::write(&path, text).unwrap();

        let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
        let summary = engine.resume(&path).unwrap();
        prop_assert_eq!(summary.replayed, fx.jobs.len());
        let sweep = engine.run(&fx.jobs);
        prop_assert_eq!(sweep.resumed, fx.jobs.len());
        prop_assert_eq!(&sweep.canonical_jsonl(), &fx.canonical);
        std::fs::remove_file(&path).ok();
    }
}

/// Journal-replayed property vectors must outlive the release cache:
/// `clear_releases` drops every cached table, but vectors reconstructed
/// from the journal (and the vector cache keyed by release content) stay
/// valid, so a post-resume, post-clear sweep still reports the same
/// vectors and records.
#[test]
fn replayed_vectors_survive_release_cache_clearing() {
    let fx = fixture();
    let path = temp_journal("cache-clear");
    let mut text = fx.journal_lines.join("\n");
    text.push('\n');
    std::fs::write(&path, text).unwrap();

    let engine = Engine::new(EngineConfig {
        jobs: 2,
        ..EngineConfig::default()
    });
    engine.resume(&path).unwrap();
    let first = engine.run(&fx.jobs);
    assert_eq!(first.resumed, fx.jobs.len());

    engine.clear_releases();
    let second = engine.run(&fx.jobs);
    assert_eq!(second.resumed, fx.jobs.len());
    assert_eq!(second.canonical_jsonl(), fx.canonical);
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.vectors, b.vectors, "vectors valid after clear_releases");
        assert!(!a.vectors.is_empty());
    }
    std::fs::remove_file(&path).ok();
}
