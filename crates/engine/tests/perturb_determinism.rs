//! Determinism guarantees for the perturbative wing, end to end:
//!
//! - a mixed generalization + perturbation sweep produces byte-identical
//!   canonical records at any engine worker count;
//! - `Engine::release_for` rematerializes a perturbative job's
//!   `Release::Numeric` with the same content digest as the in-sweep
//!   release (the family-aware regression the journal-replay path
//!   depends on);
//! - the sharded multi-process runner merges byte-identically across
//!   worker counts {1, 2, 4} when perturbative methods are in the grid.

use std::fs;
use std::path::PathBuf;

use anoncmp_core::wire::WireDataset;
use anoncmp_engine::dist::{self, DistConfig, GridSpec, WorkerCommand};
use anoncmp_engine::fingerprint::release_digest;
use anoncmp_engine::prelude::*;

/// Mixed-family jobs over one census dataset: two generalization
/// algorithms and three perturbative methods, judged on the numeric
/// properties both families can induce.
fn mixed_jobs() -> Vec<EvalJob> {
    ["datafly", "mondrian", "noise:0.05", "mdav:5", "rankswap:8"]
        .into_iter()
        .flat_map(|name| {
            [2usize, 4].into_iter().map(move |k| EvalJob {
                dataset: DatasetSpec::Census {
                    rows: 90,
                    seed: 171,
                    zip_pool: 9,
                },
                algorithm: AlgorithmSpec::by_name(name).expect("canonical wire name"),
                k,
                max_suppression: 4,
                properties: vec![PropertySpec::BoundedLoss, PropertySpec::NeighborhoodRisk],
            })
        })
        .collect()
}

fn engine_with_jobs(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs: workers,
        ..EngineConfig::default()
    })
}

#[test]
fn mixed_family_sweep_is_worker_count_independent() {
    let jobs = mixed_jobs();
    let serial = engine_with_jobs(1).run(&jobs);
    let parallel = engine_with_jobs(4).run(&jobs);
    assert_eq!(serial.canonical_jsonl(), parallel.canonical_jsonl());
    assert!(
        serial
            .outcomes
            .iter()
            .all(|o| o.record.status == JobStatus::Ok),
        "every mixed-family job must succeed: {:?}",
        serial
            .outcomes
            .iter()
            .map(|o| (&o.record.algorithm, &o.record.status))
            .collect::<Vec<_>>()
    );
}

#[test]
fn release_for_rematerializes_perturbative_releases() {
    let jobs = mixed_jobs();
    let engine = engine_with_jobs(2);
    let sweep = engine.run(&jobs);

    // A *fresh* engine (cold caches) must rematerialize every release —
    // both families — with the same content digest the sweep produced.
    let fresh = engine_with_jobs(1);
    for o in &sweep.outcomes {
        let in_sweep = o.release.as_ref().expect("Ok outcome carries release");
        let again = fresh
            .release_for(&o.job)
            .expect("release_for rematerializes both families");
        assert_eq!(
            release_digest(in_sweep),
            release_digest(&again),
            "{}",
            o.record.algorithm
        );
        if o.job.algorithm.perturb().is_some() {
            assert!(
                again.as_numeric().is_some(),
                "{} must rematerialize as Release::Numeric",
                o.record.algorithm
            );
            assert!(
                fresh.generalized_release_for(&o.job).is_none(),
                "the generalized narrowing must decline a perturbative job"
            );
        } else {
            assert!(again.as_generalized().is_some());
        }
    }
}

/// The dist grid: same slate, resolved through the wire-name path a
/// `anoncmp dist --algos` invocation uses.
fn perturb_grid(shards: usize) -> GridSpec {
    GridSpec {
        dataset: WireDataset::Census {
            rows: 70,
            seed: 171,
            zip_pool: 8,
        },
        algorithms: vec![
            "datafly".into(),
            "mondrian".into(),
            "noise:0.05".into(),
            "mdav:5".into(),
            "rankswap:8".into(),
        ],
        ks: vec![2, 3],
        max_suppression: 4,
        properties: vec!["bounded-loss".into()],
        root_seed: 0xED5B_2009,
        shards,
        engine_jobs: 1,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("anoncmp-perturb-dist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Worker entry point: re-executed by the supervisor as a child of this
/// very test binary (no-op without the supervisor's environment).
#[test]
fn dist_worker_entry() {
    dist::run_worker_from_env().expect("worker run succeeds");
}

#[test]
fn dist_merge_with_perturb_methods_is_byte_identical_for_worker_counts_1_2_4() {
    // Single-process ground truth, canonicalized exactly as the merge is.
    let jobs = perturb_grid(1).jobs().expect("grid expands");
    let journal = temp_dir("ref").with_extension("jsonl");
    let _ = fs::remove_file(&journal);
    let engine = engine_with_jobs(1);
    engine.checkpoint_to(&journal).expect("checkpoint journal");
    let sweep = engine.run(&jobs);
    assert!(sweep
        .outcomes
        .iter()
        .all(|o| o.record.status == JobStatus::Ok));
    engine.detach_journal();
    let replay = Journal::replay(&journal).expect("replay reference journal");
    let _ = fs::remove_file(&journal);
    let (canonical, merged, missing) = dist::canonical_journal(&jobs, &replay.completed);
    assert_eq!((merged, missing), (jobs.len(), 0));

    let worker = WorkerCommand::current_exe(vec![
        "dist_worker_entry".into(),
        "--exact".into(),
        "--test-threads=1".into(),
    ])
    .expect("current exe");
    for workers in [1usize, 2, 4] {
        let dir = temp_dir(&format!("workers-{workers}"));
        let spec = perturb_grid(4);
        let config = DistConfig::new(&dir, workers);
        let report = dist::run_supervisor(&spec, &config, &worker).expect("supervised run");
        assert_eq!(report.merge.missing, 0);
        assert_eq!(report.merge.merged, jobs.len());
        let text = fs::read_to_string(&report.merged_path).expect("read merged journal");
        assert_eq!(
            text, canonical,
            "{workers}-worker merged journal with perturbative methods must be \
             byte-identical to the single-process run"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
