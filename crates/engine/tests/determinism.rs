//! Integration tests for the engine's two load-bearing guarantees:
//!
//! 1. **Scheduling independence** — the same job list produces
//!    byte-identical canonical records whether it runs on one worker or
//!    eight, because per-job seeds derive from release content, not from
//!    submission index or scheduling order.
//! 2. **Memoization transparency** — a cache hit is observationally
//!    identical to a fresh computation: same anonymized table, same
//!    property vectors, same record.

use anoncmp_engine::prelude::*;
use anoncmp_microdata::csv::anonymized_to_csv;
use proptest::prelude::*;

/// A mixed grid: every standard algorithm at two k values, plus a
/// deliberately panicking job so the error path is part of the
/// determinism contract too.
fn mixed_grid() -> Vec<EvalJob> {
    let mut jobs: Vec<EvalJob> = [2usize, 5]
        .into_iter()
        .flat_map(|k| {
            AlgorithmSpec::standard_suite()
                .into_iter()
                .map(move |algorithm| EvalJob {
                    dataset: DatasetSpec::Census {
                        rows: 120,
                        seed: 41,
                        zip_pool: 12,
                    },
                    algorithm,
                    k,
                    max_suppression: 6,
                    properties: vec![PropertySpec::EqClassSize, PropertySpec::Discernibility],
                })
        })
        .collect();
    jobs.push(EvalJob {
        dataset: DatasetSpec::Census {
            rows: 120,
            seed: 41,
            zip_pool: 12,
        },
        algorithm: AlgorithmSpec::MockPanic,
        k: 2,
        max_suppression: 6,
        properties: vec![PropertySpec::EqClassSize],
    });
    jobs
}

fn engine_with_jobs(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs: workers,
        ..EngineConfig::default()
    })
}

#[test]
fn one_worker_and_eight_workers_yield_byte_identical_records() {
    let jobs = mixed_grid();
    let serial = engine_with_jobs(1).run(&jobs);
    let parallel = engine_with_jobs(8).run(&jobs);

    assert_eq!(serial.outcomes.len(), jobs.len());
    assert_eq!(serial.canonical_jsonl(), parallel.canonical_jsonl());

    // The panicking job is an error record, not a sweep abort.
    let last = &serial.outcomes.last().unwrap().record;
    assert!(matches!(last.status, JobStatus::Panicked { .. }));
    assert!(
        serial
            .outcomes
            .iter()
            .filter(|o| o.record.status.is_ok())
            .count()
            >= 14
    );
}

#[test]
fn streaming_output_is_worker_count_independent() {
    let jobs = mixed_grid();
    let mut buf1: Vec<u8> = Vec::new();
    let mut buf8: Vec<u8> = Vec::new();
    let _ = engine_with_jobs(1).run_streaming(&jobs, &mut buf1);
    let _ = engine_with_jobs(8).run_streaming(&jobs, &mut buf8);

    // Streamed lines carry wall-clock timings, so compare canonicalized.
    let canon = |buf: &[u8]| -> Vec<String> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .map(|l| {
                // duration_ms and cache_hit are the only non-deterministic
                // fields; strip them textually.
                let mut s = l.to_string();
                if let (Some(a), Some(b)) = (s.find("\"duration_ms\""), s.find("\"cache_hit\"")) {
                    let end = s[b..].find('}').map(|e| b + e).unwrap_or(s.len());
                    s.replace_range(a..end, "");
                }
                s
            })
            .collect()
    };
    assert_eq!(canon(&buf1).len(), jobs.len());
    assert_eq!(canon(&buf1), canon(&buf8));
}

#[test]
fn rerunning_a_sweep_is_served_from_cache_and_identical() {
    let jobs = mixed_grid();
    let engine = engine_with_jobs(4);
    let cold = engine.run(&jobs);
    let warm = engine.run(&jobs);

    assert_eq!(cold.canonical_jsonl(), warm.canonical_jsonl());
    // Every successful job in the warm sweep is a hit; failures are not
    // cached (a panic is recomputed, which is what you want when the
    // panic was environmental).
    let ok_jobs = warm
        .outcomes
        .iter()
        .filter(|o| o.record.status.is_ok())
        .count();
    assert!(warm.cache.hits >= ok_jobs as u64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    /// Cached and uncached evaluations of the same job are
    /// observationally identical: the anonymized table renders to the
    /// same CSV, the property vectors are equal, and the canonical
    /// records match — across random dataset sizes, seeds, k values,
    /// and (fast) algorithms.
    fn cached_run_equals_fresh_run(
        rows in 60usize..=120,
        seed in 0u64..1_000,
        k in 2usize..=5,
        algo_ix in 0usize..6,
    ) {
        let algorithm = [
            AlgorithmSpec::Datafly,
            AlgorithmSpec::Samarati,
            AlgorithmSpec::Incognito,
            AlgorithmSpec::Mondrian,
            AlgorithmSpec::Greedy,
            AlgorithmSpec::TopDown,
        ][algo_ix];
        let job = EvalJob {
            dataset: DatasetSpec::Census { rows, seed, zip_pool: 10 },
            algorithm,
            k,
            max_suppression: rows / 10,
            properties: vec![PropertySpec::EqClassSize, PropertySpec::BreachProbability],
        };

        // One engine runs the job twice (second time from cache); a
        // second engine computes it fresh with its own cache.
        let reused = engine_with_jobs(2);
        let first = reused.run(std::slice::from_ref(&job));
        let second = reused.run(std::slice::from_ref(&job));
        let fresh = engine_with_jobs(1).run(std::slice::from_ref(&job));

        let table_of = |sweep: &SweepResult| {
            sweep.outcomes[0]
                .release
                .as_ref()
                .and_then(|r| r.as_generalized())
                .map(anonymized_to_csv)
        };
        prop_assert_eq!(table_of(&first), table_of(&second));
        prop_assert_eq!(table_of(&first), table_of(&fresh));
        prop_assert_eq!(&first.outcomes[0].vectors, &second.outcomes[0].vectors);
        prop_assert_eq!(&first.outcomes[0].vectors, &fresh.outcomes[0].vectors);
        prop_assert_eq!(
            first.outcomes[0].record.canonical().to_jsonl(),
            fresh.outcomes[0].record.canonical().to_jsonl()
        );
        if first.outcomes[0].record.status.is_ok() {
            prop_assert!(second.outcomes[0].record.cache_hit);
        }
    }
}
