//! Integration tests for crash-safe resumable sweeps: a sweep killed
//! mid-journal (simulated by chaos-injected journal truncation) and then
//! resumed must produce a canonical record set byte-identical to an
//! uninterrupted run — at one worker and at eight — and chaos-faulted
//! sweeps must quarantine exactly the faulted jobs while every other
//! record matches a fault-free run.

use std::io::{self, Write};
use std::sync::Arc;
use std::time::Duration;

use anoncmp_engine::prelude::*;

/// A mixed grid: every standard algorithm at two k values, plus a
/// deliberately panicking job so the transient-failure path is exercised
/// alongside the checkpointed ones.
fn mixed_grid() -> Vec<EvalJob> {
    let mut jobs: Vec<EvalJob> = [2usize, 5]
        .into_iter()
        .flat_map(|k| {
            AlgorithmSpec::standard_suite()
                .into_iter()
                .map(move |algorithm| EvalJob {
                    dataset: DatasetSpec::Census {
                        rows: 120,
                        seed: 41,
                        zip_pool: 12,
                    },
                    algorithm,
                    k,
                    max_suppression: 6,
                    properties: vec![PropertySpec::EqClassSize, PropertySpec::Discernibility],
                })
        })
        .collect();
    jobs.push(EvalJob {
        dataset: DatasetSpec::Census {
            rows: 120,
            seed: 41,
            zip_pool: 12,
        },
        algorithm: AlgorithmSpec::MockPanic,
        k: 2,
        max_suppression: 6,
        properties: vec![PropertySpec::EqClassSize],
    });
    jobs
}

fn engine_with_jobs(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs: workers,
        ..EngineConfig::default()
    })
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "anoncmp-resume-test-{name}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&p).ok();
    p
}

/// A quarantine sink tests can read back after the engine is done with it.
struct SharedSink(Arc<parking_lot::Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The kill-and-resume contract, at both worker counts the acceptance
/// criteria name: the journal is torn mid-append after five checkpoints
/// (exactly what `kill -9` during a write leaves behind), and the
/// resumed run — a fresh engine, fresh caches, as after a real crash —
/// merges replayed and recomputed records into a canonical set
/// byte-identical to an uninterrupted sweep's.
#[test]
fn killed_mid_sweep_then_resumed_is_byte_identical() {
    let jobs = mixed_grid();
    for workers in [1usize, 8] {
        let baseline = engine_with_jobs(workers).run(&jobs);

        // "First process": checkpoint until chaos kills the journal
        // mid-append. The sweep itself still completes — a dead journal
        // never aborts work — but only five entries survive on disk,
        // followed by a torn line.
        let path = temp_path(&format!("kill-{workers}w"));
        let interrupted = engine_with_jobs(workers);
        interrupted.checkpoint_to(&path).unwrap();
        let mut chaos = ChaosConfig::seeded(7);
        chaos.panic_rate = 0.0;
        chaos.stall_rate = 0.0;
        chaos.truncate_journal_after = Some(5);
        interrupted.set_chaos(Some(chaos));
        interrupted.run(&jobs);

        // "Second process": resume heals the torn tail and replays the
        // five completed jobs; the sweep recomputes only the rest.
        let resumed_engine = engine_with_jobs(workers);
        let summary = resumed_engine.resume(&path).unwrap();
        assert_eq!(summary.replayed, 5, "five fsync'd checkpoints survive");
        assert_eq!(summary.dropped, 1, "the torn line is dropped");
        let resumed = resumed_engine.run(&jobs);
        assert_eq!(resumed.resumed, 5);
        assert_eq!(
            baseline.canonical_jsonl(),
            resumed.canonical_jsonl(),
            "resumed sweep at {workers} worker(s) must be byte-identical"
        );

        // The journal now holds every checkpointable job: a third run
        // recomputes nothing but the (never-journaled) panicking job.
        let third_engine = engine_with_jobs(workers);
        let complete = third_engine.resume(&path).unwrap();
        assert_eq!(complete.dropped, 0, "resume truncated the torn tail");
        let third = third_engine.run(&jobs);
        assert_eq!(third.resumed, jobs.len() - 1);
        assert_eq!(baseline.canonical_jsonl(), third.canonical_jsonl());

        std::fs::remove_file(&path).ok();
    }
}

/// Persistent chaos faults must quarantine exactly the faulted jobs —
/// with cause and full attempt history — while every non-faulted job's
/// record stays identical to a fault-free run.
#[test]
fn persistent_chaos_quarantines_exactly_the_faulted_jobs() {
    let jobs = mixed_grid();
    let clean = engine_with_jobs(4).run(&jobs);

    let mut chaos = ChaosConfig::persistent(2026);
    chaos.panic_rate = 0.10;
    chaos.stall_rate = 0.0; // stalls only fail under a budget; keep this pure
    let chaos_probe = chaos.clone();

    let engine = Engine::new(EngineConfig {
        jobs: 4,
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
        },
        chaos: Some(chaos),
        ..EngineConfig::default()
    });
    let buffer = Arc::new(parking_lot::Mutex::new(Vec::new()));
    engine.set_quarantine_sink(Some(Box::new(SharedSink(buffer.clone()))));
    let faulted = engine.run(&jobs);

    // The expected quarantine set is computable up front: chaos decisions
    // are pure in (seed, job content), plus the always-panicking mock.
    let expected: Vec<bool> = jobs
        .iter()
        .map(|j| {
            chaos_probe.is_faulted(j.release_fingerprint())
                || matches!(j.algorithm, AlgorithmSpec::MockPanic)
        })
        .collect();
    let expected_count = expected.iter().filter(|&&f| f).count() as u64;
    assert!(expected_count >= 1, "the seed must fault something");
    assert_eq!(faulted.quarantined, expected_count);

    for ((job, outcome), (clean_outcome, &is_faulted)) in jobs
        .iter()
        .zip(&faulted.outcomes)
        .zip(clean.outcomes.iter().zip(&expected))
    {
        if is_faulted {
            assert!(
                matches!(outcome.record.status, JobStatus::Panicked { .. }),
                "{} should have been chaos-panicked",
                job.algorithm.name()
            );
        } else {
            assert_eq!(
                outcome.record.canonical(),
                clean_outcome.record.canonical(),
                "non-faulted {} must match the fault-free run",
                job.algorithm.name()
            );
        }
    }

    // Quarantine entries carry the cause and the full attempt history.
    let text = String::from_utf8(buffer.lock().clone()).unwrap();
    let entries: Vec<serde::json::Value> = text
        .lines()
        .map(|l| serde::json::parse(l).expect("valid quarantine JSONL"))
        .collect();
    assert_eq!(entries.len(), expected_count as usize);
    for e in &entries {
        assert!(e.get("cause").unwrap().get("Panicked").is_some());
        let attempts = e.get("attempts").unwrap().as_array().unwrap();
        assert_eq!(attempts.len(), 1, "max_retries = 1 ⇒ one failed attempt");
    }
}

/// Transient chaos (each faulted job heals on retry) must leave no trace
/// in the records: with retries on, the sweep's canonical output is
/// byte-identical to a chaos-free run.
#[test]
fn transient_chaos_with_retries_leaves_records_unchanged() {
    let jobs = mixed_grid();
    let clean = engine_with_jobs(4).run(&jobs);

    let mut chaos = ChaosConfig::seeded(2026);
    chaos.panic_rate = 0.10;
    chaos.stall_rate = 0.0;
    let engine = Engine::new(EngineConfig {
        jobs: 4,
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
        },
        chaos: Some(chaos),
        ..EngineConfig::default()
    });
    let healed = engine.run(&jobs);
    assert_eq!(
        healed.quarantined, 1,
        "only the mock panic exhausts retries"
    );
    assert_eq!(clean.canonical_jsonl(), healed.canonical_jsonl());
}
