//! Typed evaluation-job specifications.
//!
//! An [`EvalJob`] is a *plain-data* description of one release to compute
//! and measure: which dataset to synthesize, which algorithm to run with
//! which privacy parameters, and which property vectors to extract from
//! the result. Plain data matters twice over: the engine's workers rebuild
//! algorithm instances from specs inside their own threads (the
//! [`Anonymizer`] trait objects are not `Send`), and the memoization cache
//! keys on the spec's content fingerprint rather than on object identity.

use std::sync::Arc;
use std::time::Duration;

use anoncmp_anonymize::prelude::{
    Anonymizer, Constraint, Datafly, Genetic, GeneticConfig, GreedyCluster, GreedyRecoder,
    Incognito, Mondrian, OptimalLattice, PerturbSpec, Result as AnonymizeResult, Samarati,
    SubsetIncognito, TopDown,
};
use anoncmp_core::prelude::{
    BoundedDistanceLoss, BreachProbability, Discernibility, DistinctSensitiveCount, EqClassSize,
    GeneralizationLoss, IyengarUtility, NeighborhoodRisk, Precision, Property, PropertyVector,
    SensitiveValueCount,
};
use anoncmp_datagen::census::{census_schema, generate, CensusConfig, CensusRows};
use anoncmp_datagen::healthcare::{
    generate_hospital, hospital_schema, HospitalConfig, HospitalRows,
};
use anoncmp_microdata::numeric::NumericRelease;
use anoncmp_microdata::prelude::{AnonymizedTable, ChunkStore, ChunkedCodec, Dataset, Value};
use serde::Serialize;

use crate::fingerprint::Fingerprinter;

/// Which dataset a job runs against.
///
/// Synthetic datasets are specified, not passed: the engine materializes
/// them on demand (and memoizes the result), so a spec can be
/// fingerprinted, serialized into an [`EvalRecord`], and compared across
/// processes. Externally loaded data (the CLI's CSV path) enters through
/// [`DatasetSpec::inline`], which fingerprints the dataset's *content* so
/// memoization stays sound.
///
/// [`EvalRecord`]: crate::record::EvalRecord
#[derive(Debug, Clone)]
pub enum DatasetSpec {
    /// The synthetic census microdata of the paper's experiments (§7).
    Census {
        /// Number of tuples.
        rows: usize,
        /// Generator seed.
        seed: u64,
        /// Number of distinct zip codes.
        zip_pool: usize,
    },
    /// The synthetic hospital-discharge dataset.
    Hospital {
        /// Number of discharge records.
        rows: usize,
        /// Generator seed.
        seed: u64,
    },
    /// An already-materialized dataset (e.g. loaded from CSV), keyed by a
    /// content fingerprint. Construct via [`DatasetSpec::inline`].
    Inline {
        /// Display label for records and reports.
        label: String,
        /// FNV-1a fingerprint of the dataset's schema and cell values.
        content_fingerprint: u64,
        /// The dataset itself.
        dataset: Arc<Dataset>,
    },
}

impl PartialEq for DatasetSpec {
    fn eq(&self, other: &Self) -> bool {
        let mut a = Fingerprinter::new();
        let mut b = Fingerprinter::new();
        self.fingerprint_into(&mut a);
        other.fingerprint_into(&mut b);
        a.finish() == b.finish()
    }
}

impl Eq for DatasetSpec {}

impl Serialize for DatasetSpec {
    fn serialize_json(&self, out: &mut String) {
        // Records only need an identifying description, not the data.
        self.label().serialize_json(out);
    }
}

impl DatasetSpec {
    /// Wraps an already-materialized dataset, fingerprinting its schema
    /// and every cell so that equal content yields equal cache keys.
    pub fn inline(label: impl Into<String>, dataset: Arc<Dataset>) -> Self {
        let mut f = Fingerprinter::new();
        let schema = dataset.schema();
        f.write_usize(dataset.len()).write_usize(schema.len());
        for attr in schema.attributes() {
            f.write_str(attr.name());
        }
        for row in 0..dataset.len() {
            for col in 0..schema.len() {
                match dataset.value(row, col) {
                    Value::Int(v) => f.write_u64(1).write_u64(*v as u64),
                    Value::Cat(c) => f.write_u64(2).write_u64(u64::from(*c)),
                };
            }
        }
        DatasetSpec::Inline {
            label: label.into(),
            content_fingerprint: f.finish(),
            dataset,
        }
    }

    /// A short human-readable label (used in reports and records).
    pub fn label(&self) -> String {
        match self {
            DatasetSpec::Census {
                rows,
                seed,
                zip_pool,
            } => {
                format!("census(rows={rows}, seed={seed}, zips={zip_pool})")
            }
            DatasetSpec::Hospital { rows, seed } => {
                format!("hospital(rows={rows}, seed={seed})")
            }
            DatasetSpec::Inline { label, .. } => label.clone(),
        }
    }

    /// The declared row count, without materializing anything. This is
    /// what admission control should consult: it is exact for synthetic
    /// specs and O(1) for inline ones.
    pub fn rows(&self) -> usize {
        match self {
            DatasetSpec::Census { rows, .. } | DatasetSpec::Hospital { rows, .. } => *rows,
            DatasetSpec::Inline { dataset, .. } => dataset.len(),
        }
    }

    /// Builds an out-of-core chunked codec for the spec without ever
    /// materializing the full dataset: synthetic specs stream their rows
    /// straight from the generator (peak memory O(chunk + classes)),
    /// inline specs re-stream the rows they already hold.
    pub fn chunked_codec(
        &self,
        chunk_rows: usize,
        store: ChunkStore,
    ) -> anoncmp_microdata::error::Result<ChunkedCodec> {
        self.chunked_codec_with_threads(chunk_rows, store, 1)
    }

    /// [`DatasetSpec::chunked_codec`] with an explicit intra-node thread
    /// budget: the build itself (dictionary collection and encode+flush)
    /// runs on up to `threads` workers, and the returned codec carries the
    /// budget for its later partition / extraction passes. Results are
    /// bit-identical at every thread count; `0` means one per CPU. The
    /// engine resolves the budget via
    /// [`Engine::chunked_codec_for`](crate::engine::Engine::chunked_codec_for)
    /// so job-level and chunk-level parallelism share the cores.
    pub fn chunked_codec_with_threads(
        &self,
        chunk_rows: usize,
        store: ChunkStore,
        threads: usize,
    ) -> anoncmp_microdata::error::Result<ChunkedCodec> {
        let codec = match self {
            DatasetSpec::Census {
                rows,
                seed,
                zip_pool,
            } => {
                let config = CensusConfig {
                    rows: *rows,
                    seed: *seed,
                    zip_pool: *zip_pool,
                };
                ChunkedCodec::from_rows_parallel(
                    census_schema(config.zip_pool),
                    || CensusRows::new(&config),
                    chunk_rows,
                    store,
                    threads,
                )
            }
            DatasetSpec::Hospital { rows, seed } => {
                let config = HospitalConfig {
                    rows: *rows,
                    seed: *seed,
                };
                ChunkedCodec::from_rows_parallel(
                    hospital_schema(),
                    || HospitalRows::new(&config),
                    chunk_rows,
                    store,
                    threads,
                )
            }
            DatasetSpec::Inline { dataset, .. } => {
                ChunkedCodec::from_dataset_in(dataset, chunk_rows, store)
            }
        }?;
        codec.set_threads(threads);
        Ok(codec)
    }

    /// Synthesizes (or unwraps) the dataset. Deterministic in the spec.
    pub fn materialize(&self) -> Arc<Dataset> {
        match self {
            DatasetSpec::Census {
                rows,
                seed,
                zip_pool,
            } => generate(&CensusConfig {
                rows: *rows,
                seed: *seed,
                zip_pool: *zip_pool,
            }),
            DatasetSpec::Hospital { rows, seed } => generate_hospital(&HospitalConfig {
                rows: *rows,
                seed: *seed,
            }),
            DatasetSpec::Inline { dataset, .. } => dataset.clone(),
        }
    }

    /// Absorbs the spec into a fingerprint.
    pub(crate) fn fingerprint_into(&self, f: &mut Fingerprinter) {
        match self {
            DatasetSpec::Census {
                rows,
                seed,
                zip_pool,
            } => {
                f.write_str("census")
                    .write_usize(*rows)
                    .write_u64(*seed)
                    .write_usize(*zip_pool);
            }
            DatasetSpec::Hospital { rows, seed } => {
                f.write_str("hospital").write_usize(*rows).write_u64(*seed);
            }
            DatasetSpec::Inline {
                content_fingerprint,
                ..
            } => {
                f.write_str("inline").write_u64(*content_fingerprint);
            }
        }
    }
}

/// Which anonymization algorithm a job runs.
///
/// Mirrors the eight-candidate suite of the paper study, plus the
/// perturbative wing ([`AlgorithmSpec::Perturb`]) and two mock algorithms
/// used to exercise the engine's failure paths in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// Sweeney's greedy full-domain generalizer.
    Datafly,
    /// Samarati's binary search over the generalization lattice.
    Samarati,
    /// LeFevre et al.'s bottom-up lattice search.
    Incognito,
    /// LeFevre et al.'s multidimensional median partitioner.
    Mondrian,
    /// The greedy cell-level recoder.
    Greedy,
    /// The single-objective genetic lattice search; its RNG is seeded from
    /// the engine's derived per-job seed.
    Genetic,
    /// Fung & Wang's top-down specialization.
    TopDown,
    /// The greedy k-member clustering anonymizer.
    Clustering,
    /// Incognito restricted to quasi-identifier subsets.
    SubsetIncognito,
    /// Exhaustive optimal lattice search (small lattices only).
    Optimal,
    /// A perturbative method (noise, rank swap, microaggregation, RWN):
    /// produces a [`NumericRelease`] over the dataset's numeric
    /// quasi-identifiers instead of a generalized table. The engine
    /// dispatches these through [`PerturbSpec::apply`], never through
    /// [`AlgorithmSpec::instantiate`].
    Perturb(PerturbSpec),
    /// Test-only: panics partway through `anonymize` to exercise the
    /// engine's `catch_unwind` isolation.
    MockPanic,
    /// Test-only: sleeps for the given number of milliseconds before
    /// delegating to [`Datafly`], to exercise the wall-clock budget.
    MockSleep {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

impl AlgorithmSpec {
    /// The suite of the paper's comparison study, in report order.
    pub fn standard_suite() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::Datafly,
            AlgorithmSpec::Samarati,
            AlgorithmSpec::Incognito,
            AlgorithmSpec::Mondrian,
            AlgorithmSpec::Greedy,
            AlgorithmSpec::Genetic,
            AlgorithmSpec::TopDown,
            AlgorithmSpec::Clustering,
        ]
    }

    /// The algorithm's display name (matches `Anonymizer::name`).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::Datafly => "datafly",
            AlgorithmSpec::Samarati => "samarati",
            AlgorithmSpec::Incognito => "incognito",
            AlgorithmSpec::Mondrian => "mondrian",
            AlgorithmSpec::Greedy => "greedy",
            AlgorithmSpec::Genetic => "genetic",
            AlgorithmSpec::TopDown => "top-down",
            AlgorithmSpec::Clustering => "clustering",
            AlgorithmSpec::SubsetIncognito => "subset-incognito",
            AlgorithmSpec::Optimal => "optimal",
            AlgorithmSpec::Perturb(spec) => spec.method.family(),
            AlgorithmSpec::MockPanic => "mock-panic",
            AlgorithmSpec::MockSleep { .. } => "mock-sleep",
        }
    }

    /// The algorithm's fully parameterized display label: the wire name
    /// for perturbative methods (`noise:0.05`, `mdav:5`, …) and the plain
    /// [`AlgorithmSpec::name`] otherwise. This is what [`EvalRecord`]s
    /// and reports show, and what [`AlgorithmSpec::by_name`] resolves.
    ///
    /// [`EvalRecord`]: crate::record::EvalRecord
    pub fn label(&self) -> String {
        match self {
            AlgorithmSpec::Perturb(spec) => spec.wire_name(),
            other => other.name().to_owned(),
        }
    }

    /// The perturbative spec, when this is a perturbative method.
    pub fn perturb(&self) -> Option<PerturbSpec> {
        match self {
            AlgorithmSpec::Perturb(spec) => Some(*spec),
            _ => None,
        }
    }

    /// Resolves a display name back to its spec: one of the ten public
    /// generalization algorithms, or a perturbative wire name such as
    /// `noise:0.05` / `rankswap:8` / `mdav:5`. Mock/testing algorithms
    /// are deliberately unresolvable: anything that builds grids from
    /// external input (the serve daemon, dist grid specs) must not be
    /// able to name them.
    pub fn by_name(name: &str) -> Option<AlgorithmSpec> {
        const PUBLIC: [AlgorithmSpec; 10] = [
            AlgorithmSpec::Datafly,
            AlgorithmSpec::Samarati,
            AlgorithmSpec::Incognito,
            AlgorithmSpec::Mondrian,
            AlgorithmSpec::Greedy,
            AlgorithmSpec::Genetic,
            AlgorithmSpec::TopDown,
            AlgorithmSpec::Clustering,
            AlgorithmSpec::SubsetIncognito,
            AlgorithmSpec::Optimal,
        ];
        PUBLIC
            .into_iter()
            .find(|spec| spec.name() == name)
            .or_else(|| PerturbSpec::parse(name).map(AlgorithmSpec::Perturb))
    }

    /// Builds a runnable algorithm instance. `seed` is the engine-derived
    /// per-job seed; only stochastic algorithms consume it.
    ///
    /// # Panics
    /// On [`AlgorithmSpec::Perturb`]: perturbative methods do not emit an
    /// [`AnonymizedTable`] and are applied via [`PerturbSpec::apply`]
    /// instead — the engine dispatches on [`AlgorithmSpec::perturb`]
    /// before ever instantiating.
    pub fn instantiate(&self, seed: u64) -> Box<dyn Anonymizer> {
        match *self {
            AlgorithmSpec::Datafly => Box::new(Datafly),
            AlgorithmSpec::Samarati => Box::new(Samarati::default()),
            AlgorithmSpec::Incognito => Box::new(Incognito::default()),
            AlgorithmSpec::Mondrian => Box::new(Mondrian),
            AlgorithmSpec::Greedy => Box::new(GreedyRecoder::default()),
            AlgorithmSpec::Genetic => {
                let mut genetic = Genetic::default();
                genetic.config = GeneticConfig {
                    seed,
                    ..genetic.config
                };
                Box::new(genetic)
            }
            AlgorithmSpec::TopDown => Box::new(TopDown::default()),
            AlgorithmSpec::Clustering => Box::new(GreedyCluster),
            AlgorithmSpec::SubsetIncognito => Box::new(SubsetIncognito::default()),
            AlgorithmSpec::Optimal => Box::new(OptimalLattice::default()),
            AlgorithmSpec::Perturb(spec) => unreachable!(
                "{} is perturbative: apply via PerturbSpec::apply, not Anonymizer",
                spec.wire_name()
            ),
            AlgorithmSpec::MockPanic => Box::new(MockPanic),
            AlgorithmSpec::MockSleep { millis } => Box::new(MockSleep { millis }),
        }
    }

    /// Absorbs the spec into a fingerprint.
    pub(crate) fn fingerprint_into(&self, f: &mut Fingerprinter) {
        f.write_str(self.name());
        match self {
            AlgorithmSpec::MockSleep { millis } => {
                f.write_u64(*millis);
            }
            AlgorithmSpec::Perturb(spec) => {
                // The family is already in the name; the parameter
                // completes the spec.
                f.write_u64(u64::from(spec.param));
            }
            _ => {}
        }
    }
}

impl Serialize for AlgorithmSpec {
    fn serialize_json(&self, out: &mut String) {
        // Records and reports identify algorithms by their parameterized
        // label (`noise:0.05`), matching what `by_name` resolves.
        self.label().serialize_json(out);
    }
}

/// Which property vector to extract from a release (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PropertySpec {
    /// Size of each tuple's equivalence class.
    EqClassSize,
    /// Per-tuple disclosure-risk complement.
    BreachProbability,
    /// Iyengar's per-tuple utility (paper parameterization).
    IyengarUtility,
    /// Negated classic generalization loss.
    GeneralizationLoss,
    /// Per-tuple generalization precision.
    Precision,
    /// Negated per-tuple discernibility penalty.
    Discernibility,
    /// Count of the tuple's own sensitive value inside its class.
    SensitiveValueCount,
    /// Distinct sensitive values inside the tuple's class.
    DistinctSensitiveCount,
    /// Standardized-Euclidean k-nearest-neighbor disclosure risk
    /// (numeric; runs on both release families).
    NeighborhoodRisk,
    /// Mahalanobis k-nearest-neighbor disclosure risk (numeric; runs on
    /// both release families).
    MahalanobisRisk,
    /// Chaibub Neto's bounded distance-based information loss (numeric;
    /// runs on both release families).
    BoundedLoss,
}

impl PropertySpec {
    /// Builds the property extractor.
    pub fn instantiate(&self) -> Box<dyn Property> {
        match self {
            PropertySpec::EqClassSize => Box::new(EqClassSize),
            PropertySpec::BreachProbability => Box::new(BreachProbability),
            PropertySpec::IyengarUtility => Box::new(IyengarUtility::paper()),
            PropertySpec::GeneralizationLoss => Box::new(GeneralizationLoss::classic()),
            PropertySpec::Precision => Box::new(Precision),
            PropertySpec::Discernibility => Box::new(Discernibility),
            PropertySpec::SensitiveValueCount => Box::new(SensitiveValueCount { column: None }),
            PropertySpec::DistinctSensitiveCount => {
                Box::new(DistinctSensitiveCount { column: None })
            }
            PropertySpec::NeighborhoodRisk => Box::new(NeighborhoodRisk::standard()),
            PropertySpec::MahalanobisRisk => Box::new(NeighborhoodRisk::mahalanobis()),
            PropertySpec::BoundedLoss => Box::new(BoundedDistanceLoss),
        }
    }

    /// Whether this property is numeric-native: it has an
    /// [`PropertySpec::extract_numeric`] fast path and runs on both
    /// release families. Classic (generalization-structure) properties
    /// return `false` — on a perturbative release they are meaningless
    /// and the engine fails such jobs cleanly instead of extracting.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            PropertySpec::NeighborhoodRisk
                | PropertySpec::MahalanobisRisk
                | PropertySpec::BoundedLoss
        )
    }

    /// Extracts the property from a numeric release via its fast
    /// column-slice path. `None` for classic properties, which have no
    /// numeric-release semantics.
    pub fn extract_numeric(&self, release: &NumericRelease) -> Option<PropertyVector> {
        match self {
            PropertySpec::NeighborhoodRisk => {
                Some(NeighborhoodRisk::standard().extract_numeric(release))
            }
            PropertySpec::MahalanobisRisk => {
                Some(NeighborhoodRisk::mahalanobis().extract_numeric(release))
            }
            PropertySpec::BoundedLoss => Some(BoundedDistanceLoss.extract_numeric(release)),
            _ => None,
        }
    }

    /// The extractor's stable tag, used for fingerprinting, as the
    /// property half of the vector-cache key, and as the property's wire
    /// name in serve requests.
    pub fn tag(&self) -> &'static str {
        match self {
            PropertySpec::EqClassSize => "eq-class-size",
            PropertySpec::BreachProbability => "breach-probability",
            PropertySpec::IyengarUtility => "iyengar-utility",
            PropertySpec::GeneralizationLoss => "generalization-loss",
            PropertySpec::Precision => "precision",
            PropertySpec::Discernibility => "discernibility",
            PropertySpec::SensitiveValueCount => "sensitive-value-count",
            PropertySpec::DistinctSensitiveCount => "distinct-sensitive-count",
            PropertySpec::NeighborhoodRisk => "neighborhood-risk",
            PropertySpec::MahalanobisRisk => "mahalanobis-risk",
            PropertySpec::BoundedLoss => "bounded-loss",
        }
    }

    /// Resolves a stable tag back to its spec.
    pub fn by_tag(tag: &str) -> Option<PropertySpec> {
        const ALL: [PropertySpec; 11] = [
            PropertySpec::EqClassSize,
            PropertySpec::BreachProbability,
            PropertySpec::IyengarUtility,
            PropertySpec::GeneralizationLoss,
            PropertySpec::Precision,
            PropertySpec::Discernibility,
            PropertySpec::SensitiveValueCount,
            PropertySpec::DistinctSensitiveCount,
            PropertySpec::NeighborhoodRisk,
            PropertySpec::MahalanobisRisk,
            PropertySpec::BoundedLoss,
        ];
        ALL.into_iter().find(|spec| spec.tag() == tag)
    }
}

/// One unit of engine work: anonymize a dataset under a constraint and
/// extract the requested property vectors.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalJob {
    /// Dataset to synthesize.
    pub dataset: DatasetSpec,
    /// Algorithm to run.
    pub algorithm: AlgorithmSpec,
    /// The k of k-anonymity.
    pub k: usize,
    /// Maximum tuples the algorithm may suppress.
    pub max_suppression: usize,
    /// Property vectors to extract from the release.
    pub properties: Vec<PropertySpec>,
}

impl EvalJob {
    /// The privacy constraint this job anonymizes under.
    pub fn constraint(&self) -> Constraint {
        Constraint::k_anonymity(self.k).with_suppression(self.max_suppression)
    }

    /// Fingerprint of the *release* this job computes — dataset ×
    /// algorithm × privacy parameters, excluding the requested properties
    /// (property extraction is a cheap pure function of the release, so
    /// jobs that differ only in properties share a cache entry). This is
    /// the memoization key, and the per-job seed derives from it, which is
    /// what makes caching sound: two jobs with equal keys also run with
    /// equal seeds, so the cached release is exactly what a fresh run
    /// would have produced.
    pub fn release_fingerprint(&self) -> u64 {
        let mut f = Fingerprinter::new();
        self.dataset.fingerprint_into(&mut f);
        self.algorithm.fingerprint_into(&mut f);
        f.write_usize(self.k).write_usize(self.max_suppression);
        f.finish()
    }

    /// Fingerprint of the whole job, including requested properties. Used
    /// to deduplicate identical jobs within one sweep.
    pub fn job_fingerprint(&self) -> u64 {
        let mut f = Fingerprinter::new();
        f.write_u64(self.release_fingerprint());
        f.write_usize(self.properties.len());
        for p in &self.properties {
            f.write_str(p.tag());
        }
        f.finish()
    }
}

/// Test-only anonymizer that always panics (see [`AlgorithmSpec::MockPanic`]).
struct MockPanic;

impl Anonymizer for MockPanic {
    fn name(&self) -> String {
        "mock-panic".into()
    }

    fn anonymize(
        &self,
        _dataset: &Arc<Dataset>,
        _constraint: &Constraint,
    ) -> AnonymizeResult<AnonymizedTable> {
        panic!("mock-panic: deliberate failure injected for engine tests");
    }
}

/// Test-only anonymizer that stalls before delegating to Datafly (see
/// [`AlgorithmSpec::MockSleep`]).
struct MockSleep {
    millis: u64,
}

impl Anonymizer for MockSleep {
    fn name(&self) -> String {
        "mock-sleep".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> AnonymizeResult<AnonymizedTable> {
        std::thread::sleep(Duration::from_millis(self.millis));
        Datafly.anonymize(dataset, constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(algorithm: AlgorithmSpec, k: usize) -> EvalJob {
        EvalJob {
            dataset: DatasetSpec::Census {
                rows: 100,
                seed: 7,
                zip_pool: 10,
            },
            algorithm,
            k,
            max_suppression: 5,
            properties: vec![PropertySpec::EqClassSize],
        }
    }

    #[test]
    fn suite_matches_the_paper_study() {
        let names: Vec<&str> = AlgorithmSpec::standard_suite()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(
            names,
            [
                "datafly",
                "samarati",
                "incognito",
                "mondrian",
                "greedy",
                "genetic",
                "top-down",
                "clustering"
            ]
        );
    }

    #[test]
    fn spec_names_match_instances() {
        for spec in AlgorithmSpec::standard_suite() {
            assert_eq!(spec.instantiate(1).name(), spec.name());
        }
    }

    #[test]
    fn release_fingerprint_ignores_properties() {
        let a = job(AlgorithmSpec::Datafly, 3);
        let mut b = a.clone();
        b.properties = vec![PropertySpec::EqClassSize, PropertySpec::Precision];
        assert_eq!(a.release_fingerprint(), b.release_fingerprint());
        assert_ne!(a.job_fingerprint(), b.job_fingerprint());
    }

    #[test]
    fn fingerprint_separates_parameters() {
        let base = job(AlgorithmSpec::Datafly, 3);
        assert_ne!(
            base.release_fingerprint(),
            job(AlgorithmSpec::Datafly, 4).release_fingerprint()
        );
        assert_ne!(
            base.release_fingerprint(),
            job(AlgorithmSpec::Mondrian, 3).release_fingerprint()
        );
    }

    #[test]
    fn perturb_specs_resolve_by_wire_name() {
        for name in [
            "noise:0.05",
            "cnoise:0.1",
            "rankswap:8",
            "microagg:5",
            "mdav:4",
            "rwn:10",
        ] {
            let spec = AlgorithmSpec::by_name(name).expect(name);
            assert_eq!(spec.label(), name);
            assert!(spec.perturb().is_some());
        }
        // Mocks stay unresolvable; unknown perturb families too.
        assert!(AlgorithmSpec::by_name("mock-panic").is_none());
        assert!(AlgorithmSpec::by_name("swap:3").is_none());
    }

    #[test]
    fn perturb_fingerprints_separate_method_and_parameter() {
        let noise5 = job(AlgorithmSpec::Perturb(PerturbSpec::noise(0.05)), 3);
        let noise10 = job(AlgorithmSpec::Perturb(PerturbSpec::noise(0.1)), 3);
        let cnoise5 = job(
            AlgorithmSpec::Perturb(PerturbSpec::correlated_noise(0.05)),
            3,
        );
        assert_ne!(noise5.release_fingerprint(), noise10.release_fingerprint());
        assert_ne!(noise5.release_fingerprint(), cnoise5.release_fingerprint());
        assert_eq!(
            noise5.release_fingerprint(),
            job(AlgorithmSpec::Perturb(PerturbSpec::noise(0.05)), 3).release_fingerprint()
        );
    }

    #[test]
    fn numeric_property_tags_round_trip() {
        for spec in [
            PropertySpec::NeighborhoodRisk,
            PropertySpec::MahalanobisRisk,
            PropertySpec::BoundedLoss,
        ] {
            assert!(spec.is_numeric());
            assert_eq!(PropertySpec::by_tag(spec.tag()), Some(spec));
            // The instantiated Property agrees on the name/tag.
            assert_eq!(spec.instantiate().name(), spec.tag());
        }
        assert!(!PropertySpec::EqClassSize.is_numeric());
    }

    #[test]
    fn inline_specs_fingerprint_by_content() {
        let gen = DatasetSpec::Census {
            rows: 40,
            seed: 9,
            zip_pool: 6,
        };
        let a = DatasetSpec::inline("a.csv", gen.materialize());
        let b = DatasetSpec::inline("b.csv", gen.materialize());
        // Same content, different labels: equal specs (labels are display
        // metadata, not identity).
        assert_eq!(a, b);
        let c = DatasetSpec::inline(
            "c.csv",
            DatasetSpec::Census {
                rows: 40,
                seed: 10,
                zip_pool: 6,
            }
            .materialize(),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn declared_rows_need_no_materialization() {
        let census = DatasetSpec::Census {
            rows: 1_000_000,
            seed: 1,
            zip_pool: 10,
        };
        assert_eq!(census.rows(), 1_000_000);
        let hospital = DatasetSpec::Hospital { rows: 42, seed: 1 };
        assert_eq!(hospital.rows(), 42);
        let inline = DatasetSpec::inline(
            "x",
            DatasetSpec::Census {
                rows: 30,
                seed: 2,
                zip_pool: 5,
            }
            .materialize(),
        );
        assert_eq!(inline.rows(), 30);
    }

    #[test]
    fn chunked_codec_matches_materialized_codec() {
        use anoncmp_microdata::prelude::GenCodec;
        for spec in [
            DatasetSpec::Census {
                rows: 120,
                seed: 5,
                zip_pool: 10,
            },
            DatasetSpec::Hospital { rows: 90, seed: 3 },
        ] {
            let node: Vec<usize> = match &spec {
                DatasetSpec::Census { .. } => vec![2, 2, 1, 1, 1, 0],
                _ => vec![2, 2, 1, 1],
            };
            let expected = GenCodec::new(&spec.materialize())
                .unwrap()
                .partition(&node)
                .unwrap();
            let chunked = spec.chunked_codec(37, ChunkStore::Memory).unwrap();
            assert_eq!(chunked.rows(), spec.rows());
            let got = chunked.partition(&node).unwrap();
            assert_eq!(got.sizes(), expected.sizes(), "{}", spec.label());
            assert_eq!(
                got.representatives(),
                expected.representatives(),
                "{}",
                spec.label()
            );
        }
    }

    #[test]
    fn dataset_materialization_is_deterministic() {
        let spec = DatasetSpec::Census {
            rows: 50,
            seed: 11,
            zip_pool: 8,
        };
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 50);
    }
}
