//! The sweep executor: worker pool, memoization, and record collection.
//!
//! # Execution model
//!
//! [`Engine::run`] deduplicates the submitted jobs by content fingerprint,
//! feeds the unique ones into a crossbeam channel shared by `--jobs N`
//! worker threads (a shared channel *is* work stealing: idle workers pull
//! the next pending job), and collects `(index, outcome)` pairs back on
//! the submitting thread, which restores submission order and streams
//! JSONL records to an optional sink.
//!
//! # Determinism
//!
//! Three choices make a sweep's output independent of scheduling:
//!
//! 1. per-job seeds derive from `(root_seed, release fingerprint)` — never
//!    from a job's position or the thread that runs it;
//! 2. outcomes are re-ordered to submission order before they are
//!    returned or written;
//! 3. records expose scheduling-dependent observations (`duration_ms`,
//!    `cache_hit`) as fields that [`EvalRecord::canonical`] strips.
//!
//! # Robustness
//!
//! Worker bodies run the algorithm under `catch_unwind`, and optionally
//! under a wall-clock budget (the job then runs on a watchdog thread and
//! is abandoned on timeout — the thread is detached and leaked, which is
//! the only portable way to bound safe-but-runaway Rust code). Either
//! failure becomes an error [`EvalRecord`]; the sweep always completes.

use std::collections::HashMap;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use anoncmp_anonymize::prelude::Result as AnonymizeResult;
use anoncmp_core::prelude::PropertyVector;
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::AnonymizedTable;

use crate::cache::{CacheStats, MemoCache};
use crate::fingerprint::{derive_seed, fingerprint_release, hex_id, Fingerprinter};
use crate::job::EvalJob;
use crate::record::{EvalRecord, JobStatus, PropertySummary, ReleaseMetrics};

/// Construction-time engine settings.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Root seed all per-job seeds derive from.
    pub root_seed: u64,
    /// Optional per-job wall-clock budget.
    pub budget: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // The default root seed is shared by every consumer of
        // `Engine::global()`, which is what lets E16 reuse releases first
        // computed by E13: equal specs + equal root seed = equal cache keys.
        EngineConfig {
            jobs: 0,
            root_seed: 0xED5B_2009,
            budget: None,
        }
    }
}

/// The result of one executed (or cache-served) job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: EvalJob,
    /// The machine-readable record.
    pub record: EvalRecord,
    /// The release, when the job succeeded.
    pub table: Option<Arc<AnonymizedTable>>,
    /// The extracted property vectors, in requested order.
    pub vectors: Vec<PropertyVector>,
}

/// The result of a whole sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Release-cache activity attributable to this sweep.
    pub cache: CacheStats,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepResult {
    /// The sweep's records as canonical JSONL (one line per job, in
    /// submission order, scheduling-dependent fields stripped). Two runs
    /// of the same jobs under the same root seed yield byte-identical
    /// output here, whatever `--jobs` was.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.record.canonical().to_jsonl());
            out.push('\n');
        }
        out
    }

    /// A one-line cache summary for reports. Contains no
    /// scheduling-dependent values, so it is safe to embed in output that
    /// determinism tests compare.
    pub fn cache_summary(&self) -> String {
        format!(
            "engine cache: {} hit(s), {} miss(es) this sweep",
            self.cache.hits, self.cache.misses
        )
    }
}

/// The parallel, memoizing sweep executor.
pub struct Engine {
    cache: MemoCache,
    root_seed: u64,
    budget: Option<Duration>,
    jobs: AtomicUsize,
    /// Optional process-level record sink (the CLI's `--out` JSONL file);
    /// every sweep appends its records here in submission order.
    sink: parking_lot::Mutex<Option<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("root_seed", &self.root_seed)
            .field("budget", &self.budget)
            .field("jobs", &self.jobs)
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl Engine {
    /// A fresh engine with its own empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            cache: MemoCache::new(),
            root_seed: config.root_seed,
            budget: config.budget,
            jobs: AtomicUsize::new(config.jobs),
            sink: parking_lot::Mutex::new(None),
        }
    }

    /// The process-wide shared engine. Experiments that run in the same
    /// process share its cache, so a release computed for one experiment
    /// (say E13's k = 5 sweep) is a cache hit for the next (E16's
    /// agreement tournament over the same grid point).
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(|| Engine::new(EngineConfig::default()))
    }

    /// Sets the worker count (`0` = one per available CPU).
    pub fn set_jobs(&self, jobs: usize) {
        self.jobs.store(jobs, Ordering::Relaxed);
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        match self.jobs.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Current cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative vector-cache `(hits, misses)`. Scheduling-dependent
    /// (racing workers can both miss), so not part of [`CacheStats`] or
    /// any determinism-compared report.
    pub fn vector_cache_stats(&self) -> (u64, u64) {
        self.cache.vector_stats()
    }

    /// Drops all cached artifacts (mainly for tests).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Drops cached releases but keeps materialized datasets (benchmarks).
    pub fn clear_releases(&self) {
        self.cache.clear_releases();
    }

    /// Installs (or removes) a process-level record sink; every subsequent
    /// sweep appends its records to it as JSONL, in submission order. This
    /// backs the CLI's `--out <path>` flag.
    pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.sink.lock() = sink;
    }

    /// Runs a sweep, returning outcomes in submission order.
    pub fn run(&self, jobs: &[EvalJob]) -> SweepResult {
        self.run_sweep(jobs, None).expect("no sink, no io")
    }

    /// Runs a sweep, streaming each record to `sink` as one JSONL line as
    /// soon as it and all earlier-submitted records are known (records
    /// appear in submission order).
    pub fn run_streaming(&self, jobs: &[EvalJob], sink: &mut dyn Write) -> io::Result<SweepResult> {
        self.run_sweep(jobs, Some(sink))
    }

    fn run_sweep(
        &self,
        jobs: &[EvalJob],
        mut sink: Option<&mut dyn Write>,
    ) -> io::Result<SweepResult> {
        let started = Instant::now();
        let stats_before = self.cache.stats();

        // Deduplicate identical jobs: the first occurrence executes, later
        // ones alias its outcome. `primary[i]` is the unique-slot index of
        // submitted job `i`.
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut primary: Vec<usize> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let fp = job.job_fingerprint();
            let slot = *slot_of.entry(fp).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            primary.push(slot);
        }

        // Materialize each distinct dataset once, up front. Workers would
        // otherwise race through `dataset_or_insert_with` (which builds
        // outside the lock) and synthesize the same dataset N times.
        let mut seen_datasets: HashMap<u64, ()> = HashMap::new();
        for &i in &unique {
            let mut ds_fp = Fingerprinter::new();
            jobs[i].dataset.fingerprint_into(&mut ds_fp);
            let fp = ds_fp.finish();
            if seen_datasets.insert(fp, ()).is_none() {
                self.cache
                    .dataset_or_insert_with(fp, || jobs[i].dataset.materialize());
            }
        }

        let worker_count = self.jobs().min(unique.len()).max(1);
        let mut slots: Vec<Option<JobOutcome>> = (0..unique.len()).map(|_| None).collect();

        if !unique.is_empty() {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
            let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, JobOutcome)>();
            for slot in 0..unique.len() {
                task_tx.send(slot).expect("queueing tasks");
            }
            drop(task_tx);

            std::thread::scope(|scope| {
                for _ in 0..worker_count {
                    let task_rx = task_rx.clone();
                    let done_tx = done_tx.clone();
                    let unique = &unique;
                    scope.spawn(move || {
                        while let Ok(slot) = task_rx.recv() {
                            let outcome = self.execute(&jobs[unique[slot]]);
                            if done_tx.send((slot, outcome)).is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(done_tx);
                for (slot, outcome) in done_rx.iter() {
                    slots[slot] = Some(outcome);
                }
            });
        }

        // Restore submission order, aliasing duplicates to their primary
        // outcome, and stream the in-order records.
        let mut engine_sink = self.sink.lock();
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let src = slots[primary[i]].as_ref().expect("every slot resolved");
            let mut outcome = src.clone();
            outcome.job = job.clone();
            if unique[primary[i]] != i {
                // An alias never re-ran anything; mark it as served from
                // the sweep's own working set.
                outcome.record.cache_hit = true;
                outcome.record.duration_ms = 0;
            }
            if let Some(w) = sink.as_deref_mut() {
                writeln!(w, "{}", outcome.record.to_jsonl())?;
            }
            if let Some(w) = engine_sink.as_deref_mut() {
                writeln!(w, "{}", outcome.record.to_jsonl())?;
            }
            outcomes.push(outcome);
        }
        if let Some(w) = sink {
            w.flush()?;
        }
        if let Some(w) = engine_sink.as_deref_mut() {
            w.flush()?;
        }
        drop(engine_sink);

        Ok(SweepResult {
            outcomes,
            cache: self.cache.stats().since(&stats_before),
            wall: started.elapsed(),
        })
    }

    /// Executes one job on the calling worker thread.
    fn execute(&self, job: &EvalJob) -> JobOutcome {
        let started = Instant::now();
        let release_fp = job.release_fingerprint();
        let seed = derive_seed(self.root_seed, release_fp);

        let (status, table, cache_hit) = match self.cache.get_release(release_fp) {
            Some(table) => (JobStatus::Ok, Some(table), true),
            None => {
                let (status, table) = self.compute_release(job, seed);
                let table = table.map(|t| self.cache.insert_release(release_fp, Arc::new(t)));
                (status, table, false)
            }
        };

        // Content digest of the released cells + suppression mask. Computed
        // over integer codes, so it certifies the release itself, not its
        // rendering, and matches across evaluation strategies. Also the
        // release half of the vector-cache key: same content, same vectors.
        let content_fp = table.as_ref().map(|t| fingerprint_release(t));

        // Property extraction is pure but still third-party code from the
        // record's point of view; keep panics contained per job. Vectors
        // are served from the content-addressed cache when an earlier job
        // already extracted them from a same-content release.
        let (vectors, status) = match (&table, content_fp) {
            (Some(t), Some(digest)) => {
                match catch_unwind(AssertUnwindSafe(|| {
                    job.properties
                        .iter()
                        .map(|p| {
                            let tag = p.tag();
                            match self.cache.get_vector(digest, tag) {
                                Some(v) => (*v).clone(),
                                None => {
                                    let v = Arc::new(p.instantiate().extract(t));
                                    (*self.cache.insert_vector(digest, tag, v)).clone()
                                }
                            }
                        })
                        .collect::<Vec<PropertyVector>>()
                })) {
                    Ok(vectors) => (vectors, status),
                    Err(payload) => (
                        Vec::new(),
                        JobStatus::Panicked {
                            message: panic_message(payload),
                        },
                    ),
                }
            }
            _ => (Vec::new(), status),
        };

        let metrics = match (&status, &table) {
            (JobStatus::Ok, Some(t)) => Some(ReleaseMetrics {
                rows: t.len(),
                classes: t.classes().class_count(),
                min_class_size: t.classes().min_class_size(),
                suppressed: t.suppressed_count(),
                total_loss: LossMetric::classic().total_loss(t),
            }),
            _ => None,
        };

        let release_digest = match (&status, content_fp) {
            (JobStatus::Ok, Some(fp)) => Some(hex_id(fp)),
            _ => None,
        };

        let record = EvalRecord {
            job_id: hex_id(release_fp),
            dataset: job.dataset.label(),
            algorithm: job.algorithm.name().to_owned(),
            k: job.k,
            max_suppression: job.max_suppression,
            seed,
            status: status.clone(),
            metrics,
            release_digest,
            properties: vectors.iter().map(PropertySummary::of).collect(),
            duration_ms: started.elapsed().as_millis() as u64,
            cache_hit,
        };

        JobOutcome {
            job: job.clone(),
            record,
            table: if status.is_ok() { table } else { None },
            vectors,
        }
    }

    /// Runs the anonymization itself, under `catch_unwind` and the
    /// optional wall-clock budget.
    fn compute_release(&self, job: &EvalJob, seed: u64) -> (JobStatus, Option<AnonymizedTable>) {
        let mut ds_fp = Fingerprinter::new();
        job.dataset.fingerprint_into(&mut ds_fp);
        let dataset = self
            .cache
            .dataset_or_insert_with(ds_fp.finish(), || job.dataset.materialize());
        let constraint = job.constraint();
        let algorithm = job.algorithm;

        let guarded = match self.budget {
            None => catch_unwind(AssertUnwindSafe(|| {
                algorithm.instantiate(seed).anonymize(&dataset, &constraint)
            })),
            Some(budget) => {
                // Run on a watchdog thread so the wait can time out. On
                // timeout the thread is abandoned (detached and leaked) —
                // its eventual result is discarded along with the channel.
                let (tx, rx) =
                    mpsc::channel::<std::thread::Result<AnonymizeResult<AnonymizedTable>>>();
                std::thread::spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        algorithm.instantiate(seed).anonymize(&dataset, &constraint)
                    }));
                    let _ = tx.send(result);
                });
                match rx.recv_timeout(budget) {
                    Ok(result) => result,
                    Err(_) => {
                        return (
                            JobStatus::BudgetExceeded {
                                budget_ms: budget.as_millis() as u64,
                            },
                            None,
                        )
                    }
                }
            }
        };

        match guarded {
            Ok(Ok(table)) => (JobStatus::Ok, Some(table)),
            Ok(Err(err)) => (
                JobStatus::Failed {
                    message: err.to_string(),
                },
                None,
            ),
            Err(payload) => (
                JobStatus::Panicked {
                    message: panic_message(payload),
                },
                None,
            ),
        }
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AlgorithmSpec, DatasetSpec, PropertySpec};

    fn quick_jobs() -> Vec<EvalJob> {
        [2usize, 3]
            .into_iter()
            .flat_map(|k| {
                [AlgorithmSpec::Datafly, AlgorithmSpec::Mondrian]
                    .into_iter()
                    .map(move |algorithm| EvalJob {
                        dataset: DatasetSpec::Census {
                            rows: 80,
                            seed: 5,
                            zip_pool: 8,
                        },
                        algorithm,
                        k,
                        max_suppression: 8,
                        properties: vec![PropertySpec::EqClassSize],
                    })
            })
            .collect()
    }

    #[test]
    fn sweep_preserves_submission_order() {
        let engine = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let sweep = engine.run(&jobs);
        assert_eq!(sweep.outcomes.len(), jobs.len());
        for (job, outcome) in jobs.iter().zip(&sweep.outcomes) {
            assert_eq!(outcome.record.algorithm, job.algorithm.name());
            assert_eq!(outcome.record.k, job.k);
            assert!(outcome.record.status.is_ok(), "{:?}", outcome.record.status);
            assert_eq!(outcome.vectors.len(), 1);
        }
    }

    #[test]
    fn second_sweep_is_all_cache_hits() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let first = engine.run(&jobs);
        assert_eq!(first.cache.hits, 0);
        assert_eq!(first.cache.misses, jobs.len() as u64);
        let second = engine.run(&jobs);
        assert_eq!(second.cache.hits, jobs.len() as u64);
        assert_eq!(second.cache.misses, 0);
        assert!(second.outcomes.iter().all(|o| o.record.cache_hit));
        // Cached and fresh sweeps agree on canonical content.
        assert_eq!(first.canonical_jsonl(), second.canonical_jsonl());
    }

    #[test]
    fn duplicate_jobs_execute_once() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let job = quick_jobs().remove(0);
        let sweep = engine.run(&[job.clone(), job.clone(), job]);
        assert_eq!(sweep.cache.misses, 1);
        assert_eq!(sweep.outcomes.len(), 3);
        assert!(!sweep.outcomes[0].record.cache_hit);
        assert!(sweep.outcomes[1].record.cache_hit);
        assert_eq!(
            sweep.outcomes[0].record.canonical(),
            sweep.outcomes[2].record.canonical()
        );
    }

    #[test]
    fn repeated_sweeps_serve_vectors_from_the_cache() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let first = engine.run(&jobs);
        let (hits_after_first, misses_after_first) = engine.vector_cache_stats();
        assert_eq!(hits_after_first, 0);
        assert!(misses_after_first >= jobs.len() as u64);
        let second = engine.run(&jobs);
        let (hits_after_second, misses_after_second) = engine.vector_cache_stats();
        assert_eq!(misses_after_second, misses_after_first, "no re-extraction");
        assert!(hits_after_second >= jobs.len() as u64);
        // Cache-served vectors are the same values a fresh extraction gave.
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.vectors, b.vectors);
        }
    }

    #[test]
    fn vector_cache_is_content_addressed_across_jobs() {
        // Same dataset and algorithm but different max_suppression settings
        // that end in the same release content: distinct job fingerprints,
        // one extraction.
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        let base = quick_jobs().remove(0);
        let mut relaxed = base.clone();
        relaxed.max_suppression = base.max_suppression + 1;
        let sweep = engine.run(&[base, relaxed]);
        let digests: Vec<_> = sweep
            .outcomes
            .iter()
            .map(|o| o.record.release_digest.clone())
            .collect();
        if digests[0] == digests[1] {
            let (hits, misses) = engine.vector_cache_stats();
            assert_eq!(misses, 1, "one extraction for one release content");
            assert_eq!(hits, 1, "second job served from the vector cache");
            assert_eq!(sweep.outcomes[0].vectors, sweep.outcomes[1].vectors);
        }
    }

    #[test]
    fn panicking_job_yields_error_record_and_sweep_completes() {
        let engine = Engine::new(EngineConfig {
            jobs: 3,
            ..EngineConfig::default()
        });
        let mut jobs = quick_jobs();
        jobs[1].algorithm = AlgorithmSpec::MockPanic;
        let sweep = engine.run(&jobs);
        assert_eq!(sweep.outcomes.len(), jobs.len());
        match &sweep.outcomes[1].record.status {
            JobStatus::Panicked { message } => assert!(message.contains("mock-panic")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(sweep.outcomes[1].table.is_none());
        // Every other job still succeeded.
        for (i, o) in sweep.outcomes.iter().enumerate() {
            if i != 1 {
                assert!(o.record.status.is_ok());
            }
        }
    }

    #[test]
    fn budget_exceeded_yields_error_record() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            budget: Some(Duration::from_millis(25)),
            ..EngineConfig::default()
        });
        let mut jobs = quick_jobs();
        jobs[0].algorithm = AlgorithmSpec::MockSleep { millis: 5_000 };
        let sweep = engine.run(&jobs);
        assert_eq!(
            sweep.outcomes[0].record.status,
            JobStatus::BudgetExceeded { budget_ms: 25 }
        );
        assert!(sweep
            .outcomes
            .iter()
            .skip(1)
            .all(|o| o.record.status.is_ok()));
    }

    #[test]
    fn streaming_sink_receives_one_line_per_job() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let mut sink = Vec::new();
        let sweep = engine.run_streaming(&jobs, &mut sink).expect("vec sink");
        let text = String::from_utf8(sink).expect("utf8 jsonl");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), jobs.len());
        for (line, outcome) in lines.iter().zip(&sweep.outcomes) {
            assert_eq!(*line, outcome.record.to_jsonl());
        }
    }
}
