//! The sweep executor: worker pool, memoization, checkpointing, and
//! record collection.
//!
//! # Execution model
//!
//! [`Engine::run`] deduplicates the submitted jobs by content fingerprint,
//! serves any job already present in the resumed checkpoint journal
//! without recomputation, feeds the remaining unique ones into a crossbeam
//! channel shared by `--jobs N` worker threads (a shared channel *is* work
//! stealing: idle workers pull the next pending job), and collects
//! `(index, outcome)` pairs back on the submitting thread, which restores
//! submission order and streams JSONL records to an optional sink.
//!
//! # Determinism
//!
//! Three choices make a sweep's output independent of scheduling:
//!
//! 1. per-job seeds derive from `(root_seed, release fingerprint)` — never
//!    from a job's position or the thread that runs it;
//! 2. outcomes are re-ordered to submission order before they are
//!    returned or written;
//! 3. records expose scheduling-dependent observations (`duration_ms`,
//!    `cache_hit`) as fields that [`EvalRecord::canonical`] strips.
//!
//! Resume preserves the same guarantee: journal replay is lossless
//! ([`EvalRecord::from_jsonl`]), so an interrupted-then-resumed sweep's
//! canonical record set is byte-identical to an uninterrupted run's.
//!
//! # Robustness
//!
//! Worker bodies run the algorithm under `catch_unwind` (with a panic
//! hook that preserves the payload message *and* source location),
//! optionally under a wall-clock budget (the job then runs on a watchdog
//! thread and is abandoned on timeout — the thread is detached and
//! leaked, which is the only portable way to bound safe-but-runaway Rust
//! code). Transient failures (panic, budget) are retried under
//! [`RetryPolicy`] with deterministic exponential backoff, then
//! quarantined to the quarantine sink (`failed.jsonl`) with cause and
//! attempt history; the sweep always completes.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Once, OnceLock};
use std::time::{Duration, Instant};

use anoncmp_anonymize::prelude::{AnonymizeError, Result as AnonymizeResult};
use anoncmp_core::prelude::{BoundedDistanceLoss, PropertyVector};
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::numeric::{NumericBase, NumericRelease, Release};
use anoncmp_microdata::prelude::AnonymizedTable;

use crate::cache::{CacheStats, MemoCache};
use crate::chaos::{ChaosConfig, Fault, CHAOS_PANIC_MESSAGE};
use crate::fingerprint::{derive_seed, hex_id, release_digest, Fingerprinter};
use crate::job::{DatasetSpec, EvalJob};
use crate::journal::{Journal, ShardMeta};
use crate::pool::ScopedPool;
use crate::record::{
    AttemptFailure, EvalRecord, JobStatus, PropertySummary, QuarantineRecord, ReleaseMetrics,
};

/// Retry policy for transient job failures (panics and budget timeouts).
///
/// Backoff is `base · 2^attempt` plus a content-derived jitter in
/// `[0, base)` — deterministic in `(job, attempt)`, so two runs of the
/// same sweep retry identically and produce identical records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff; doubles per attempt.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries at the default base backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff to sleep after the given failed attempt
    /// of the job with this release fingerprint.
    pub fn backoff_for(&self, release_fingerprint: u64, attempt: u32) -> Duration {
        let base = self.base_backoff.as_millis() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exponential = base.saturating_mul(1u64 << attempt.min(10));
        let jitter = derive_seed(release_fingerprint, u64::from(attempt)) % base;
        Duration::from_millis(exponential.saturating_add(jitter))
    }
}

/// Construction-time engine settings.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Root seed all per-job seeds derive from.
    pub root_seed: u64,
    /// Optional per-job wall-clock budget.
    pub budget: Option<Duration>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Optional deterministic fault injection (tests and chaos smokes).
    pub chaos: Option<ChaosConfig>,
    /// Release-cache capacity in entries (`0` = unbounded). Long-lived
    /// processes (the serve daemon) bound this; batch sweeps leave it
    /// unbounded.
    pub release_capacity: usize,
    /// Property-vector-cache capacity in entries (`0` = unbounded).
    pub vector_capacity: usize,
    /// Intra-node chunk threads each running job may use (`0` = auto:
    /// the machine's cores divided by the job worker count — see
    /// [`ScopedPool`]). Thread budgets never change results.
    pub chunk_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // The default root seed is shared by every consumer of
        // `Engine::global()`, which is what lets E16 reuse releases first
        // computed by E13: equal specs + equal root seed = equal cache keys.
        EngineConfig {
            jobs: 0,
            root_seed: 0xED5B_2009,
            budget: None,
            retry: RetryPolicy::default(),
            chaos: None,
            release_capacity: 0,
            vector_capacity: 0,
            chunk_threads: 0,
        }
    }
}

/// The result of one executed (or cache-served) job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: EvalJob,
    /// The machine-readable record.
    pub record: EvalRecord,
    /// The release (either family), when the job succeeded **in this
    /// process**. `None` for journal-replayed outcomes (the journal
    /// stores records, not releases); use [`Engine::release_for`] to
    /// rematerialize on demand.
    pub release: Option<Arc<Release>>,
    /// The extracted property vectors, in requested order. Journal-
    /// replayed outcomes reconstruct them from the record (records carry
    /// full vectors), so they are identical to freshly extracted ones.
    pub vectors: Vec<PropertyVector>,
}

/// The result of a whole sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Release-cache activity attributable to this sweep.
    pub cache: CacheStats,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Unique jobs served from the resumed checkpoint journal (skipped,
    /// not recomputed).
    pub resumed: usize,
    /// Retry attempts spent on transient failures during this sweep.
    pub retries: u64,
    /// Jobs that exhausted their retry budget and were quarantined.
    pub quarantined: u64,
}

impl SweepResult {
    /// The sweep's records as canonical JSONL (one line per job, in
    /// submission order, scheduling-dependent fields stripped). Two runs
    /// of the same jobs under the same root seed yield byte-identical
    /// output here, whatever `--jobs` was — including runs resumed from a
    /// checkpoint journal.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.record.canonical().to_jsonl());
            out.push('\n');
        }
        out
    }

    /// A one-line cache summary for reports. Contains no
    /// scheduling-dependent values, so it is safe to embed in output that
    /// determinism tests compare.
    pub fn cache_summary(&self) -> String {
        format!(
            "engine cache: {} hit(s), {} miss(es) this sweep",
            self.cache.hits, self.cache.misses
        )
    }

    /// A one-line resilience summary: journal resumption, retries, and
    /// quarantines. Kept separate from [`SweepResult::cache_summary`]
    /// because resumption counts legitimately differ between a fresh run
    /// and a resumed one, so this line must stay out of reports whose
    /// byte-identity determinism tests compare.
    pub fn resilience_summary(&self) -> String {
        format!(
            "engine resilience: {} resumed from journal, {} retr{}, {} quarantined",
            self.resumed,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
            self.quarantined
        )
    }
}

/// What [`Engine::resume`] recovered from a checkpoint journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Distinct completed jobs replayed from the journal.
    pub replayed: usize,
    /// Torn or corrupt journal lines dropped (and truncated away).
    pub dropped: usize,
}

/// Internal journal state: the open file plus chaos-truncation bookkeeping.
struct JournalState {
    journal: Journal,
    /// Appends so far (replayed entries count toward it, so chaos
    /// truncation points are absolute positions in the journal).
    appends: u64,
    /// Set after an I/O failure or a chaos-injected torn write; a dead
    /// journal stops checkpointing but never aborts the sweep.
    dead: bool,
}

/// The parallel, memoizing, checkpointing sweep executor.
pub struct Engine {
    cache: MemoCache,
    root_seed: u64,
    budget: parking_lot::Mutex<Option<Duration>>,
    jobs: AtomicUsize,
    chunk_threads: AtomicUsize,
    retry: parking_lot::Mutex<RetryPolicy>,
    chaos: parking_lot::Mutex<Option<ChaosConfig>>,
    /// Optional process-level record sink (the CLI's `--out` JSONL file);
    /// every sweep appends its records here in submission order.
    sink: parking_lot::Mutex<Option<Box<dyn Write + Send>>>,
    /// Optional quarantine sink (`failed.jsonl`): one JSONL
    /// [`QuarantineRecord`] per job that exhausted its retry budget.
    quarantine_sink: parking_lot::Mutex<Option<Box<dyn Write + Send>>>,
    /// The open checkpoint journal, when resumable execution is on.
    journal: parking_lot::Mutex<Option<JournalState>>,
    /// Completed records keyed by job fingerprint: journal replay plus
    /// everything checkpointed this process. Jobs found here are served
    /// without recomputation.
    completed: parking_lot::Mutex<HashMap<u64, EvalRecord>>,
    retries_total: AtomicU64,
    quarantined_total: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("root_seed", &self.root_seed)
            .field("budget", &*self.budget.lock())
            .field("jobs", &self.jobs)
            .field("retry", &*self.retry.lock())
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl Engine {
    /// A fresh engine with its own empty cache.
    pub fn new(config: EngineConfig) -> Self {
        install_panic_capture();
        let cache = MemoCache::new();
        cache.set_capacity(config.release_capacity, config.vector_capacity);
        Engine {
            cache,
            root_seed: config.root_seed,
            budget: parking_lot::Mutex::new(config.budget),
            jobs: AtomicUsize::new(config.jobs),
            chunk_threads: AtomicUsize::new(config.chunk_threads),
            retry: parking_lot::Mutex::new(config.retry),
            chaos: parking_lot::Mutex::new(config.chaos),
            sink: parking_lot::Mutex::new(None),
            quarantine_sink: parking_lot::Mutex::new(None),
            journal: parking_lot::Mutex::new(None),
            completed: parking_lot::Mutex::new(HashMap::new()),
            retries_total: AtomicU64::new(0),
            quarantined_total: AtomicU64::new(0),
        }
    }

    /// The process-wide shared engine. Experiments that run in the same
    /// process share its cache, so a release computed for one experiment
    /// (say E13's k = 5 sweep) is a cache hit for the next (E16's
    /// agreement tournament over the same grid point).
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(|| Engine::new(EngineConfig::default()))
    }

    /// Sets the worker count (`0` = one per available CPU).
    pub fn set_jobs(&self, jobs: usize) {
        self.jobs.store(jobs, Ordering::Relaxed);
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        match self.jobs.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Sets the intra-node chunk-thread budget each running job may use
    /// (`0` = auto split against the job worker count; the CLI's
    /// `--chunk-threads` flag). Never changes results — the chunked
    /// pipeline is bit-identical at every thread count.
    pub fn set_chunk_threads(&self, chunk_threads: usize) {
        self.chunk_threads.store(chunk_threads, Ordering::Relaxed);
    }

    /// The effective per-job intra-node chunk-thread budget, resolved
    /// through [`ScopedPool`]: an explicit override wins, otherwise the
    /// machine's cores are divided by [`Engine::jobs`] so job-level and
    /// chunk-level parallelism together never oversubscribe.
    pub fn chunk_threads(&self) -> usize {
        ScopedPool::new(self.jobs(), self.chunk_threads.load(Ordering::Relaxed)).chunk_threads()
    }

    /// Builds the chunked codec for `spec` with this engine's intra-node
    /// thread budget applied — the entry point `DatasetSpec` evaluation
    /// should use so `--jobs` and `--chunk-threads` compose.
    pub fn chunked_codec_for(
        &self,
        spec: &DatasetSpec,
        chunk_rows: usize,
        store: anoncmp_microdata::chunked::ChunkStore,
    ) -> anoncmp_microdata::error::Result<anoncmp_microdata::chunked::ChunkedCodec> {
        spec.chunked_codec_with_threads(chunk_rows, store, self.chunk_threads())
    }

    /// Sets (or clears) the per-job wall-clock budget.
    pub fn set_budget(&self, budget: Option<Duration>) {
        *self.budget.lock() = budget;
    }

    /// Sets the retry policy for transient failures.
    pub fn set_retry(&self, retry: RetryPolicy) {
        *self.retry.lock() = retry;
    }

    /// Sets the retry count, keeping the configured backoff (the CLI's
    /// `--max-retries` flag).
    pub fn set_max_retries(&self, max_retries: u32) {
        self.retry.lock().max_retries = max_retries;
    }

    /// Installs (or removes) deterministic fault injection (the CLI's
    /// `--chaos-seed` flag).
    pub fn set_chaos(&self, chaos: Option<ChaosConfig>) {
        *self.chaos.lock() = chaos;
    }

    /// Current cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Bounds the release and vector caches (`0` = unbounded), evicting
    /// least-recently-used entries immediately when a map already exceeds
    /// its new capacity. Eviction never changes results — an evicted
    /// release recomputes bit-identically from its content-derived seed —
    /// so a bounded engine stays deterministic, only slower on re-misses.
    pub fn set_cache_capacity(&self, releases: usize, vectors: usize) {
        self.cache.set_capacity(releases, vectors);
    }

    /// Property vectors evicted so far (bounded caches only).
    pub fn vector_cache_evictions(&self) -> u64 {
        self.cache.vector_evictions()
    }

    /// Cumulative vector-cache `(hits, misses)`. Scheduling-dependent
    /// (racing workers can both miss), so not part of [`CacheStats`] or
    /// any determinism-compared report.
    pub fn vector_cache_stats(&self) -> (u64, u64) {
        self.cache.vector_stats()
    }

    /// Drops all cached artifacts (mainly for tests).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Drops cached releases but keeps materialized datasets (benchmarks).
    pub fn clear_releases(&self) {
        self.cache.clear_releases();
    }

    /// Installs (or removes) a process-level record sink; every subsequent
    /// sweep appends its records to it as JSONL, in submission order. This
    /// backs the CLI's `--out <path>` flag.
    pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.sink.lock() = sink;
    }

    /// Installs (or removes) the quarantine sink; jobs that exhaust their
    /// retry budget append one [`QuarantineRecord`] JSONL line each. This
    /// backs the CLI's `failed.jsonl` file.
    pub fn set_quarantine_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.quarantine_sink.lock() = sink;
    }

    /// Resumes from a checkpoint journal (creating it if absent): replays
    /// completed jobs, truncates any torn tail, and keeps the journal
    /// open so subsequent sweeps checkpoint into it. Jobs found in the
    /// journal are served from it — skipped, not recomputed — and the
    /// merged record set is byte-identical (canonically) to an
    /// uninterrupted run.
    pub fn resume(&self, path: impl AsRef<Path>) -> io::Result<ResumeSummary> {
        let (journal, replay) = Journal::open_resumable(path)?;
        *self.journal.lock() = Some(JournalState {
            journal,
            appends: replay.entries as u64,
            dead: false,
        });
        let summary = ResumeSummary {
            replayed: replay.completed.len(),
            dropped: replay.dropped,
        };
        self.completed.lock().extend(replay.completed);
        Ok(summary)
    }

    /// Like [`Engine::resume`], but for a per-shard journal bound to
    /// `meta`: a missing journal is created fresh with the shard header,
    /// an existing one must carry a matching header (a journal for a
    /// different shard range is refused). This is the worker-side resume
    /// path of the distributed runner — a respawned worker replays what
    /// its predecessor already fsync'd and repeats none of it.
    pub fn resume_sharded(
        &self,
        path: impl AsRef<Path>,
        meta: ShardMeta,
    ) -> io::Result<ResumeSummary> {
        let (journal, replay) = Journal::open_resumable_sharded(path, meta)?;
        *self.journal.lock() = Some(JournalState {
            journal,
            appends: replay.entries as u64,
            dead: false,
        });
        let summary = ResumeSummary {
            replayed: replay.completed.len(),
            dropped: replay.dropped,
        };
        self.completed.lock().extend(replay.completed);
        Ok(summary)
    }

    /// Starts a fresh checkpoint journal at `path` (truncating any
    /// existing file). Subsequent sweeps append each completed job,
    /// fsync'd, so a later [`Engine::resume`] can pick up where a killed
    /// process left off.
    pub fn checkpoint_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        *self.journal.lock() = Some(JournalState {
            journal: Journal::create(path)?,
            appends: 0,
            dead: false,
        });
        Ok(())
    }

    /// Detaches the journal (if any) and forgets replayed completions.
    /// Subsequent sweeps recompute everything (modulo the memo cache).
    pub fn detach_journal(&self) {
        *self.journal.lock() = None;
        self.completed.lock().clear();
    }

    /// Transient-failure retries performed over this engine's lifetime.
    pub fn retries_total(&self) -> u64 {
        self.retries_total.load(Ordering::Relaxed)
    }

    /// Jobs quarantined (retry budget exhausted) over this engine's
    /// lifetime.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined_total.load(Ordering::Relaxed)
    }

    /// Record entries in the attached checkpoint journal — replayed plus
    /// appended this process. `0` when no journal is attached.
    pub fn journal_appends(&self) -> u64 {
        self.journal.lock().as_ref().map_or(0, |s| s.appends)
    }

    /// Runs a sweep, returning outcomes in submission order.
    pub fn run(&self, jobs: &[EvalJob]) -> SweepResult {
        self.run_sweep(jobs, None).expect("no sink, no io")
    }

    /// Runs a sweep, streaming each record to `sink` as one JSONL line as
    /// soon as it and all earlier-submitted records are known (records
    /// appear in submission order).
    pub fn run_streaming(&self, jobs: &[EvalJob], sink: &mut dyn Write) -> io::Result<SweepResult> {
        self.run_sweep(jobs, Some(sink))
    }

    /// The release for a job: cache-served, or computed on the calling
    /// thread (and cached). Chaos faults are never injected here. This is
    /// the rematerialization path for journal-replayed outcomes, whose
    /// `release` is `None`. Family-aware: a perturbative job
    /// rematerializes its [`Release::Numeric`] exactly as a
    /// generalization job rematerializes its [`Release::Generalized`].
    pub fn release_for(&self, job: &EvalJob) -> Option<Arc<Release>> {
        let release_fp = job.release_fingerprint();
        if let Some(release) = self.cache.get_release(release_fp) {
            return Some(release);
        }
        let seed = derive_seed(self.root_seed, release_fp);
        // `u32::MAX` is past every chaos `faults_per_job`, so injection is
        // structurally off for rematerialization.
        match self.compute_release(job, seed, u32::MAX) {
            (JobStatus::Ok, Some(release)) => {
                Some(self.cache.insert_release(release_fp, Arc::new(release)))
            }
            _ => None,
        }
    }

    /// [`Engine::release_for`] narrowed to the generalized family: the
    /// convenience most existing call sites (query workloads, renders)
    /// want. `None` when the job failed **or** produced a perturbative
    /// release — callers that can handle both families should use
    /// [`Engine::release_for`].
    pub fn generalized_release_for(&self, job: &EvalJob) -> Option<Arc<AnonymizedTable>> {
        let release = self.release_for(job)?;
        match release.as_ref() {
            Release::Generalized(table) => Some(Arc::new(table.clone())),
            Release::Numeric(_) => None,
        }
    }

    fn run_sweep(
        &self,
        jobs: &[EvalJob],
        mut sink: Option<&mut dyn Write>,
    ) -> io::Result<SweepResult> {
        let started = Instant::now();
        let stats_before = self.cache.stats();
        let retries_before = self.retries_total.load(Ordering::Relaxed);
        let quarantined_before = self.quarantined_total.load(Ordering::Relaxed);

        // Deduplicate identical jobs: the first occurrence executes, later
        // ones alias its outcome. `primary[i]` is the unique-slot index of
        // submitted job `i`.
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut primary: Vec<usize> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let fp = job.job_fingerprint();
            let slot = *slot_of.entry(fp).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            primary.push(slot);
        }

        // Serve journal-replayed completions first: those jobs are
        // skipped entirely (no dataset synthesis, no anonymization, no
        // extraction).
        let mut slots: Vec<Option<JobOutcome>> = (0..unique.len()).map(|_| None).collect();
        let mut resumed = 0usize;
        {
            let completed = self.completed.lock();
            if !completed.is_empty() {
                for (slot, &i) in unique.iter().enumerate() {
                    if let Some(record) = completed.get(&jobs[i].job_fingerprint()) {
                        slots[slot] = Some(outcome_from_checkpoint(&jobs[i], record.clone()));
                        resumed += 1;
                    }
                }
            }
        }

        // Materialize each distinct dataset that will actually run, up
        // front. Workers would otherwise race through
        // `dataset_or_insert_with` (which builds outside the lock) and
        // synthesize the same dataset N times.
        let pending: Vec<usize> = (0..unique.len()).filter(|&s| slots[s].is_none()).collect();
        let mut seen_datasets: HashMap<u64, ()> = HashMap::new();
        for &slot in &pending {
            let i = unique[slot];
            let mut ds_fp = Fingerprinter::new();
            jobs[i].dataset.fingerprint_into(&mut ds_fp);
            let fp = ds_fp.finish();
            if seen_datasets.insert(fp, ()).is_none() {
                self.cache
                    .dataset_or_insert_with(fp, || jobs[i].dataset.materialize());
            }
        }

        let worker_count = self.jobs().min(pending.len()).max(1);
        if worker_count == 1 {
            // Inline fast path: a single worker needs no scope, channels,
            // or thread spawn — run on the calling thread. Identical
            // outcomes (per-job seeds are content-derived), but the
            // fixed per-sweep cost drops from ~a thread spawn to zero,
            // which is what keeps the serve daemon's warm-cache requests
            // in the microsecond range.
            for &slot in &pending {
                let job = &jobs[unique[slot]];
                let outcome = self.execute(job);
                self.checkpoint(job, &outcome.record);
                slots[slot] = Some(outcome);
            }
        } else if !pending.is_empty() {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
            let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, JobOutcome)>();
            for &slot in &pending {
                task_tx.send(slot).expect("queueing tasks");
            }
            drop(task_tx);

            std::thread::scope(|scope| {
                for _ in 0..worker_count {
                    let task_rx = task_rx.clone();
                    let done_tx = done_tx.clone();
                    let unique = &unique;
                    scope.spawn(move || {
                        while let Ok(slot) = task_rx.recv() {
                            let job = &jobs[unique[slot]];
                            let outcome = self.execute(job);
                            self.checkpoint(job, &outcome.record);
                            if done_tx.send((slot, outcome)).is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(done_tx);
                for (slot, outcome) in done_rx.iter() {
                    slots[slot] = Some(outcome);
                }
            });
        }

        // Restore submission order, aliasing duplicates to their primary
        // outcome, and stream the in-order records.
        let mut engine_sink = self.sink.lock();
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let src = slots[primary[i]].as_ref().expect("every slot resolved");
            let mut outcome = src.clone();
            outcome.job = job.clone();
            if unique[primary[i]] != i {
                // An alias never re-ran anything; mark it as served from
                // the sweep's own working set.
                outcome.record.cache_hit = true;
                outcome.record.duration_ms = 0;
            }
            if let Some(w) = sink.as_deref_mut() {
                writeln!(w, "{}", outcome.record.to_jsonl())?;
            }
            if let Some(w) = engine_sink.as_deref_mut() {
                writeln!(w, "{}", outcome.record.to_jsonl())?;
            }
            outcomes.push(outcome);
        }
        if let Some(w) = sink {
            w.flush()?;
        }
        if let Some(w) = engine_sink.as_deref_mut() {
            w.flush()?;
        }
        drop(engine_sink);

        Ok(SweepResult {
            outcomes,
            cache: self.cache.stats().since(&stats_before),
            wall: started.elapsed(),
            resumed,
            retries: self
                .retries_total
                .load(Ordering::Relaxed)
                .saturating_sub(retries_before),
            quarantined: self
                .quarantined_total
                .load(Ordering::Relaxed)
                .saturating_sub(quarantined_before),
        })
    }

    /// Checkpoints a completed job into the journal, if one is attached.
    /// Only deterministic terminal statuses (`Ok`, `Failed`) are
    /// journaled: transient failures must re-run on resume.
    fn checkpoint(&self, job: &EvalJob, record: &EvalRecord) {
        if !matches!(record.status, JobStatus::Ok | JobStatus::Failed { .. }) {
            return;
        }
        let job_fp = job.job_fingerprint();
        {
            let mut guard = self.journal.lock();
            let Some(state) = guard.as_mut() else { return };
            if state.dead {
                return;
            }
            let truncate_at = self
                .chaos
                .lock()
                .as_ref()
                .and_then(|c| c.truncate_journal_after);
            if truncate_at == Some(state.appends) {
                // Chaos: die mid-append, exactly like a process kill.
                let _ = state.journal.append_torn(job_fp, record);
                state.dead = true;
                return;
            }
            match state.journal.append(job_fp, record) {
                Ok(()) => {
                    state.appends += 1;
                    let abort_at = self
                        .chaos
                        .lock()
                        .as_ref()
                        .and_then(|c| c.abort_after_appends);
                    if abort_at == Some(state.appends) {
                        // Chaos: whole-worker loss. The append above has
                        // fsync'd, so exactly `appends` records survive;
                        // `abort` skips every destructor and exit handler,
                        // the closest safe stand-in for `kill -9`.
                        std::process::abort();
                    }
                }
                Err(e) => {
                    // Checkpointing is best-effort: losing the journal
                    // must never abort the sweep. Say so once.
                    eprintln!(
                        "warning: checkpoint journal {} failed ({e}); further checkpoints disabled",
                        state.journal.path().display()
                    );
                    state.dead = true;
                    return;
                }
            }
        }
        // Completed in the journal ⇒ a later sweep in this process can
        // also serve it from the completion map.
        self.completed.lock().insert(job_fp, record.clone());
    }

    /// Writes a quarantine record for a job whose transient failures
    /// exhausted the retry budget.
    fn quarantine(&self, job: &EvalJob, record: &EvalRecord, attempts: &[AttemptFailure]) {
        self.quarantined_total.fetch_add(1, Ordering::Relaxed);
        let entry = QuarantineRecord {
            job_id: record.job_id.clone(),
            job_fingerprint: hex_id(job.job_fingerprint()),
            dataset: job.dataset.label(),
            algorithm: job.algorithm.label(),
            k: job.k,
            max_suppression: job.max_suppression,
            cause: record.status.clone(),
            attempts: attempts.to_vec(),
        };
        if let Some(w) = self.quarantine_sink.lock().as_mut() {
            let _ = writeln!(w, "{}", entry.to_jsonl());
            let _ = w.flush();
        }
    }

    /// Executes one job on the calling worker thread, retrying transient
    /// failures under the engine's [`RetryPolicy`] and quarantining jobs
    /// that exhaust it.
    fn execute(&self, job: &EvalJob) -> JobOutcome {
        let policy = *self.retry.lock();
        let release_fp = job.release_fingerprint();
        let mut attempts: Vec<AttemptFailure> = Vec::new();
        let mut attempt = 0u32;
        loop {
            let outcome = self.execute_attempt(job, attempt);
            let transient = matches!(
                outcome.record.status,
                JobStatus::Panicked { .. } | JobStatus::BudgetExceeded { .. }
            );
            if !transient {
                return outcome;
            }
            if attempt >= policy.max_retries {
                self.quarantine(job, &outcome.record, &attempts);
                return outcome;
            }
            let backoff = policy.backoff_for(release_fp, attempt);
            attempts.push(AttemptFailure {
                attempt,
                cause: outcome.record.status.clone(),
                backoff_ms: backoff.as_millis() as u64,
            });
            self.retries_total.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            attempt += 1;
        }
    }

    /// One attempt of one job.
    fn execute_attempt(&self, job: &EvalJob, attempt: u32) -> JobOutcome {
        let started = Instant::now();
        let release_fp = job.release_fingerprint();
        let seed = derive_seed(self.root_seed, release_fp);

        let (status, release, cache_hit) = match self.cache.get_release(release_fp) {
            Some(release) => (JobStatus::Ok, Some(release), true),
            None => {
                let (status, release) = self.compute_release(job, seed, attempt);
                let release = release.map(|r| self.cache.insert_release(release_fp, Arc::new(r)));
                (status, release, false)
            }
        };

        // Content digest of the released cells (+ suppression mask for
        // generalized releases). Computed over integer codes / IEEE-754
        // bit patterns, so it certifies the release itself, not its
        // rendering, and matches across evaluation strategies. Also the
        // release half of the vector-cache key: same content, same vectors.
        let content_fp = release.as_ref().map(|r| release_digest(r));

        // A classic (generalization-structure) property has no meaning on
        // a perturbative release: fail the job cleanly instead of
        // extracting. Symmetrically, a numeric property on a generalized
        // release needs numeric quasi-identifier columns to measure
        // against.
        let status = match (&status, release.as_deref()) {
            (JobStatus::Ok, Some(Release::Numeric(_)))
                if job.properties.iter().any(|p| !p.is_numeric()) =>
            {
                let tags: Vec<&str> = job
                    .properties
                    .iter()
                    .filter(|p| !p.is_numeric())
                    .map(|p| p.tag())
                    .collect();
                JobStatus::Failed {
                    message: format!(
                        "property {} is generalization-structural and cannot be \
                         extracted from the perturbative release {}",
                        tags.join(", "),
                        job.algorithm.label()
                    ),
                }
            }
            (JobStatus::Ok, Some(Release::Generalized(t)))
                if job.properties.iter().any(|p| p.is_numeric())
                    && NumericBase::of(t.dataset()).is_none() =>
            {
                JobStatus::Failed {
                    message: "numeric properties need at least one numeric \
                              quasi-identifier column"
                        .to_owned(),
                }
            }
            _ => status,
        };

        // Property extraction is pure but still third-party code from the
        // record's point of view; keep panics contained per job. Vectors
        // are served from the content-addressed cache when an earlier job
        // already extracted them from a same-content release; the two
        // families' digest spaces are disjoint, so one cache serves both.
        let (vectors, status) = match (&status, &release, content_fp) {
            (JobStatus::Ok, Some(r), Some(digest)) => {
                match contained(AssertUnwindSafe(|| {
                    job.properties
                        .iter()
                        .map(|p| {
                            let tag = p.tag();
                            match self.cache.get_vector(digest, tag) {
                                Some(v) => (*v).clone(),
                                None => {
                                    let v = Arc::new(extract_property(p, r));
                                    (*self.cache.insert_vector(digest, tag, v)).clone()
                                }
                            }
                        })
                        .collect::<Vec<PropertyVector>>()
                })) {
                    Ok(vectors) => (vectors, status),
                    Err(message) => (Vec::new(), JobStatus::Panicked { message }),
                }
            }
            _ => (Vec::new(), status),
        };

        let metrics = match (&status, release.as_deref()) {
            (JobStatus::Ok, Some(Release::Generalized(t))) => Some(ReleaseMetrics {
                rows: t.len(),
                classes: t.classes().class_count(),
                min_class_size: t.classes().min_class_size(),
                suppressed: t.suppressed_count(),
                total_loss: LossMetric::classic().total_loss(t),
            }),
            (JobStatus::Ok, Some(Release::Numeric(n))) => Some(numeric_metrics(n)),
            _ => None,
        };

        let digest_hex = match (&status, content_fp) {
            (JobStatus::Ok, Some(fp)) => Some(hex_id(fp)),
            _ => None,
        };

        let record = EvalRecord {
            job_id: hex_id(release_fp),
            dataset: job.dataset.label(),
            algorithm: job.algorithm.label(),
            k: job.k,
            max_suppression: job.max_suppression,
            seed,
            status: status.clone(),
            metrics,
            release_digest: digest_hex,
            properties: vectors.iter().map(PropertySummary::of).collect(),
            duration_ms: started.elapsed().as_millis() as u64,
            cache_hit,
        };

        JobOutcome {
            job: job.clone(),
            record,
            release: if status.is_ok() { release } else { None },
            vectors,
        }
    }

    /// Runs the anonymization itself, under panic containment and the
    /// optional wall-clock budget, with chaos faults injected when
    /// configured.
    fn compute_release(
        &self,
        job: &EvalJob,
        seed: u64,
        attempt: u32,
    ) -> (JobStatus, Option<Release>) {
        let mut ds_fp = Fingerprinter::new();
        job.dataset.fingerprint_into(&mut ds_fp);
        let dataset = self
            .cache
            .dataset_or_insert_with(ds_fp.finish(), || job.dataset.materialize());
        let constraint = job.constraint();
        let algorithm = job.algorithm;
        let chaos_fault = self
            .chaos
            .lock()
            .as_ref()
            .and_then(|c| c.fault_for(job.release_fingerprint(), attempt));
        let budget = *self.budget.lock();

        let run = move || -> AnonymizeResult<Release> {
            match chaos_fault {
                Some(Fault::Panic) => panic!("{CHAOS_PANIC_MESSAGE}"),
                Some(Fault::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
            match algorithm.perturb() {
                // Perturbative wing: a pure function of (numeric base,
                // spec, seed) — same chaos/budget/containment envelope as
                // the generalization algorithms.
                Some(spec) => match NumericBase::of(&dataset) {
                    Some(base) => Ok(Release::Numeric(spec.apply(&base, seed))),
                    None => Err(AnonymizeError::InvalidConfig(format!(
                        "{}: dataset has no numeric quasi-identifier columns",
                        spec.wire_name()
                    ))),
                },
                None => algorithm
                    .instantiate(seed)
                    .anonymize(&dataset, &constraint)
                    .map(Release::Generalized),
            }
        };

        let guarded = match budget {
            None => contained(AssertUnwindSafe(run)),
            Some(budget) => {
                // Run on a watchdog thread so the wait can time out. On
                // timeout the thread is abandoned (detached and leaked) —
                // its eventual result is discarded along with the channel.
                let (tx, rx) = mpsc::channel::<Result<AnonymizeResult<Release>, String>>();
                std::thread::spawn(move || {
                    let _ = tx.send(contained(AssertUnwindSafe(run)));
                });
                match rx.recv_timeout(budget) {
                    Ok(result) => result,
                    Err(_) => {
                        return (
                            JobStatus::BudgetExceeded {
                                budget_ms: budget.as_millis() as u64,
                            },
                            None,
                        )
                    }
                }
            }
        };

        match guarded {
            Ok(Ok(release)) => (JobStatus::Ok, Some(release)),
            Ok(Err(err)) => (
                JobStatus::Failed {
                    message: err.to_string(),
                },
                None,
            ),
            Err(message) => (JobStatus::Panicked { message }, None),
        }
    }
}

/// Extracts one property from either release family: the numeric fast
/// path for numeric properties on numeric releases, the [`Property`]
/// trait path otherwise. The caller has already rejected classic
/// properties on numeric releases.
///
/// [`Property`]: anoncmp_core::prelude::Property
fn extract_property(spec: &crate::job::PropertySpec, release: &Release) -> PropertyVector {
    match release {
        Release::Numeric(numeric) => spec
            .extract_numeric(numeric)
            .expect("classic properties on numeric releases fail before extraction"),
        Release::Generalized(table) => spec.instantiate().extract(table),
    }
}

/// [`ReleaseMetrics`] for a numeric release: "classes" are groups of
/// byte-identical released rows (microaggregation produces genuine
/// multi-member classes; noise mostly singletons), nothing is ever
/// suppressed, and the loss column reports the total bounded
/// distance-based loss (the numeric analogue of classic generalization
/// loss).
fn numeric_metrics(release: &NumericRelease) -> ReleaseMetrics {
    let n = release.len();
    let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
    for i in 0..n {
        let signature: Vec<u64> = release
            .columns()
            .iter()
            .map(|col| col[i].to_bits())
            .collect();
        *counts.entry(signature).or_insert(0) += 1;
    }
    let min_class_size = counts.values().copied().min().unwrap_or(0);
    let total_loss: f64 = BoundedDistanceLoss
        .extract_numeric(release)
        .values()
        .iter()
        .map(|v| -v)
        .sum();
    ReleaseMetrics {
        rows: n,
        classes: counts.len(),
        min_class_size,
        suppressed: 0,
        total_loss,
    }
}

/// Rebuilds a [`JobOutcome`] from a journaled record. The table is not
/// journaled (use [`Engine::release_for`] to rematerialize); the vectors
/// are — records carry every component — so downstream comparators see
/// exactly what a fresh extraction would have produced.
fn outcome_from_checkpoint(job: &EvalJob, record: EvalRecord) -> JobOutcome {
    let vectors = record
        .properties
        .iter()
        .map(|p| PropertyVector::new(p.name.clone(), p.values.clone()))
        .collect();
    JobOutcome {
        job: job.clone(),
        record,
        release: None,
        vectors,
    }
}

thread_local! {
    /// Whether the current thread is inside an engine containment region
    /// (so the panic hook captures instead of printing).
    static CONTAINED: Cell<bool> = const { Cell::new(false) };
    /// The last contained panic's message + source location, captured by
    /// the hook (which sees the location; the unwind payload does not).
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs (once per process) a panic hook that, for panics inside
/// [`contained`] regions, records the payload message **and source
/// location** instead of printing a backtrace to stderr. Panics anywhere
/// else are forwarded to the previously installed hook, so test-harness
/// and application panics behave exactly as before.
fn install_panic_capture() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(Cell::get) {
                previous(info);
                return;
            }
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let full = match info.location() {
                Some(location) => format!("{message} (at {location})"),
                None => message,
            };
            LAST_PANIC.with(|last| *last.borrow_mut() = Some(full));
        }));
    });
}

/// `catch_unwind` with full payload preservation: on panic, returns the
/// payload message annotated with the panic's source location (captured
/// by the engine's hook). Quarantine records therefore say *why* a job
/// died and *where*, not just that it died.
fn contained<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> Result<T, String> {
    install_panic_capture();
    CONTAINED.with(|c| c.set(true));
    LAST_PANIC.with(|last| last.borrow_mut().take());
    let result = catch_unwind(f);
    CONTAINED.with(|c| c.set(false));
    result.map_err(|payload| {
        LAST_PANIC
            .with(|last| last.borrow_mut().take())
            .unwrap_or_else(|| panic_message(payload))
    })
}

/// Extracts a readable message from a caught panic payload (the fallback
/// when the hook did not run, e.g. a panic while panicking).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AlgorithmSpec, DatasetSpec, PropertySpec};

    fn quick_jobs() -> Vec<EvalJob> {
        [2usize, 3]
            .into_iter()
            .flat_map(|k| {
                [AlgorithmSpec::Datafly, AlgorithmSpec::Mondrian]
                    .into_iter()
                    .map(move |algorithm| EvalJob {
                        dataset: DatasetSpec::Census {
                            rows: 80,
                            seed: 5,
                            zip_pool: 8,
                        },
                        algorithm,
                        k,
                        max_suppression: 8,
                        properties: vec![PropertySpec::EqClassSize],
                    })
            })
            .collect()
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "anoncmp-engine-{name}-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&p).ok();
        p
    }

    #[test]
    fn sweep_preserves_submission_order() {
        let engine = Engine::new(EngineConfig {
            jobs: 4,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let sweep = engine.run(&jobs);
        assert_eq!(sweep.outcomes.len(), jobs.len());
        for (job, outcome) in jobs.iter().zip(&sweep.outcomes) {
            assert_eq!(outcome.record.algorithm, job.algorithm.name());
            assert_eq!(outcome.record.k, job.k);
            assert!(outcome.record.status.is_ok(), "{:?}", outcome.record.status);
            assert_eq!(outcome.vectors.len(), 1);
        }
    }

    #[test]
    fn second_sweep_is_all_cache_hits() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let first = engine.run(&jobs);
        assert_eq!(first.cache.hits, 0);
        assert_eq!(first.cache.misses, jobs.len() as u64);
        let second = engine.run(&jobs);
        assert_eq!(second.cache.hits, jobs.len() as u64);
        assert_eq!(second.cache.misses, 0);
        assert!(second.outcomes.iter().all(|o| o.record.cache_hit));
        // Cached and fresh sweeps agree on canonical content.
        assert_eq!(first.canonical_jsonl(), second.canonical_jsonl());
    }

    #[test]
    fn duplicate_jobs_execute_once() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let job = quick_jobs().remove(0);
        let sweep = engine.run(&[job.clone(), job.clone(), job]);
        assert_eq!(sweep.cache.misses, 1);
        assert_eq!(sweep.outcomes.len(), 3);
        assert!(!sweep.outcomes[0].record.cache_hit);
        assert!(sweep.outcomes[1].record.cache_hit);
        assert_eq!(
            sweep.outcomes[0].record.canonical(),
            sweep.outcomes[2].record.canonical()
        );
    }

    #[test]
    fn repeated_sweeps_serve_vectors_from_the_cache() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let first = engine.run(&jobs);
        let (hits_after_first, misses_after_first) = engine.vector_cache_stats();
        assert_eq!(hits_after_first, 0);
        assert!(misses_after_first >= jobs.len() as u64);
        let second = engine.run(&jobs);
        let (hits_after_second, misses_after_second) = engine.vector_cache_stats();
        assert_eq!(misses_after_second, misses_after_first, "no re-extraction");
        assert!(hits_after_second >= jobs.len() as u64);
        // Cache-served vectors are the same values a fresh extraction gave.
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.vectors, b.vectors);
        }
    }

    #[test]
    fn vector_cache_is_content_addressed_across_jobs() {
        // Same dataset and algorithm but different max_suppression settings
        // that end in the same release content: distinct job fingerprints,
        // one extraction.
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        let base = quick_jobs().remove(0);
        let mut relaxed = base.clone();
        relaxed.max_suppression = base.max_suppression + 1;
        let sweep = engine.run(&[base, relaxed]);
        let digests: Vec<_> = sweep
            .outcomes
            .iter()
            .map(|o| o.record.release_digest.clone())
            .collect();
        if digests[0] == digests[1] {
            let (hits, misses) = engine.vector_cache_stats();
            assert_eq!(misses, 1, "one extraction for one release content");
            assert_eq!(hits, 1, "second job served from the vector cache");
            assert_eq!(sweep.outcomes[0].vectors, sweep.outcomes[1].vectors);
        }
    }

    #[test]
    fn panicking_job_yields_error_record_and_sweep_completes() {
        let engine = Engine::new(EngineConfig {
            jobs: 3,
            ..EngineConfig::default()
        });
        let mut jobs = quick_jobs();
        jobs[1].algorithm = AlgorithmSpec::MockPanic;
        let sweep = engine.run(&jobs);
        assert_eq!(sweep.outcomes.len(), jobs.len());
        match &sweep.outcomes[1].record.status {
            JobStatus::Panicked { message } => assert!(message.contains("mock-panic")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(sweep.outcomes[1].release.is_none());
        // With zero retries, the transient failure quarantines directly.
        assert_eq!(sweep.quarantined, 1);
        assert_eq!(sweep.retries, 0);
        // Every other job still succeeded.
        for (i, o) in sweep.outcomes.iter().enumerate() {
            if i != 1 {
                assert!(o.record.status.is_ok());
            }
        }
    }

    #[test]
    fn contained_panics_preserve_message_and_location() {
        // String payloads keep their formatted message; every payload —
        // string or not — gains the panic's source location. This is the
        // "quarantined jobs record *why* they died" guarantee.
        let err = contained(|| -> () { panic!("kaboom {}", 6 + 1) }).unwrap_err();
        assert!(err.contains("kaboom 7"), "message lost: {err}");
        assert!(err.contains("engine.rs"), "location lost: {err}");

        let err = contained(|| -> () { std::panic::panic_any(42u32) }).unwrap_err();
        assert!(err.contains("non-string panic payload"), "bad: {err}");
        assert!(err.contains("engine.rs"), "location lost: {err}");
    }

    #[test]
    fn panic_payload_message_reaches_the_record() {
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        let mut job = quick_jobs().remove(0);
        job.algorithm = AlgorithmSpec::MockPanic;
        let sweep = engine.run(std::slice::from_ref(&job));
        match &sweep.outcomes[0].record.status {
            JobStatus::Panicked { message } => {
                assert!(
                    message.contains("deliberate failure injected"),
                    "payload message lost: {message}"
                );
                assert!(message.contains("job.rs"), "location lost: {message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn budget_exceeded_yields_error_record() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            budget: Some(Duration::from_millis(25)),
            ..EngineConfig::default()
        });
        let mut jobs = quick_jobs();
        jobs[0].algorithm = AlgorithmSpec::MockSleep { millis: 5_000 };
        let sweep = engine.run(&jobs);
        assert_eq!(
            sweep.outcomes[0].record.status,
            JobStatus::BudgetExceeded { budget_ms: 25 }
        );
        assert!(sweep
            .outcomes
            .iter()
            .skip(1)
            .all(|o| o.record.status.is_ok()));
    }

    #[test]
    fn streaming_sink_receives_one_line_per_job() {
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let mut sink = Vec::new();
        let sweep = engine.run_streaming(&jobs, &mut sink).expect("vec sink");
        let text = String::from_utf8(sink).expect("utf8 jsonl");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), jobs.len());
        for (line, outcome) in lines.iter().zip(&sweep.outcomes) {
            assert_eq!(*line, outcome.record.to_jsonl());
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(40),
        };
        let b0 = policy.backoff_for(0xfeed, 0);
        let b1 = policy.backoff_for(0xfeed, 1);
        assert_eq!(b0, policy.backoff_for(0xfeed, 0), "deterministic");
        assert!(b1 >= b0, "exponential growth dominates jitter");
        assert!(b0 >= Duration::from_millis(40) && b0 < Duration::from_millis(80));
        assert!(b1 >= Duration::from_millis(80) && b1 < Duration::from_millis(120));
        // Different jobs jitter differently (with overwhelming probability
        // for these two fingerprints — pinned, so not flaky).
        assert_ne!(policy.backoff_for(0xfeed, 0), policy.backoff_for(0xbeef, 0));
    }

    #[test]
    fn transient_chaos_fault_heals_on_retry() {
        let mut chaos = ChaosConfig::seeded(99);
        chaos.panic_rate = 1.0; // every job faults on its first attempt
        chaos.stall_rate = 0.0;
        let engine = Engine::new(EngineConfig {
            jobs: 2,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
            },
            chaos: Some(chaos),
            ..EngineConfig::default()
        });
        let jobs = quick_jobs();
        let sweep = engine.run(&jobs);
        assert!(
            sweep.outcomes.iter().all(|o| o.record.status.is_ok()),
            "retries heal transient faults"
        );
        assert_eq!(sweep.retries, jobs.len() as u64);
        assert_eq!(sweep.quarantined, 0);

        // The healed sweep's canonical records match a chaos-free run.
        let clean = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        })
        .run(&jobs);
        assert_eq!(sweep.canonical_jsonl(), clean.canonical_jsonl());
    }

    #[test]
    fn persistent_chaos_fault_exhausts_retries_and_quarantines() {
        let mut chaos = ChaosConfig::persistent(99);
        chaos.panic_rate = 1.0;
        chaos.stall_rate = 0.0;
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
            },
            chaos: Some(chaos),
            ..EngineConfig::default()
        });
        let job = quick_jobs().remove(0);
        let sweep = engine.run(std::slice::from_ref(&job));
        assert_eq!(sweep.quarantined, 1);
        assert_eq!(sweep.retries, 2);
        match &sweep.outcomes[0].record.status {
            JobStatus::Panicked { message } => {
                assert!(message.contains(CHAOS_PANIC_MESSAGE), "cause: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_record_carries_cause_and_attempt_history() {
        // A quarantined job's JSONL entry must state why it died (with
        // the preserved panic payload) and every prior attempt.
        struct SharedSink(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buffer = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
            },
            ..EngineConfig::default()
        });
        engine.set_quarantine_sink(Some(Box::new(SharedSink(buffer.clone()))));
        let mut job = quick_jobs().remove(0);
        job.algorithm = AlgorithmSpec::MockPanic;
        let sweep = engine.run(std::slice::from_ref(&job));
        assert_eq!(sweep.quarantined, 1);
        assert_eq!(sweep.retries, 2);

        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "one quarantine entry: {text}");
        let entry = serde::json::parse(lines[0]).expect("valid JSONL");
        assert_eq!(entry.get("algorithm").unwrap().as_str(), Some("mock-panic"));
        let cause = entry.get("cause").unwrap().get("Panicked").unwrap();
        let message = cause.get("message").unwrap().as_str().unwrap();
        assert!(message.contains("deliberate failure injected"), "{message}");
        let attempts = entry.get("attempts").unwrap().as_array().unwrap();
        assert_eq!(attempts.len(), 2, "both prior attempts recorded");
        for (i, a) in attempts.iter().enumerate() {
            assert_eq!(a.get("attempt").unwrap().as_u64(), Some(i as u64));
            assert!(a.get("cause").unwrap().get("Panicked").is_some());
            assert!(a.get("backoff_ms").unwrap().as_u64().unwrap() >= 1);
        }
    }

    #[test]
    fn checkpointed_sweep_resumes_without_recomputation() {
        let path = temp_journal("resume-basic");
        let jobs = quick_jobs();

        // First process: checkpoint a full sweep.
        let first = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        first.checkpoint_to(&path).unwrap();
        let original = first.run(&jobs);

        // Second process (fresh engine = empty caches): resume and re-run.
        let second = Engine::new(EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        });
        let summary = second.resume(&path).unwrap();
        assert_eq!(summary.replayed, jobs.len());
        assert_eq!(summary.dropped, 0);
        let resumed = second.run(&jobs);
        assert_eq!(resumed.resumed, jobs.len());
        assert_eq!(resumed.cache.misses, 0, "nothing recomputed");
        assert_eq!(original.canonical_jsonl(), resumed.canonical_jsonl());
        // Replayed vectors equal freshly extracted ones.
        for (a, b) in original.outcomes.iter().zip(&resumed.outcomes) {
            assert_eq!(a.vectors, b.vectors);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn release_for_rematerializes_after_resume() {
        let path = temp_journal("rematerialize");
        let jobs = quick_jobs();
        let first = Engine::new(EngineConfig::default());
        first.checkpoint_to(&path).unwrap();
        let original = first.run(&jobs);

        let second = Engine::new(EngineConfig::default());
        second.resume(&path).unwrap();
        let resumed = second.run(&jobs);
        assert!(
            resumed.outcomes[0].release.is_none(),
            "journal has no table"
        );
        let release = second
            .release_for(&jobs[0])
            .expect("rematerialization succeeds");
        let fresh = original.outcomes[0].release.as_ref().unwrap();
        assert_eq!(
            release_digest(&release),
            release_digest(fresh),
            "rematerialized release is bit-identical"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resilience_summary_reads_well() {
        let engine = Engine::new(EngineConfig {
            jobs: 1,
            ..EngineConfig::default()
        });
        let sweep = engine.run(&quick_jobs());
        assert_eq!(
            sweep.resilience_summary(),
            "engine resilience: 0 resumed from journal, 0 retries, 0 quarantined"
        );
    }
}
