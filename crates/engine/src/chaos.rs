//! Deterministic fault injection for testing the engine's recovery
//! machinery.
//!
//! Chaos is **seeded and content-derived**: whether a job is faulted — and
//! how — depends only on `(chaos seed, job fingerprint, attempt)`, never
//! on scheduling, worker count, or wall clock. The same chaos seed faults
//! the same jobs at `--jobs 1` and `--jobs 8`, which is what lets CI
//! assert exact quarantine counts and resume determinism.
//!
//! Three fault kinds cover the failure paths the engine must survive:
//!
//! * [`Fault::Panic`] — the anonymizer panics mid-run (exercises
//!   `catch_unwind` containment, retry, and quarantine);
//! * [`Fault::Stall`] — the anonymizer sleeps past the wall-clock budget
//!   (exercises the watchdog timeout path);
//! * journal truncation ([`ChaosConfig::truncate_journal_after`]) — the
//!   checkpoint journal dies mid-append after N entries, simulating a
//!   process kill (exercises torn-tail recovery and `Engine::resume`).
//!
//! By default a faulted job fails only on its first attempt
//! ([`ChaosConfig::faults_per_job`] = 1), modeling a transient fault that
//! a retry heals; raise it past the retry budget to drive jobs into
//! quarantine.

use std::time::Duration;

use crate::fingerprint::derive_seed;

/// Runtime-configured fault injection. Install with
/// [`Engine::set_chaos`](crate::engine::Engine::set_chaos) or the
/// `--chaos-seed` CLI flag.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Fraction of jobs (by fingerprint hash) that panic.
    pub panic_rate: f64,
    /// Fraction of jobs that stall past the wall-clock budget.
    pub stall_rate: f64,
    /// How long a stalled job sleeps.
    pub stall: Duration,
    /// Number of leading attempts that fault before the job is allowed to
    /// succeed. `1` models a transient fault (a retry heals it); a value
    /// above the engine's retry budget forces quarantine.
    pub faults_per_job: u32,
    /// After this many journal appends, the next append is torn mid-write
    /// and the journal goes dead — a deterministic stand-in for killing
    /// the process at a journaled midpoint.
    pub truncate_journal_after: Option<u64>,
    /// Once this many journal appends have fsync'd, abort the whole
    /// process (`std::process::abort`, i.e. SIGABRT with no cleanup — the
    /// moral equivalent of `kill -9`). Unlike
    /// [`truncate_journal_after`](Self::truncate_journal_after), which
    /// models a torn write inside one engine, this models whole-worker
    /// loss for the distributed supervisor: exactly N records survive on
    /// disk and nothing else of the process does.
    pub abort_after_appends: Option<u64>,
}

impl ChaosConfig {
    /// The standard chaos profile used by the CI smoke: ~10% of jobs
    /// faulted (half panics, half stalls), each healing on first retry.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_rate: 0.05,
            stall_rate: 0.05,
            stall: Duration::from_millis(200),
            faults_per_job: 1,
            truncate_journal_after: None,
            abort_after_appends: None,
        }
    }

    /// A pure worker-loss profile: no per-job faults, but the process
    /// aborts once `appends` journal entries have fsync'd. Used by the
    /// dist chaos drill to kill a worker at a deterministic midpoint.
    pub fn abort_after(appends: u64) -> Self {
        ChaosConfig {
            seed: 0,
            panic_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::ZERO,
            faults_per_job: 0,
            truncate_journal_after: None,
            abort_after_appends: Some(appends),
        }
    }

    /// Same profile, but faulted jobs never heal: every retry fails too,
    /// so they exhaust the retry budget and land in quarantine.
    pub fn persistent(seed: u64) -> Self {
        ChaosConfig {
            faults_per_job: u32::MAX,
            ..ChaosConfig::seeded(seed)
        }
    }

    /// The fault (if any) to inject into the given attempt of the job
    /// with this release fingerprint. Pure in `(self, fingerprint,
    /// attempt)`.
    pub fn fault_for(&self, release_fingerprint: u64, attempt: u32) -> Option<Fault> {
        if attempt >= self.faults_per_job {
            return None;
        }
        // SplitMix-finalized hash → uniform in [0, 1).
        let h = derive_seed(self.seed, release_fingerprint);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.panic_rate {
            Some(Fault::Panic)
        } else if u < self.panic_rate + self.stall_rate {
            Some(Fault::Stall(self.stall))
        } else {
            None
        }
    }

    /// Whether this config faults the job on its first attempt — i.e.
    /// whether the job counts toward the expected quarantine set when
    /// faults are persistent.
    pub fn is_faulted(&self, release_fingerprint: u64) -> bool {
        self.faults_per_job > 0 && self.fault_for(release_fingerprint, 0).is_some()
    }
}

/// A fault selected for one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the anonymizer.
    Panic,
    /// Sleep this long inside the anonymizer (to trip the budget).
    Stall(Duration),
}

/// The panic message chaos-injected panics carry, so quarantine records
/// and tests can tell injected faults from real ones.
pub const CHAOS_PANIC_MESSAGE: &str = "chaos: injected panic";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_decisions_are_deterministic() {
        let cfg = ChaosConfig::seeded(42);
        for fp in 0u64..500 {
            assert_eq!(cfg.fault_for(fp, 0), cfg.fault_for(fp, 0));
        }
    }

    #[test]
    fn fault_rate_is_roughly_the_configured_fraction() {
        let cfg = ChaosConfig::seeded(7);
        let faulted = (0u64..10_000).filter(|&fp| cfg.is_faulted(fp)).count();
        // 10% nominal; allow generous slack for the small sample.
        assert!(
            (700..1300).contains(&faulted),
            "expected ~1000 faulted of 10k, got {faulted}"
        );
    }

    #[test]
    fn different_seeds_fault_different_jobs() {
        let a = ChaosConfig::seeded(1);
        let b = ChaosConfig::seeded(2);
        let same = (0u64..2_000)
            .filter(|&fp| a.is_faulted(fp) == b.is_faulted(fp))
            .count();
        assert!(same < 2_000, "seeds must matter");
    }

    #[test]
    fn transient_faults_heal_after_the_configured_attempts() {
        let cfg = ChaosConfig::seeded(42);
        let faulted_fp = (0u64..10_000)
            .find(|&fp| cfg.is_faulted(fp))
            .expect("some job faults");
        assert!(cfg.fault_for(faulted_fp, 0).is_some());
        assert_eq!(cfg.fault_for(faulted_fp, 1), None, "attempt 1 heals");
        let persistent = ChaosConfig::persistent(42);
        assert!(persistent.fault_for(faulted_fp, 10).is_some());
    }
}
