//! Machine-readable per-release evaluation records.
//!
//! Every job in a sweep — succeeded, failed, or budget-exceeded — yields
//! exactly one [`EvalRecord`]. Records serialize to one JSON object per
//! line (JSONL) so downstream tooling can stream them, and their
//! [`canonical`](EvalRecord::canonical) form strips the two
//! scheduling-dependent fields (`duration_ms`, `cache_hit`) so that byte
//! comparison of canonical records is a valid determinism check.

use anoncmp_core::prelude::PropertyVector;
use serde::json::Value;
use serde::Serialize;

/// How a job terminated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum JobStatus {
    /// The release was computed and measured.
    Ok,
    /// The algorithm returned an error (e.g. the constraint was
    /// unsatisfiable under the suppression budget).
    Failed {
        /// The algorithm's error message.
        message: String,
    },
    /// The algorithm panicked; the panic was caught and the sweep
    /// continued.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The job exceeded the engine's per-job wall-clock budget.
    BudgetExceeded {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

impl JobStatus {
    /// Whether the job produced a release.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }
}

/// Scalar summary of a computed release.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReleaseMetrics {
    /// Tuples in the release (suppressed tuples excluded).
    pub rows: usize,
    /// Number of equivalence classes.
    pub classes: usize,
    /// Smallest equivalence class (the achieved k).
    pub min_class_size: usize,
    /// Tuples suppressed to satisfy the constraint.
    pub suppressed: usize,
    /// Classic generalization loss, summed over cells.
    pub total_loss: f64,
}

/// One extracted property vector, summarized for the record.
///
/// Records carry the full vector: the paper's comparators are functions of
/// whole vectors, and downstream tooling (bias reports, dominance checks)
/// needs every component, not just moments.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PropertySummary {
    /// The property's display name.
    pub name: String,
    /// The per-tuple values, in tuple order.
    pub values: Vec<f64>,
}

impl PropertySummary {
    /// Summarizes an extracted vector.
    pub fn of(vector: &PropertyVector) -> Self {
        PropertySummary {
            name: vector.name().to_owned(),
            values: vector.values().to_vec(),
        }
    }
}

/// The engine's record of one evaluation job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalRecord {
    /// Hex fingerprint of the release (the memoization key).
    pub job_id: String,
    /// Human-readable dataset label.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The k of k-anonymity.
    pub k: usize,
    /// Maximum allowed suppression.
    pub max_suppression: usize,
    /// The derived per-job seed the algorithm ran with.
    pub seed: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Release summary; `None` unless `status` is `Ok`.
    pub metrics: Option<ReleaseMetrics>,
    /// Hex content digest of the released table (cells + suppression
    /// mask, computed over integer codes, not rendered strings); `None`
    /// unless `status` is `Ok`. Stable across evaluation strategies:
    /// encoded and materialized lattice application digest identically.
    pub release_digest: Option<String>,
    /// Extracted property vectors, in requested order.
    pub properties: Vec<PropertySummary>,
    /// Wall-clock time this job occupied a worker, in milliseconds.
    /// Scheduling-dependent: excluded from [`EvalRecord::canonical`].
    pub duration_ms: u64,
    /// Whether the release came from the memoization cache.
    /// Scheduling-dependent: excluded from [`EvalRecord::canonical`].
    pub cache_hit: bool,
}

impl EvalRecord {
    /// The record with scheduling-dependent fields (`duration_ms`,
    /// `cache_hit`) zeroed. Two sweeps over the same jobs with the same
    /// root seed produce byte-identical canonical records regardless of
    /// `--jobs`, cache state, or scheduling order.
    pub fn canonical(&self) -> EvalRecord {
        EvalRecord {
            duration_ms: 0,
            cache_hit: false,
            ..self.clone()
        }
    }

    /// The record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json()
    }

    /// Parses one JSONL line produced by [`EvalRecord::to_jsonl`].
    ///
    /// The decode is lossless: `from_jsonl(r.to_jsonl()) == Some(r)` and
    /// re-serializing the parsed record reproduces the input byte-for-byte
    /// (numbers round-trip through raw text, floats through Rust's
    /// shortest-representation formatting). This is what lets the
    /// checkpoint journal replay completed jobs without recomputation.
    /// Returns `None` on any syntax or shape mismatch — a torn or corrupt
    /// journal line must be dropped, not half-decoded.
    pub fn from_jsonl(line: &str) -> Option<EvalRecord> {
        Self::from_json_value(&serde::json::parse(line)?)
    }

    /// Decodes a record from an already-parsed JSON value.
    pub fn from_json_value(v: &Value) -> Option<EvalRecord> {
        Some(EvalRecord {
            job_id: v.get("job_id")?.as_str()?.to_owned(),
            dataset: v.get("dataset")?.as_str()?.to_owned(),
            algorithm: v.get("algorithm")?.as_str()?.to_owned(),
            k: v.get("k")?.as_usize()?,
            max_suppression: v.get("max_suppression")?.as_usize()?,
            seed: v.get("seed")?.as_u64()?,
            status: decode_status(v.get("status")?)?,
            metrics: decode_option(v.get("metrics")?, decode_metrics)?,
            release_digest: decode_option(v.get("release_digest")?, |d| {
                Some(d.as_str()?.to_owned())
            })?,
            properties: v
                .get("properties")?
                .as_array()?
                .iter()
                .map(decode_property)
                .collect::<Option<Vec<_>>>()?,
            duration_ms: v.get("duration_ms")?.as_u64()?,
            cache_hit: v.get("cache_hit")?.as_bool()?,
        })
    }
}

/// One failed attempt of a retried job, as recorded in quarantine
/// entries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttemptFailure {
    /// Zero-based attempt index.
    pub attempt: u32,
    /// How the attempt failed.
    pub cause: JobStatus,
    /// The backoff slept after this failure, in milliseconds
    /// (deterministic: exponential with content-derived jitter).
    pub backoff_ms: u64,
}

/// A job that exhausted its retry budget, as streamed to the quarantine
/// sink (`failed.jsonl`). Carries everything an operator needs to triage:
/// which job, why it died (with the preserved panic payload and source
/// location), and the full attempt history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuarantineRecord {
    /// Hex fingerprint of the release (the memoization key).
    pub job_id: String,
    /// Hex fingerprint of the whole job (the journal key).
    pub job_fingerprint: String,
    /// Human-readable dataset label.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The k of k-anonymity.
    pub k: usize,
    /// Maximum allowed suppression.
    pub max_suppression: usize,
    /// The terminal failure that exhausted the budget.
    pub cause: JobStatus,
    /// Earlier failed attempts, in order (the terminal failure is
    /// `cause`, not repeated here).
    pub attempts: Vec<AttemptFailure>,
}

impl QuarantineRecord {
    /// The record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json()
    }
}

/// `null` → `Some(None)`; otherwise decode through `f`, failing loudly
/// (`None`) rather than silently dropping a malformed field.
fn decode_option<T>(v: &Value, f: impl FnOnce(&Value) -> Option<T>) -> Option<Option<T>> {
    match v {
        Value::Null => Some(None),
        other => f(other).map(Some),
    }
}

fn decode_status(v: &Value) -> Option<JobStatus> {
    if v.as_str() == Some("Ok") {
        return Some(JobStatus::Ok);
    }
    if let Some(body) = v.get("Failed") {
        return Some(JobStatus::Failed {
            message: body.get("message")?.as_str()?.to_owned(),
        });
    }
    if let Some(body) = v.get("Panicked") {
        return Some(JobStatus::Panicked {
            message: body.get("message")?.as_str()?.to_owned(),
        });
    }
    if let Some(body) = v.get("BudgetExceeded") {
        return Some(JobStatus::BudgetExceeded {
            budget_ms: body.get("budget_ms")?.as_u64()?,
        });
    }
    None
}

fn decode_metrics(v: &Value) -> Option<ReleaseMetrics> {
    Some(ReleaseMetrics {
        rows: v.get("rows")?.as_usize()?,
        classes: v.get("classes")?.as_usize()?,
        min_class_size: v.get("min_class_size")?.as_usize()?,
        suppressed: v.get("suppressed")?.as_usize()?,
        total_loss: v.get("total_loss")?.as_f64()?,
    })
}

fn decode_property(v: &Value) -> Option<PropertySummary> {
    Some(PropertySummary {
        name: v.get("name")?.as_str()?.to_owned(),
        values: v
            .get("values")?
            .as_array()?
            .iter()
            .map(Value::as_f64)
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvalRecord {
        EvalRecord {
            job_id: "00000000000000ab".into(),
            dataset: "census(rows=10, seed=1, zips=5)".into(),
            algorithm: "datafly".into(),
            k: 2,
            max_suppression: 1,
            seed: 99,
            status: JobStatus::Ok,
            metrics: Some(ReleaseMetrics {
                rows: 10,
                classes: 4,
                min_class_size: 2,
                suppressed: 0,
                total_loss: 3.5,
            }),
            release_digest: Some("00000000000000cd".into()),
            properties: vec![PropertySummary {
                name: "eq-class-size".into(),
                values: vec![2.0, 2.0, 3.0],
            }],
            duration_ms: 17,
            cache_hit: true,
        }
    }

    #[test]
    fn canonical_strips_scheduling_fields() {
        let r = sample();
        let c = r.canonical();
        assert_eq!(c.duration_ms, 0);
        assert!(!c.cache_hit);
        assert_eq!(c.job_id, r.job_id);
        assert_eq!(c.metrics, r.metrics);
        // Canonicalizing twice is a fixed point.
        assert_eq!(c.canonical(), c);
    }

    #[test]
    fn serializes_to_one_json_line() {
        let line = sample().to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"algorithm\":\"datafly\""));
        assert!(line.contains("\"status\":\"Ok\""));
        assert!(line.contains("\"min_class_size\":2"));
        assert!(line.contains("\"release_digest\":\"00000000000000cd\""));
    }

    #[test]
    fn error_statuses_serialize_tagged() {
        let mut r = sample();
        r.status = JobStatus::Panicked {
            message: "boom".into(),
        };
        r.metrics = None;
        let line = r.to_jsonl();
        assert!(line.contains("\"status\":{\"Panicked\":{\"message\":\"boom\"}}"));
        assert!(line.contains("\"metrics\":null"));
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let mut r = sample();
        // Exercise precision-sensitive corners: a seed above 2^53, floats
        // with long shortest representations, and a message needing
        // escapes.
        r.seed = u64::MAX;
        r.metrics.as_mut().unwrap().total_loss = 0.1 + 0.2;
        r.properties[0].values = vec![1e-9, -0.0, 2.5, f64::NAN];
        let line = r.to_jsonl();
        let parsed = EvalRecord::from_jsonl(&line).expect("parses");
        assert_eq!(parsed.to_jsonl(), line, "byte-identical re-serialization");
        assert_eq!(parsed.job_id, r.job_id);
        assert_eq!(parsed.seed, u64::MAX);
        assert_eq!(parsed.metrics, r.metrics);
        // NaN serialized as null comes back as NaN (PartialEq fails on
        // NaN, so compare the serialized forms above and spot-check here).
        assert!(parsed.properties[0].values[3].is_nan());
    }

    #[test]
    fn jsonl_round_trip_covers_every_status() {
        for status in [
            JobStatus::Ok,
            JobStatus::Failed {
                message: "no k-anonymous generalization under budget".into(),
            },
            JobStatus::Panicked {
                message: "index out of bounds\nat lattice.rs:12".into(),
            },
            JobStatus::BudgetExceeded { budget_ms: 1500 },
        ] {
            let mut r = sample();
            r.status = status.clone();
            if !status.is_ok() {
                r.metrics = None;
                r.release_digest = None;
                r.properties.clear();
            }
            let line = r.to_jsonl();
            let parsed = EvalRecord::from_jsonl(&line).expect("parses");
            assert_eq!(parsed.status, status);
            assert_eq!(parsed.to_jsonl(), line);
        }
    }

    #[test]
    fn torn_lines_are_rejected() {
        let line = sample().to_jsonl();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert_eq!(
                EvalRecord::from_jsonl(&line[..cut]),
                None,
                "prefix of {cut} bytes must not decode"
            );
        }
        assert_eq!(EvalRecord::from_jsonl("{}"), None);
        assert_eq!(EvalRecord::from_jsonl(""), None);
    }
}
