//! Machine-readable per-release evaluation records.
//!
//! Every job in a sweep — succeeded, failed, or budget-exceeded — yields
//! exactly one [`EvalRecord`]. Records serialize to one JSON object per
//! line (JSONL) so downstream tooling can stream them, and their
//! [`canonical`](EvalRecord::canonical) form strips the two
//! scheduling-dependent fields (`duration_ms`, `cache_hit`) so that byte
//! comparison of canonical records is a valid determinism check.

use anoncmp_core::prelude::PropertyVector;
use serde::Serialize;

/// How a job terminated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum JobStatus {
    /// The release was computed and measured.
    Ok,
    /// The algorithm returned an error (e.g. the constraint was
    /// unsatisfiable under the suppression budget).
    Failed {
        /// The algorithm's error message.
        message: String,
    },
    /// The algorithm panicked; the panic was caught and the sweep
    /// continued.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The job exceeded the engine's per-job wall-clock budget.
    BudgetExceeded {
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

impl JobStatus {
    /// Whether the job produced a release.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }
}

/// Scalar summary of a computed release.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReleaseMetrics {
    /// Tuples in the release (suppressed tuples excluded).
    pub rows: usize,
    /// Number of equivalence classes.
    pub classes: usize,
    /// Smallest equivalence class (the achieved k).
    pub min_class_size: usize,
    /// Tuples suppressed to satisfy the constraint.
    pub suppressed: usize,
    /// Classic generalization loss, summed over cells.
    pub total_loss: f64,
}

/// One extracted property vector, summarized for the record.
///
/// Records carry the full vector: the paper's comparators are functions of
/// whole vectors, and downstream tooling (bias reports, dominance checks)
/// needs every component, not just moments.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PropertySummary {
    /// The property's display name.
    pub name: String,
    /// The per-tuple values, in tuple order.
    pub values: Vec<f64>,
}

impl PropertySummary {
    /// Summarizes an extracted vector.
    pub fn of(vector: &PropertyVector) -> Self {
        PropertySummary {
            name: vector.name().to_owned(),
            values: vector.values().to_vec(),
        }
    }
}

/// The engine's record of one evaluation job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalRecord {
    /// Hex fingerprint of the release (the memoization key).
    pub job_id: String,
    /// Human-readable dataset label.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The k of k-anonymity.
    pub k: usize,
    /// Maximum allowed suppression.
    pub max_suppression: usize,
    /// The derived per-job seed the algorithm ran with.
    pub seed: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Release summary; `None` unless `status` is `Ok`.
    pub metrics: Option<ReleaseMetrics>,
    /// Hex content digest of the released table (cells + suppression
    /// mask, computed over integer codes, not rendered strings); `None`
    /// unless `status` is `Ok`. Stable across evaluation strategies:
    /// encoded and materialized lattice application digest identically.
    pub release_digest: Option<String>,
    /// Extracted property vectors, in requested order.
    pub properties: Vec<PropertySummary>,
    /// Wall-clock time this job occupied a worker, in milliseconds.
    /// Scheduling-dependent: excluded from [`EvalRecord::canonical`].
    pub duration_ms: u64,
    /// Whether the release came from the memoization cache.
    /// Scheduling-dependent: excluded from [`EvalRecord::canonical`].
    pub cache_hit: bool,
}

impl EvalRecord {
    /// The record with scheduling-dependent fields (`duration_ms`,
    /// `cache_hit`) zeroed. Two sweeps over the same jobs with the same
    /// root seed produce byte-identical canonical records regardless of
    /// `--jobs`, cache state, or scheduling order.
    pub fn canonical(&self) -> EvalRecord {
        EvalRecord {
            duration_ms: 0,
            cache_hit: false,
            ..self.clone()
        }
    }

    /// The record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvalRecord {
        EvalRecord {
            job_id: "00000000000000ab".into(),
            dataset: "census(rows=10, seed=1, zips=5)".into(),
            algorithm: "datafly".into(),
            k: 2,
            max_suppression: 1,
            seed: 99,
            status: JobStatus::Ok,
            metrics: Some(ReleaseMetrics {
                rows: 10,
                classes: 4,
                min_class_size: 2,
                suppressed: 0,
                total_loss: 3.5,
            }),
            release_digest: Some("00000000000000cd".into()),
            properties: vec![PropertySummary {
                name: "eq-class-size".into(),
                values: vec![2.0, 2.0, 3.0],
            }],
            duration_ms: 17,
            cache_hit: true,
        }
    }

    #[test]
    fn canonical_strips_scheduling_fields() {
        let r = sample();
        let c = r.canonical();
        assert_eq!(c.duration_ms, 0);
        assert!(!c.cache_hit);
        assert_eq!(c.job_id, r.job_id);
        assert_eq!(c.metrics, r.metrics);
        // Canonicalizing twice is a fixed point.
        assert_eq!(c.canonical(), c);
    }

    #[test]
    fn serializes_to_one_json_line() {
        let line = sample().to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"algorithm\":\"datafly\""));
        assert!(line.contains("\"status\":\"Ok\""));
        assert!(line.contains("\"min_class_size\":2"));
        assert!(line.contains("\"release_digest\":\"00000000000000cd\""));
    }

    #[test]
    fn error_statuses_serialize_tagged() {
        let mut r = sample();
        r.status = JobStatus::Panicked {
            message: "boom".into(),
        };
        r.metrics = None;
        let line = r.to_jsonl();
        assert!(line.contains("\"status\":{\"Panicked\":{\"message\":\"boom\"}}"));
        assert!(line.contains("\"metrics\":null"));
    }
}
