//! Content-addressed memoization of datasets and releases.
//!
//! The cache maps content fingerprints (see [`crate::fingerprint`]) to the
//! expensive artifacts of a sweep: synthesized [`Dataset`]s and anonymized
//! releases. Because the engine derives per-job seeds from the same
//! fingerprints, a cached release is bit-for-bit what a fresh computation
//! would produce — memoization never changes results, only wall-clock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anoncmp_core::prelude::PropertyVector;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset};
use parking_lot::Mutex;
use serde::Serialize;

/// Hit/miss counters of a [`MemoCache`], as exposed in sweep reports.
///
/// Counters cover *release* lookups only; dataset materialization is an
/// implementation detail and not part of the reported statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Release lookups served from the cache.
    pub hits: u64,
    /// Release lookups that had to compute.
    pub misses: u64,
    /// Releases currently stored.
    pub entries: u64,
}

impl CacheStats {
    /// Difference from an earlier snapshot — the activity of one sweep.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        // Saturating: a concurrent `clear()` can move counters backwards.
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// Thread-safe memoization cache shared by all workers of an [`Engine`].
///
/// [`Engine`]: crate::engine::Engine
#[derive(Debug, Default)]
pub struct MemoCache {
    releases: Mutex<HashMap<u64, Arc<AnonymizedTable>>>,
    datasets: Mutex<HashMap<u64, Arc<Dataset>>>,
    /// Extracted property vectors, keyed by (release *content* digest,
    /// property tag). Content addressing means a vector computed for one
    /// job serves every job whose release has the same cells — whatever
    /// algorithm or parameters produced it.
    vectors: Mutex<HashMap<(u64, &'static str), Arc<PropertyVector>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    vector_hits: AtomicU64,
    vector_misses: AtomicU64,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a release by fingerprint, counting a hit or miss.
    pub fn get_release(&self, fingerprint: u64) -> Option<Arc<AnonymizedTable>> {
        let found = self.releases.lock().get(&fingerprint).cloned();
        match found {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a computed release. Keeps the existing entry on a racing
    /// double-insert so every holder sees the same `Arc`.
    pub fn insert_release(
        &self,
        fingerprint: u64,
        table: Arc<AnonymizedTable>,
    ) -> Arc<AnonymizedTable> {
        self.releases
            .lock()
            .entry(fingerprint)
            .or_insert(table)
            .clone()
    }

    /// Materializes a dataset through the cache: synthesizes via `build`
    /// only if no other job has already done so.
    pub fn dataset_or_insert_with(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> Arc<Dataset>,
    ) -> Arc<Dataset> {
        if let Some(ds) = self.datasets.lock().get(&fingerprint).cloned() {
            return ds;
        }
        // Synthesize outside the lock; racing builders produce identical
        // datasets, and the entry API keeps whichever landed first.
        let built = build();
        self.datasets
            .lock()
            .entry(fingerprint)
            .or_insert(built)
            .clone()
    }

    /// Looks up an extracted property vector by release content digest and
    /// property tag, counting a vector-cache hit or miss.
    pub fn get_vector(&self, digest: u64, tag: &'static str) -> Option<Arc<PropertyVector>> {
        let found = self.vectors.lock().get(&(digest, tag)).cloned();
        match found {
            Some(v) => {
                self.vector_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.vector_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an extracted property vector. Keeps the existing entry on a
    /// racing double-insert so every holder sees the same `Arc`.
    pub fn insert_vector(
        &self,
        digest: u64,
        tag: &'static str,
        vector: Arc<PropertyVector>,
    ) -> Arc<PropertyVector> {
        self.vectors
            .lock()
            .entry((digest, tag))
            .or_insert(vector)
            .clone()
    }

    /// Vector-cache `(hits, misses)`. Scheduling-dependent — two workers
    /// racing on same-content releases can both miss — so these counters
    /// stay out of [`CacheStats`] and every determinism-compared report.
    pub fn vector_stats(&self) -> (u64, u64) {
        (
            self.vector_hits.load(Ordering::Relaxed),
            self.vector_misses.load(Ordering::Relaxed),
        )
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.releases.lock().len() as u64,
        }
    }

    /// Drops cached releases but keeps materialized datasets, extracted
    /// vectors (content-addressed, so still valid), and the counters.
    /// Benchmarks use this to re-measure anonymization cost without paying
    /// dataset synthesis on every iteration.
    pub fn clear_releases(&self) {
        self.releases.lock().clear();
    }

    /// Drops all cached artifacts and resets the counters.
    pub fn clear(&self) {
        self.releases.lock().clear();
        self.datasets.lock().clear();
        self.vectors.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.vector_hits.store(0, Ordering::Relaxed);
        self.vector_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Arc<Dataset> {
        crate::job::DatasetSpec::Census {
            rows: 30,
            seed: 3,
            zip_pool: 5,
        }
        .materialize()
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = MemoCache::new();
        assert!(cache.get_release(42).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 0));

        let ds = tiny_dataset();
        let table = anoncmp_anonymize::prelude::Anonymizer::anonymize(
            &anoncmp_anonymize::prelude::Datafly,
            &ds,
            &anoncmp_anonymize::prelude::Constraint::k_anonymity(2).with_suppression(3),
        )
        .expect("datafly on tiny census");
        cache.insert_release(42, Arc::new(table));
        assert!(cache.get_release(42).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        let delta = stats.since(&CacheStats {
            hits: 0,
            misses: 1,
            entries: 0,
        });
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn dataset_memoization_returns_shared_arc() {
        let cache = MemoCache::new();
        let a = cache.dataset_or_insert_with(7, tiny_dataset);
        let b = cache.dataset_or_insert_with(7, || panic!("must not rebuild a cached dataset"));
        assert!(Arc::ptr_eq(&a, &b));
    }
}
