//! Content-addressed memoization of datasets and releases.
//!
//! The cache maps content fingerprints (see [`crate::fingerprint`]) to the
//! expensive artifacts of a sweep: synthesized [`Dataset`]s and anonymized
//! releases. Because the engine derives per-job seeds from the same
//! fingerprints, a cached release is bit-for-bit what a fresh computation
//! would produce — memoization never changes results, only wall-clock.
//!
//! # Bounded operation
//!
//! A long-lived process (the `anoncmp-serve` daemon) cannot let the cache
//! grow without bound: every distinct release a client ever asked for
//! would stay resident forever. The release and property-vector maps are
//! therefore [`LruCache`]s — capacity-bounded, least-recently-used
//! eviction, O(1) per operation. Capacity `0` (the default) means
//! unbounded, which preserves the exact batch-sweep behavior the
//! experiments and benches rely on. Eviction never changes results: an
//! evicted release is recomputed from its spec with the same derived seed,
//! so the recomputation is bit-identical to the evicted entry.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anoncmp_core::prelude::PropertyVector;
use anoncmp_microdata::numeric::Release;
use anoncmp_microdata::prelude::Dataset;
use parking_lot::Mutex;
use serde::Serialize;

/// Hit/miss counters of a [`MemoCache`], as exposed in sweep reports.
///
/// Counters cover *release* lookups only; dataset materialization is an
/// implementation detail and not part of the reported statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Release lookups served from the cache.
    pub hits: u64,
    /// Release lookups that had to compute.
    pub misses: u64,
    /// Releases currently stored.
    pub entries: u64,
    /// Releases evicted to stay within the configured capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Difference from an earlier snapshot — the activity of one sweep.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        // Saturating: a concurrent `clear()` can move counters backwards.
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            entries: self.entries,
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

const NIL: usize = usize::MAX;

/// One slab slot of an [`LruCache`]: a key/value pair threaded into the
/// recency list.
#[derive(Debug)]
struct LruEntry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A capacity-bounded map with least-recently-used eviction.
///
/// Entries live in a slab (`Vec`) threaded into an intrusive doubly-linked
/// recency list; the index map points at slab slots. Every operation —
/// lookup (which refreshes recency), insert, evict — is O(1). Capacity `0`
/// means unbounded.
///
/// This is the eviction policy behind [`MemoCache`]'s release and vector
/// maps; it is generic so tests (and future cache layers) can exercise it
/// directly.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<LruEntry<K, V>>,
    free: Vec<usize>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl<K: Copy + Eq + Hash, V: Clone> LruCache<K, V> {
    /// An empty cache. `capacity == 0` means unbounded.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity, evicting least-recently-used entries if the
    /// cache currently exceeds the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity > 0 {
            while self.map.len() > capacity {
                self.evict_lru();
            }
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Inserts `key → value` unless present, returning the stored value
    /// (the existing one on a double-insert, so every holder sees the same
    /// `Arc`). Refreshes the entry's recency either way, evicting the
    /// least-recently-used entry when a fresh insert exceeds capacity.
    pub fn get_or_insert(&mut self, key: K, value: V) -> V {
        if let Some(&idx) = self.map.get(&key) {
            self.touch(idx);
            return self.slab[idx].value.clone();
        }
        if self.capacity > 0 && self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = LruEntry {
                    key,
                    value: value.clone(),
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(LruEntry {
                    key,
                    value: value.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        value
    }

    /// Drops every entry (capacity and the eviction counter are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Moves `idx` to the front (most recently used) of the recency list.
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        if idx == NIL {
            return;
        }
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
        self.evictions += 1;
    }
}

/// Thread-safe memoization cache shared by all workers of an [`Engine`].
///
/// [`Engine`]: crate::engine::Engine
#[derive(Debug)]
pub struct MemoCache {
    releases: Mutex<LruCache<u64, Arc<Release>>>,
    datasets: Mutex<HashMap<u64, Arc<Dataset>>>,
    /// Extracted property vectors, keyed by (release *content* digest,
    /// property tag). Content addressing means a vector computed for one
    /// job serves every job whose release has the same cells — whatever
    /// algorithm or parameters produced it.
    vectors: Mutex<LruCache<(u64, &'static str), Arc<PropertyVector>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    vector_hits: AtomicU64,
    vector_misses: AtomicU64,
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        MemoCache {
            releases: Mutex::new(LruCache::new(0)),
            datasets: Mutex::new(HashMap::new()),
            vectors: Mutex::new(LruCache::new(0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            vector_hits: AtomicU64::new(0),
            vector_misses: AtomicU64::new(0),
        }
    }

    /// Bounds the release and vector maps (`0` = unbounded), evicting
    /// least-recently-used entries immediately if either already exceeds
    /// its new capacity.
    pub fn set_capacity(&self, releases: usize, vectors: usize) {
        self.releases.lock().set_capacity(releases);
        self.vectors.lock().set_capacity(vectors);
    }

    /// Looks up a release (either family) by fingerprint, counting a hit
    /// or miss.
    pub fn get_release(&self, fingerprint: u64) -> Option<Arc<Release>> {
        let found = self.releases.lock().get(&fingerprint);
        match found {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a computed release. Keeps the existing entry on a racing
    /// double-insert so every holder sees the same `Arc`.
    pub fn insert_release(&self, fingerprint: u64, release: Arc<Release>) -> Arc<Release> {
        self.releases.lock().get_or_insert(fingerprint, release)
    }

    /// Materializes a dataset through the cache: synthesizes via `build`
    /// only if no other job has already done so.
    pub fn dataset_or_insert_with(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> Arc<Dataset>,
    ) -> Arc<Dataset> {
        if let Some(ds) = self.datasets.lock().get(&fingerprint).cloned() {
            return ds;
        }
        // Synthesize outside the lock; racing builders produce identical
        // datasets, and the entry API keeps whichever landed first.
        let built = build();
        self.datasets
            .lock()
            .entry(fingerprint)
            .or_insert(built)
            .clone()
    }

    /// Looks up an extracted property vector by release content digest and
    /// property tag, counting a vector-cache hit or miss.
    pub fn get_vector(&self, digest: u64, tag: &'static str) -> Option<Arc<PropertyVector>> {
        let found = self.vectors.lock().get(&(digest, tag));
        match found {
            Some(v) => {
                self.vector_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.vector_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an extracted property vector. Keeps the existing entry on a
    /// racing double-insert so every holder sees the same `Arc`.
    pub fn insert_vector(
        &self,
        digest: u64,
        tag: &'static str,
        vector: Arc<PropertyVector>,
    ) -> Arc<PropertyVector> {
        self.vectors.lock().get_or_insert((digest, tag), vector)
    }

    /// Vector-cache `(hits, misses)`. Scheduling-dependent — two workers
    /// racing on same-content releases can both miss — so these counters
    /// stay out of [`CacheStats`] and every determinism-compared report.
    pub fn vector_stats(&self) -> (u64, u64) {
        (
            self.vector_hits.load(Ordering::Relaxed),
            self.vector_misses.load(Ordering::Relaxed),
        )
    }

    /// Property vectors evicted to stay within the vector-map capacity.
    pub fn vector_evictions(&self) -> u64 {
        self.vectors.lock().evictions()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let releases = self.releases.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: releases.len() as u64,
            evictions: releases.evictions(),
        }
    }

    /// Drops cached releases but keeps materialized datasets, extracted
    /// vectors (content-addressed, so still valid), and the counters.
    /// Benchmarks use this to re-measure anonymization cost without paying
    /// dataset synthesis on every iteration.
    pub fn clear_releases(&self) {
        self.releases.lock().clear();
    }

    /// Drops all cached artifacts and resets the counters.
    pub fn clear(&self) {
        self.releases.lock().clear();
        self.datasets.lock().clear();
        self.vectors.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.vector_hits.store(0, Ordering::Relaxed);
        self.vector_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Arc<Dataset> {
        crate::job::DatasetSpec::Census {
            rows: 30,
            seed: 3,
            zip_pool: 5,
        }
        .materialize()
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = MemoCache::new();
        assert!(cache.get_release(42).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 0));

        let ds = tiny_dataset();
        let table = anoncmp_anonymize::prelude::Anonymizer::anonymize(
            &anoncmp_anonymize::prelude::Datafly,
            &ds,
            &anoncmp_anonymize::prelude::Constraint::k_anonymity(2).with_suppression(3),
        )
        .expect("datafly on tiny census");
        cache.insert_release(42, Arc::new(Release::Generalized(table)));
        assert!(cache.get_release(42).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

        let delta = stats.since(&CacheStats {
            hits: 0,
            misses: 1,
            entries: 0,
            evictions: 0,
        });
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn dataset_memoization_returns_shared_arc() {
        let cache = MemoCache::new();
        let a = cache.dataset_or_insert_with(7, tiny_dataset);
        let b = cache.dataset_or_insert_with(7, || panic!("must not rebuild a cached dataset"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut lru: LruCache<u64, u64> = LruCache::new(3);
        for k in 1..=3u64 {
            lru.get_or_insert(k, k * 10);
        }
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(lru.get(&1), Some(10));
        lru.get_or_insert(4, 40);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.get(&2), None, "least recently used entry evicted");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.get(&4), Some(40));
    }

    #[test]
    fn lru_double_insert_keeps_first_value_and_refreshes_recency() {
        let mut lru: LruCache<u64, u64> = LruCache::new(2);
        lru.get_or_insert(1, 100);
        lru.get_or_insert(2, 200);
        // Double-insert of 1: value kept, recency refreshed → 2 is LRU.
        assert_eq!(lru.get_or_insert(1, 999), 100);
        lru.get_or_insert(3, 300);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(100));
    }

    #[test]
    fn lru_unbounded_never_evicts() {
        let mut lru: LruCache<u64, u64> = LruCache::new(0);
        for k in 0..10_000u64 {
            lru.get_or_insert(k, k);
        }
        assert_eq!(lru.len(), 10_000);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn lru_capacity_shrink_evicts_down() {
        let mut lru: LruCache<u64, u64> = LruCache::new(0);
        for k in 0..8u64 {
            lru.get_or_insert(k, k);
        }
        lru.set_capacity(3);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions(), 5);
        // The three most recently inserted survive.
        for k in 5..8u64 {
            assert_eq!(lru.get(&k), Some(k));
        }
    }

    #[test]
    fn lru_slab_slots_are_reused() {
        let mut lru: LruCache<u64, u64> = LruCache::new(2);
        for k in 0..100u64 {
            lru.get_or_insert(k, k);
        }
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 98);
        assert!(
            lru.slab.len() <= 3,
            "evicted slots recycled through the free list"
        );
    }

    #[test]
    fn bounded_release_cache_recomputes_after_eviction() {
        let cache = MemoCache::new();
        cache.set_capacity(1, 0);
        let ds = tiny_dataset();
        let table = Arc::new(Release::Generalized(
            anoncmp_anonymize::prelude::Anonymizer::anonymize(
                &anoncmp_anonymize::prelude::Datafly,
                &ds,
                &anoncmp_anonymize::prelude::Constraint::k_anonymity(2).with_suppression(3),
            )
            .expect("datafly on tiny census"),
        ));
        cache.insert_release(1, table.clone());
        cache.insert_release(2, table);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get_release(1).is_none(), "entry 1 was evicted");
        assert!(cache.get_release(2).is_some());
    }
}
