//! Sharded multi-process sweep execution with deterministic merge.
//!
//! A single [`Engine`] process is bounded by one machine-process's cores.
//! This module shards a sweep grid across N worker **processes**, using
//! the PR 4 write-ahead [`Journal`] as the coordination substrate, and
//! merges the per-shard journals into an artifact that is byte-identical
//! to a single-process run.
//!
//! # Shard planner
//!
//! The grid is partitioned by **content fingerprint**, never by position:
//! shard `i` of `S` owns the job-fingerprint range
//! `[⌈i·2⁶⁴/S⌉, ⌈(i+1)·2⁶⁴/S⌉ − 1]`, and [`shard_of`] computes
//! `⌊fp·S/2⁶⁴⌋` — provably the index of the unique range containing
//! `fp`. Because [`EvalJob::job_fingerprint`] depends only on the job's
//! content, the assignment is a pure function of `(job, shard count)`:
//! every job lands in exactly one shard, and the mapping is independent
//! of worker count, scheduling, and wall clock. Workers drain a queue of
//! shards, so `--workers` only changes *who* runs a shard, never *what*
//! a shard contains.
//!
//! # Worker protocol
//!
//! The supervisor spawns ordinary child processes and passes the
//! assignment through environment variables (`ANONCMP_DIST_DIR`,
//! `ANONCMP_DIST_SHARD`); any binary that calls [`run_worker_from_env`]
//! early in `main` can serve as a worker. A worker loads the shared
//! `spec.json`, filters the expanded grid to its shard, resumes the
//! per-shard journal `shard-<i>.jsonl` (whose header binds it to the
//! shard's fingerprint range — see [`ShardMeta`]), runs the existing
//! [`Engine`] against the remainder, and exits 0 after writing
//! `shard-<i>.summary.json`. While running it heartbeats
//! `shard-<i>.hb` (atomic tmp+rename) with a beat counter and the
//! journal-append progress marker.
//!
//! # Failure and reassignment
//!
//! The supervisor polls children for exit and heartbeat freshness. A
//! worker that dies (any abnormal exit, e.g. `kill -9`) or stalls (no
//! heartbeat change within the stall timeout — such workers are killed)
//! has its shard requeued; the next free worker resumes the shard's
//! journal and repeats **no work**, because everything the dead worker
//! completed was fsync'd before it was reported. [`DistChaos`] extends
//! the PR 4 chaos layer to whole-worker loss: a seeded, content-derived
//! plan aborts one worker (`std::process::abort`, no cleanup) after an
//! exact number of journal appends, and tests assert exact-count healing
//! (`resumed == kill_after` on the respawn).
//!
//! # Merge proof
//!
//! [`merge_shards`] replays every shard journal, drops duplicate
//! envelopes (same fingerprint and identical canonical record — a
//! reassigned shard may re-emit records replay already served), and
//! writes one canonical envelope line per unique grid job **in
//! submission order**. Canonical lines zero the scheduling-dependent
//! fields (`duration_ms`, `cache_hit`) and recompute the CRC, so the
//! merged artifact is a pure function of the grid and the records —
//! byte-identical across worker counts, shard counts, and kill points,
//! and identical to a single-process journal passed through the same
//! canonicalization ([`canonical_journal`]). Two records for the same
//! fingerprint that differ canonically would mean nondeterminism; the
//! merge refuses with `InvalidData` rather than pick one.
//!
//! [`EvalJob::job_fingerprint`]: crate::job::EvalJob::job_fingerprint

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use anoncmp_core::wire::WireDataset;
use serde::json::Value;
use serde::Serialize;

use crate::chaos::ChaosConfig;
use crate::engine::{Engine, EngineConfig};
use crate::fingerprint::derive_seed;
use crate::job::{AlgorithmSpec, DatasetSpec, EvalJob, PropertySpec};
use crate::journal::{Journal, ShardMeta};
use crate::record::EvalRecord;

/// Environment variable carrying the dist directory to a worker process.
pub const ENV_DIR: &str = "ANONCMP_DIST_DIR";
/// Environment variable carrying the worker's shard index.
pub const ENV_SHARD: &str = "ANONCMP_DIST_SHARD";
/// Chaos: abort the worker process after this many journal appends.
pub const ENV_ABORT_AFTER: &str = "ANONCMP_DIST_ABORT_AFTER";
/// Chaos: hang the worker (no heartbeats) for this many milliseconds
/// before doing anything, to exercise stall detection.
pub const ENV_HANG_MS: &str = "ANONCMP_DIST_HANG_MS";

/// How often a worker refreshes its heartbeat file.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(25);

/// An inclusive job-fingerprint range owned by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Inclusive low end.
    pub lo: u64,
    /// Inclusive high end.
    pub hi: u64,
}

impl ShardRange {
    /// Whether the fingerprint falls inside this range.
    pub fn contains(&self, fingerprint: u64) -> bool {
        (self.lo..=self.hi).contains(&fingerprint)
    }
}

/// Plans `shards` contiguous fingerprint ranges that exactly partition
/// the `u64` space: shard `i` covers `[⌈i·2⁶⁴/S⌉, ⌈(i+1)·2⁶⁴/S⌉ − 1]`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn plan_shards(shards: usize) -> Vec<ShardRange> {
    assert!(shards > 0, "a shard plan needs at least one shard");
    let s = shards as u128;
    (0..shards)
        .map(|i| {
            let lo = ((i as u128) << 64).div_ceil(s) as u64;
            let hi = if i + 1 == shards {
                u64::MAX
            } else {
                ((((i + 1) as u128) << 64).div_ceil(s) - 1) as u64
            };
            ShardRange { lo, hi }
        })
        .collect()
}

/// The shard owning `fingerprint` under a `shards`-way plan:
/// `⌊fingerprint·shards/2⁶⁴⌋`, consistent with [`plan_shards`] by
/// construction (`⌊fp·S/2⁶⁴⌋ = i  ⇔  ⌈i·2⁶⁴/S⌉ ≤ fp < ⌈(i+1)·2⁶⁴/S⌉`).
pub fn shard_of(fingerprint: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((fingerprint as u128 * shards as u128) >> 64) as usize
}

/// A self-contained, serializable description of a sweep grid — the one
/// artifact (`spec.json`) supervisor and workers must agree on.
///
/// Algorithms and properties are carried by wire name so the spec stays
/// a plain-text contract; empty lists mean the defaults (the paper's
/// standard suite, `["eq-class-size"]`).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Dataset every grid point anonymizes.
    pub dataset: WireDataset,
    /// Algorithm wire names (empty = the standard suite).
    pub algorithms: Vec<String>,
    /// The k values of the sweep (outer grid axis).
    pub ks: Vec<usize>,
    /// Suppression budget shared by every grid point.
    pub max_suppression: usize,
    /// Property tags every grid point extracts (empty = eq-class-size).
    pub properties: Vec<String>,
    /// Engine root seed (per-job seeds derive from it plus content).
    pub root_seed: u64,
    /// Shard count of the plan. Fixed per run and independent of the
    /// worker count, so the job→shard assignment never moves.
    pub shards: usize,
    /// Worker-internal engine threads (`0` = auto: cores ÷ shards).
    pub engine_jobs: usize,
}

impl GridSpec {
    /// Expands the grid into jobs, k-major then algorithm — the
    /// submission order the merged journal is canonical in. Unknown
    /// algorithm or property names are an error (mock algorithms are
    /// not reachable from a spec).
    pub fn jobs(&self) -> Result<Vec<EvalJob>, String> {
        let algorithms: Vec<AlgorithmSpec> = if self.algorithms.is_empty() {
            AlgorithmSpec::standard_suite()
        } else {
            self.algorithms
                .iter()
                .map(|name| {
                    AlgorithmSpec::by_name(name)
                        .ok_or_else(|| format!("unknown algorithm {name:?}"))
                })
                .collect::<Result<_, _>>()?
        };
        let properties: Vec<PropertySpec> = if self.properties.is_empty() {
            vec![PropertySpec::EqClassSize]
        } else {
            self.properties
                .iter()
                .map(|tag| {
                    PropertySpec::by_tag(tag).ok_or_else(|| format!("unknown property {tag:?}"))
                })
                .collect::<Result<_, _>>()?
        };
        let dataset = match self.dataset {
            WireDataset::Census {
                rows,
                seed,
                zip_pool,
            } => DatasetSpec::Census {
                rows,
                seed,
                zip_pool,
            },
            WireDataset::Hospital { rows, seed } => DatasetSpec::Hospital { rows, seed },
        };
        let mut jobs = Vec::with_capacity(self.ks.len() * algorithms.len());
        for &k in &self.ks {
            for algorithm in &algorithms {
                jobs.push(EvalJob {
                    dataset: dataset.clone(),
                    algorithm: *algorithm,
                    k,
                    max_suppression: self.max_suppression,
                    properties: properties.clone(),
                });
            }
        }
        Ok(jobs)
    }

    /// The shard-journal header metadata for one shard of this spec.
    pub fn shard_meta(&self, shard: usize) -> ShardMeta {
        let range = plan_shards(self.shards)[shard];
        ShardMeta {
            index: shard,
            of: self.shards,
            lo: range.lo,
            hi: range.hi,
        }
    }

    /// Renders the spec as one JSON line.
    pub fn to_json(&self) -> String {
        let mut dataset = String::new();
        self.dataset.serialize_json(&mut dataset);
        let mut out = String::new();
        out.push_str("{\"v\":1,\"dataset\":");
        out.push_str(&dataset);
        out.push_str(",\"algorithms\":");
        self.algorithms.serialize_json(&mut out);
        out.push_str(",\"ks\":");
        self.ks.serialize_json(&mut out);
        out.push_str(&format!(",\"max_suppression\":{}", self.max_suppression));
        out.push_str(",\"properties\":");
        self.properties.serialize_json(&mut out);
        out.push_str(&format!(
            ",\"root_seed\":{},\"shards\":{},\"engine_jobs\":{}}}",
            self.root_seed, self.shards, self.engine_jobs
        ));
        out
    }

    /// Decodes a spec, strictly: every field must be present and valid.
    pub fn from_value(v: &Value) -> Result<GridSpec, String> {
        if v.get("v").and_then(Value::as_u64) != Some(1) {
            return Err("spec: missing or unsupported \"v\"".into());
        }
        let strings = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("spec: missing {key:?}"))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("spec: non-string entry in {key:?}"))
                })
                .collect()
        };
        Ok(GridSpec {
            dataset: WireDataset::from_value(v.get("dataset").ok_or("spec: missing \"dataset\"")?)?,
            algorithms: strings("algorithms")?,
            ks: v
                .get("ks")
                .and_then(Value::as_array)
                .ok_or("spec: missing \"ks\"")?
                .iter()
                .map(|k| k.as_usize().ok_or_else(|| "spec: invalid k".to_owned()))
                .collect::<Result<_, _>>()?,
            max_suppression: v
                .get("max_suppression")
                .and_then(Value::as_usize)
                .ok_or("spec: missing \"max_suppression\"")?,
            properties: strings("properties")?,
            root_seed: v
                .get("root_seed")
                .and_then(Value::as_u64)
                .ok_or("spec: missing \"root_seed\"")?,
            shards: v
                .get("shards")
                .and_then(Value::as_usize)
                .filter(|&s| s > 0)
                .ok_or("spec: missing or zero \"shards\"")?,
            engine_jobs: v
                .get("engine_jobs")
                .and_then(Value::as_usize)
                .ok_or("spec: missing \"engine_jobs\"")?,
        })
    }

    /// Loads a spec from a `spec.json` file.
    pub fn load(path: &Path) -> io::Result<GridSpec> {
        let text = fs::read_to_string(path)?;
        let value = serde::json::parse(text.trim())
            .ok_or_else(|| invalid_data(format!("{}: not JSON", path.display())))?;
        GridSpec::from_value(&value).map_err(invalid_data)
    }

    /// Saves the spec as `spec.json` in `dir`.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join("spec.json");
        fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }
}

/// Seeded whole-worker-loss chaos for the supervisor.
#[derive(Debug, Clone, Copy)]
pub struct DistChaos {
    /// Seed the kill plan derives from.
    pub seed: u64,
}

/// The concrete kill decision a [`DistChaos`] seed produces for a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The shard whose first worker is killed.
    pub victim: usize,
    /// Journal appends the victim fsyncs before aborting — strictly
    /// between 1 and `jobs − 1`, so the worker dies mid-shard.
    pub kill_after: u64,
}

impl DistChaos {
    /// Plans the kill, content-derived and scheduling-independent: the
    /// victim is the shard with the most jobs (lowest index on ties; a
    /// shard needs ≥ 2 jobs to die *mid*-sweep), and the kill point is
    /// `1 + derive_seed(seed, victim) mod (jobs − 1)`. Returns `None`
    /// when no shard has at least two jobs.
    pub fn plan(&self, shard_jobs: &[usize]) -> Option<ChaosPlan> {
        let mut victim: Option<(usize, usize)> = None;
        for (shard, &jobs) in shard_jobs.iter().enumerate() {
            let beats = match victim {
                None => true,
                Some((_, best)) => jobs > best,
            };
            if jobs >= 2 && beats {
                victim = Some((shard, jobs));
            }
        }
        let (victim, jobs) = victim?;
        let kill_after = 1 + derive_seed(self.seed, victim as u64) % (jobs as u64 - 1);
        Some(ChaosPlan { victim, kill_after })
    }
}

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Directory holding `spec.json`, the per-shard journals, heartbeat
    /// and summary files, and the merged artifact.
    pub dir: PathBuf,
    /// Worker processes to run concurrently (at least 1).
    pub workers: usize,
    /// Reuse existing shard journals (and `spec.json`) instead of
    /// starting fresh. The saved spec must match.
    pub resume: bool,
    /// A worker whose heartbeat does not change for this long is
    /// presumed stalled: it is killed and its shard reassigned. Must be
    /// generously larger than the 25 ms heartbeat interval.
    pub stall_timeout: Duration,
    /// How often the supervisor polls children and heartbeats.
    pub poll_interval: Duration,
    /// Worker deaths tolerated across the whole run before the
    /// supervisor gives up.
    pub max_restarts: u32,
    /// Seeded whole-worker-loss injection (tests and CI drills).
    pub chaos: Option<DistChaos>,
    /// Test hook: hang this shard's *first* worker (no heartbeats) so
    /// stall detection has something to detect.
    pub hang_first: Option<usize>,
}

impl DistConfig {
    /// A config with production defaults (10 s stall timeout, 4
    /// tolerated restarts, no chaos).
    pub fn new(dir: impl Into<PathBuf>, workers: usize) -> DistConfig {
        DistConfig {
            dir: dir.into(),
            workers: workers.max(1),
            resume: false,
            stall_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(10),
            max_restarts: 4,
            chaos: None,
            hang_first: None,
        }
    }
}

/// How the supervisor launches a worker process. The program must call
/// [`run_worker_from_env`] early in `main` (the `anoncmp dist-worker`
/// subcommand does exactly that).
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable to spawn.
    pub program: PathBuf,
    /// Arguments to pass (the shard assignment itself travels via
    /// environment variables).
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command running `program args…`.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args,
        }
    }

    /// A worker command re-executing the current binary with `args`.
    pub fn current_exe(args: Vec<String>) -> io::Result<WorkerCommand> {
        Ok(WorkerCommand {
            program: std::env::current_exe()?,
            args,
        })
    }
}

/// What one worker reports after finishing its shard (the content of
/// `shard-<i>.summary.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The shard this summary belongs to.
    pub shard: usize,
    /// Grid jobs assigned to the shard.
    pub jobs: usize,
    /// Record entries in the shard journal (replayed + appended).
    pub records: u64,
    /// Jobs served from the resumed journal instead of recomputed.
    pub resumed: usize,
    /// Jobs quarantined during this worker's run.
    pub quarantined: u64,
    /// Wall-clock milliseconds the worker spent on the sweep.
    pub wall_ms: u64,
}

impl WorkerSummary {
    /// Renders the summary as one JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\":{},\"jobs\":{},\"records\":{},\"resumed\":{},\"quarantined\":{},\"wall_ms\":{}}}",
            self.shard, self.jobs, self.records, self.resumed, self.quarantined, self.wall_ms
        )
    }

    /// Decodes a summary, strictly.
    pub fn from_value(v: &Value) -> Result<WorkerSummary, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("summary: missing {key:?}"))
        };
        Ok(WorkerSummary {
            shard: field("shard")? as usize,
            jobs: field("jobs")? as usize,
            records: field("records")?,
            resumed: field("resumed")? as usize,
            quarantined: field("quarantined")?,
            wall_ms: field("wall_ms")?,
        })
    }

    fn load(path: &Path) -> io::Result<WorkerSummary> {
        let text = fs::read_to_string(path)?;
        let value = serde::json::parse(text.trim())
            .ok_or_else(|| invalid_data(format!("{}: not JSON", path.display())))?;
        WorkerSummary::from_value(&value).map_err(invalid_data)
    }
}

/// Per-shard accounting in the final [`DistReport`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Worker slot (0-based, `< workers`) that completed the shard.
    pub worker_slot: usize,
    /// Grid jobs in the shard.
    pub jobs: usize,
    /// Record entries in the shard journal.
    pub records: u64,
    /// Jobs the completing worker served from the journal — nonzero
    /// exactly when the shard was resumed or reassigned mid-flight.
    pub resumed: usize,
    /// Jobs quarantined by the completing worker.
    pub quarantined: u64,
    /// Worker deaths this shard survived.
    pub restarts: u32,
    /// Wall-clock milliseconds of the completing worker's sweep.
    pub wall_ms: u64,
}

/// What [`merge_shards`] did.
#[derive(Debug, Clone, Copy)]
pub struct MergeReport {
    /// Unique grid jobs with a merged record.
    pub merged: usize,
    /// Duplicate envelopes dropped (same fingerprint, identical
    /// canonical record) — re-emissions from reassigned shards.
    pub duplicates_dropped: usize,
    /// Unique grid jobs with no journaled record (transient-only
    /// failures that were quarantined rather than checkpointed).
    pub missing: usize,
    /// Bytes written to the merged artifact.
    pub bytes: u64,
    /// Wall-clock milliseconds the merge took.
    pub wall_ms: u64,
}

/// The supervisor's final report.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Unique jobs in the expanded grid.
    pub jobs: usize,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Worker deaths (crash or stall) healed by reassignment.
    pub restarts: u32,
    /// Merge accounting.
    pub merge: MergeReport,
    /// Path of the merged canonical journal.
    pub merged_path: PathBuf,
    /// Wall-clock milliseconds for the whole run, merge included.
    pub wall_ms: u64,
}

impl DistReport {
    /// Total quarantined jobs across shards.
    pub fn quarantined_total(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined).sum()
    }

    /// One fixed-format line for logs and CI greps, mirroring the
    /// engine's `resilience_summary`.
    pub fn resilience_summary(&self) -> String {
        format!(
            "dist resilience: {} worker restart{}, {} quarantined",
            self.restarts,
            if self.restarts == 1 { "" } else { "s" },
            self.quarantined_total()
        )
    }
}

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn shard_journal(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.jsonl"))
}

/// Writes `bytes` to `path` atomically (tmp file + rename), so readers
/// never observe a torn heartbeat or summary.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Runs one shard in this process: resume the shard journal, sweep the
/// shard's jobs, heartbeat throughout, and write the summary file.
/// `abort_after`/`hang` are the chaos hooks ([`ENV_ABORT_AFTER`],
/// [`ENV_HANG_MS`]).
pub fn run_worker(
    dir: &Path,
    shard: usize,
    abort_after: Option<u64>,
    hang: Option<Duration>,
) -> io::Result<WorkerSummary> {
    if let Some(pause) = hang {
        // Chaos: a wedged worker — alive as a process, but making no
        // progress and writing no heartbeats.
        thread::sleep(pause);
    }
    let spec = GridSpec::load(&dir.join("spec.json"))?;
    if shard >= spec.shards {
        return Err(invalid_data(format!(
            "shard {shard} out of range for a {}-shard plan",
            spec.shards
        )));
    }
    let jobs: Vec<EvalJob> = spec
        .jobs()
        .map_err(invalid_data)?
        .into_iter()
        .filter(|job| shard_of(job.job_fingerprint(), spec.shards) == shard)
        .collect();
    let engine_jobs = if spec.engine_jobs > 0 {
        spec.engine_jobs
    } else {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        (cores / spec.shards).max(1)
    };
    let engine = Arc::new(Engine::new(EngineConfig {
        jobs: engine_jobs,
        root_seed: spec.root_seed,
        chaos: abort_after.map(ChaosConfig::abort_after),
        ..EngineConfig::default()
    }));
    engine.resume_sharded(shard_journal(dir, shard), spec.shard_meta(shard))?;
    let quarantine = File::create(dir.join(format!("shard-{shard}.failed.jsonl")))?;
    engine.set_quarantine_sink(Some(Box::new(quarantine)));

    let heartbeat_path = dir.join(format!("shard-{shard}.hb"));
    let stop = Arc::new(AtomicBool::new(false));
    let beats = {
        let stop = Arc::clone(&stop);
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            let mut beat = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let marker = format!("beat={beat} records={}\n", engine.journal_appends());
                let _ = write_atomic(&heartbeat_path, marker.as_bytes());
                beat += 1;
                thread::sleep(HEARTBEAT_INTERVAL);
            }
        })
    };

    let started = Instant::now();
    let sweep = engine.run(&jobs);
    stop.store(true, Ordering::Relaxed);
    let _ = beats.join();

    let records = engine.journal_appends();
    engine.set_quarantine_sink(None);
    engine.detach_journal();
    let summary = WorkerSummary {
        shard,
        jobs: jobs.len(),
        records,
        resumed: sweep.resumed,
        quarantined: sweep.quarantined,
        wall_ms: started.elapsed().as_millis() as u64,
    };
    write_atomic(
        &dir.join(format!("shard-{shard}.summary.json")),
        format!("{}\n", summary.to_json()).as_bytes(),
    )?;
    Ok(summary)
}

/// Worker entry point: if the [`ENV_DIR`]/[`ENV_SHARD`] assignment is
/// present in the environment, run the shard and return its summary;
/// otherwise return `Ok(None)` (this process is not a worker). Any
/// binary may call this first thing in `main` to become spawnable by
/// [`run_supervisor`].
pub fn run_worker_from_env() -> io::Result<Option<WorkerSummary>> {
    let Some(dir) = std::env::var_os(ENV_DIR) else {
        return Ok(None);
    };
    let shard = std::env::var(ENV_SHARD)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid_data(format!("{ENV_SHARD} missing or invalid")))?;
    let abort_after = std::env::var(ENV_ABORT_AFTER)
        .ok()
        .and_then(|s| s.parse().ok());
    let hang = std::env::var(ENV_HANG_MS)
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Duration::from_millis);
    run_worker(Path::new(&dir), shard, abort_after, hang).map(Some)
}

/// Renders the canonical journal text for a grid: one envelope line per
/// unique job in submission order, records canonicalized (timing fields
/// zeroed, CRC recomputed). Returns `(text, merged, missing)`. This is
/// the merge's output format *and* the reference a single-process
/// journal is compared against in tests.
pub fn canonical_journal(
    jobs: &[EvalJob],
    completed: &HashMap<u64, EvalRecord>,
) -> (String, usize, usize) {
    let mut text = String::new();
    let mut seen = HashSet::new();
    let (mut merged, mut missing) = (0usize, 0usize);
    for job in jobs {
        let fingerprint = job.job_fingerprint();
        if !seen.insert(fingerprint) {
            continue;
        }
        match completed.get(&fingerprint) {
            Some(record) => {
                text.push_str(&Journal::entry_line(fingerprint, &record.canonical()));
                text.push('\n');
                merged += 1;
            }
            None => missing += 1,
        }
    }
    (text, merged, missing)
}

/// Merges the per-shard journals under `dir` into one canonical journal
/// at `out` — byte-identical across worker counts, shard counts, and
/// kill points (see the module docs for the argument). Duplicate
/// envelopes are dropped; two *different* canonical records for one
/// fingerprint are `InvalidData`.
pub fn merge_shards(dir: &Path, spec: &GridSpec, out: &Path) -> io::Result<MergeReport> {
    let started = Instant::now();
    let jobs = spec.jobs().map_err(invalid_data)?;
    let mut combined: HashMap<u64, EvalRecord> = HashMap::new();
    let mut duplicates = 0usize;
    for shard in 0..spec.shards {
        let replay = Journal::replay(shard_journal(dir, shard))?;
        if let Some(meta) = replay.shard {
            if meta.of != spec.shards || meta.index != shard {
                return Err(invalid_data(format!(
                    "shard journal {shard} carries mismatched metadata {meta:?}"
                )));
            }
        }
        duplicates += replay.entries - replay.completed.len();
        for (fingerprint, record) in replay.completed {
            let canonical = record.canonical();
            match combined.entry(fingerprint) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    if *slot.get() != canonical {
                        return Err(invalid_data(format!(
                            "fingerprint {fingerprint:016x} has two different canonical records \
                             across shard journals — nondeterministic worker output"
                        )));
                    }
                    duplicates += 1;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(canonical);
                }
            }
        }
    }
    let (text, merged, missing) = canonical_journal(&jobs, &combined);
    let tmp = out.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
    }
    fs::rename(&tmp, out)?;
    Ok(MergeReport {
        merged,
        duplicates_dropped: duplicates,
        missing,
        bytes: text.len() as u64,
        wall_ms: started.elapsed().as_millis() as u64,
    })
}

/// One live child the supervisor is tracking.
struct RunningWorker {
    shard: usize,
    slot: usize,
    child: Child,
    heartbeat_path: PathBuf,
    last_heartbeat: Option<Vec<u8>>,
    last_progress: Instant,
}

/// Runs the full distributed sweep: plan shards, spawn up to
/// `config.workers` worker processes over the shard queue, monitor
/// exits and heartbeats (reassigning the shard of any dead or stalled
/// worker), and merge the shard journals into `merged.jsonl`.
pub fn run_supervisor(
    spec: &GridSpec,
    config: &DistConfig,
    worker: &WorkerCommand,
) -> io::Result<DistReport> {
    let started = Instant::now();
    fs::create_dir_all(&config.dir)?;
    let jobs = spec.jobs().map_err(invalid_data)?;

    // Unique jobs per shard (duplicate submissions alias one record).
    let mut per_shard = vec![0usize; spec.shards];
    let mut seen = HashSet::new();
    for job in &jobs {
        let fingerprint = job.job_fingerprint();
        if seen.insert(fingerprint) {
            per_shard[shard_of(fingerprint, spec.shards)] += 1;
        }
    }

    let spec_path = config.dir.join("spec.json");
    if config.resume && spec_path.exists() {
        let existing = GridSpec::load(&spec_path)?;
        if existing != *spec {
            return Err(invalid_data(format!(
                "resume refused: {} holds a different grid spec",
                spec_path.display()
            )));
        }
    } else {
        if !config.resume {
            for shard in 0..spec.shards {
                for suffix in ["jsonl", "failed.jsonl", "hb", "summary.json"] {
                    let _ = fs::remove_file(config.dir.join(format!("shard-{shard}.{suffix}")));
                }
            }
            let _ = fs::remove_file(config.dir.join("merged.jsonl"));
        }
        spec.save(&config.dir)?;
    }

    let mut armed_chaos = config.chaos.and_then(|chaos| chaos.plan(&per_shard));
    let mut armed_hang = config.hang_first;
    let mut queue: VecDeque<usize> = (0..spec.shards).filter(|&s| per_shard[s] > 0).collect();
    let mut outcomes: Vec<Option<ShardOutcome>> = (0..spec.shards)
        .map(|shard| {
            (per_shard[shard] == 0).then_some(ShardOutcome {
                shard,
                worker_slot: 0,
                jobs: 0,
                records: 0,
                resumed: 0,
                quarantined: 0,
                restarts: 0,
                wall_ms: 0,
            })
        })
        .collect();
    let mut running: Vec<RunningWorker> = Vec::new();
    let mut free_slots: Vec<usize> = (0..config.workers.max(1)).rev().collect();
    let mut shard_restarts = vec![0u32; spec.shards];
    let mut restarts_total = 0u32;

    loop {
        while let (Some(&shard), Some(&slot)) = (queue.front(), free_slots.last()) {
            queue.pop_front();
            free_slots.pop();
            // A stale summary from an earlier incarnation must not be
            // mistaken for this worker's result.
            let _ = fs::remove_file(config.dir.join(format!("shard-{shard}.summary.json")));
            let mut command = Command::new(&worker.program);
            command
                .args(&worker.args)
                .env(ENV_DIR, &config.dir)
                .env(ENV_SHARD, shard.to_string())
                .stdout(Stdio::null());
            if armed_chaos.is_some_and(|plan| plan.victim == shard) {
                let plan = armed_chaos.take().expect("checked");
                command.env(ENV_ABORT_AFTER, plan.kill_after.to_string());
            }
            if armed_hang == Some(shard) {
                armed_hang = None;
                // Effectively forever; the supervisor kills it first.
                command.env(ENV_HANG_MS, 3_600_000u64.to_string());
            }
            let child = command.spawn()?;
            running.push(RunningWorker {
                shard,
                slot,
                child,
                heartbeat_path: config.dir.join(format!("shard-{shard}.hb")),
                last_heartbeat: None,
                last_progress: Instant::now(),
            });
        }
        if running.is_empty() {
            break;
        }
        thread::sleep(config.poll_interval);

        let mut index = 0;
        while index < running.len() {
            let worker_state = &mut running[index];
            let shard = worker_state.shard;
            let mut finished: Option<bool> = None; // Some(success?)
            match worker_state.child.try_wait() {
                Ok(Some(status)) => finished = Some(status.success()),
                Ok(None) => {
                    let beat = fs::read(&worker_state.heartbeat_path).ok();
                    if beat.is_some() && beat != worker_state.last_heartbeat {
                        worker_state.last_heartbeat = beat;
                        worker_state.last_progress = Instant::now();
                    } else if worker_state.last_progress.elapsed() > config.stall_timeout {
                        eprintln!(
                            "dist: worker for shard {shard} stalled \
                             (no heartbeat for {:?}); killing and reassigning",
                            config.stall_timeout
                        );
                        let _ = worker_state.child.kill();
                        let _ = worker_state.child.wait();
                        finished = Some(false);
                    }
                }
                Err(_) => finished = Some(false),
            }
            let Some(mut success) = finished else {
                index += 1;
                continue;
            };
            let summary_path = config.dir.join(format!("shard-{shard}.summary.json"));
            let summary = if success {
                match WorkerSummary::load(&summary_path) {
                    Ok(summary) if summary.shard == shard => Some(summary),
                    _ => {
                        success = false;
                        None
                    }
                }
            } else {
                None
            };
            let worker_state = running.swap_remove(index);
            free_slots.push(worker_state.slot);
            match summary {
                Some(summary) => {
                    outcomes[shard] = Some(ShardOutcome {
                        shard,
                        worker_slot: worker_state.slot,
                        jobs: summary.jobs,
                        records: summary.records,
                        resumed: summary.resumed,
                        quarantined: summary.quarantined,
                        restarts: shard_restarts[shard],
                        wall_ms: summary.wall_ms,
                    });
                }
                None => {
                    debug_assert!(!success);
                    shard_restarts[shard] += 1;
                    restarts_total += 1;
                    if restarts_total > config.max_restarts {
                        return Err(io::Error::other(format!(
                            "dist: gave up after {restarts_total} worker deaths \
                             (max_restarts = {})",
                            config.max_restarts
                        )));
                    }
                    eprintln!(
                        "dist: worker for shard {shard} died; reassigning \
                         (restart {restarts_total})"
                    );
                    queue.push_front(shard);
                }
            }
        }
    }

    let merged_path = config.dir.join("merged.jsonl");
    let merge = merge_shards(&config.dir, spec, &merged_path)?;
    Ok(DistReport {
        jobs: seen.len(),
        shards: outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every shard completed"))
            .collect(),
        restarts: restarts_total,
        merge,
        merged_path,
        wall_ms: started.elapsed().as_millis() as u64,
    })
}

/// FNV-1a 64 digest of a file's bytes as 16 hex digits — the identity
/// CI compares merged artifacts by.
pub fn file_digest(path: &Path) -> io::Result<String> {
    let bytes = fs::read(path)?;
    let mut digest = crate::fingerprint::Fingerprinter::new();
    digest.write_bytes(&bytes);
    Ok(crate::fingerprint::hex_id(digest.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_space() {
        for shards in [1usize, 2, 3, 7, 8, 64] {
            let plan = plan_shards(shards);
            assert_eq!(plan.len(), shards);
            assert_eq!(plan[0].lo, 0);
            assert_eq!(plan[shards - 1].hi, u64::MAX);
            for pair in plan.windows(2) {
                assert_eq!(
                    pair[0].hi.wrapping_add(1),
                    pair[1].lo,
                    "ranges must be contiguous at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_of_agrees_with_the_ranges() {
        for shards in [1usize, 2, 3, 8] {
            let plan = plan_shards(shards);
            for fingerprint in [
                0u64,
                1,
                u64::MAX,
                u64::MAX / 2,
                u64::MAX / 3,
                0xED5B_2009,
                0x9E37_79B9_7F4A_7C15,
            ] {
                let shard = shard_of(fingerprint, shards);
                assert!(plan[shard].contains(fingerprint));
            }
        }
    }

    #[test]
    fn grid_spec_round_trips_through_json() {
        let spec = GridSpec {
            dataset: WireDataset::Census {
                rows: 120,
                seed: 7,
                zip_pool: 10,
            },
            algorithms: vec!["datafly".into(), "mondrian".into()],
            ks: vec![2, 5],
            max_suppression: 6,
            properties: vec!["eq-class-size".into()],
            root_seed: 0xED5B_2009,
            shards: 4,
            engine_jobs: 1,
        };
        let value = serde::json::parse(&spec.to_json()).expect("valid JSON");
        assert_eq!(GridSpec::from_value(&value), Ok(spec));
    }

    #[test]
    fn grid_spec_rejects_mock_algorithms() {
        let spec = GridSpec {
            dataset: WireDataset::Census {
                rows: 10,
                seed: 1,
                zip_pool: 5,
            },
            algorithms: vec!["mock-panic".into()],
            ks: vec![2],
            max_suppression: 1,
            properties: vec![],
            root_seed: 1,
            shards: 1,
            engine_jobs: 1,
        };
        assert!(spec.jobs().is_err());
    }

    #[test]
    fn chaos_plan_is_deterministic_and_mid_shard() {
        let chaos = DistChaos { seed: 17 };
        let shard_jobs = [3usize, 5, 5, 1];
        let plan = chaos.plan(&shard_jobs).expect("some shard has >= 2 jobs");
        assert_eq!(plan, chaos.plan(&shard_jobs).unwrap());
        assert_eq!(plan.victim, 1, "largest shard, lowest index on ties");
        assert!(plan.kill_after >= 1 && plan.kill_after < 5);
        assert_eq!(chaos.plan(&[1, 0, 1]), None, "no shard can die mid-sweep");
    }
}
