//! # anoncmp-engine
//!
//! The sweep-execution substrate of the `anoncmp` workspace: a parallel,
//! memoizing evaluation engine for *algorithm × k × dataset* grids.
//!
//! The paper this workspace reproduces is about **comparing** disclosure
//! control algorithms, which in practice means running the same
//! anonymizations over and over — once per comparator tournament, once per
//! experiment, once per benchmark. DPBench-style harnesses showed that such
//! comparisons want explicit, typed job specifications and machine-readable
//! results; this crate provides both:
//!
//! * [`EvalJob`] — a typed job spec: dataset spec × algorithm spec ×
//!   privacy parameters × requested property vectors;
//! * [`Engine`] — a work-stealing worker pool (crossbeam channels, `--jobs N`)
//!   with a content-addressed memoization cache, so a release computed for
//!   one experiment is reused by every later tournament with the same spec;
//! * [`EvalRecord`] — a serde-serializable per-release record that can be
//!   streamed as JSONL to a file sink.
//!
//! ## Guarantees
//!
//! * **Deterministic.** Per-job seeds are derived from the engine's root
//!   seed and the job's *content* (not its position or schedule), and sweep
//!   results are returned in submission order — `--jobs 8` produces
//!   byte-identical reports to `--jobs 1`.
//! * **Robust.** Every job runs under `catch_unwind` (with the panic
//!   payload message and source location preserved), optionally with a
//!   wall-clock budget; transient failures are retried under a
//!   deterministic [`RetryPolicy`] and quarantined with their attempt
//!   history when the budget is exhausted, while the rest of the sweep
//!   completes.
//! * **Resumable.** With a checkpoint [`Journal`] attached, every
//!   completed job is appended fsync'd as one JSONL line; after a crash,
//!   [`Engine::resume`] replays the journal (healing any torn tail) and
//!   re-running the sweep skips completed jobs yet produces a canonical
//!   record set byte-identical to an uninterrupted run.
//! * **Testable under fault.** The [`chaos`] module injects deterministic,
//!   seeded faults — panics, stalls past the budget, torn journal
//!   writes — so recovery paths are exercised by reproducible tests.
//!
//! ```
//! use anoncmp_engine::prelude::*;
//!
//! let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
//! let jobs: Vec<EvalJob> = AlgorithmSpec::standard_suite()
//!     .into_iter()
//!     .map(|algorithm| EvalJob {
//!         dataset: DatasetSpec::Census { rows: 120, seed: 7, zip_pool: 10 },
//!         algorithm,
//!         k: 3,
//!         max_suppression: 6,
//!         properties: vec![PropertySpec::EqClassSize],
//!     })
//!     .collect();
//! let sweep = engine.run(&jobs);
//! assert_eq!(sweep.outcomes.len(), jobs.len());
//! // Re-running the same grid is served from the memo cache.
//! let again = engine.run(&jobs);
//! assert!(again.outcomes.iter().all(|o| o.record.cache_hit));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod chaos;
pub mod dist;
pub mod engine;
pub mod fingerprint;
pub mod job;
pub mod journal;
pub mod pool;
pub mod record;

pub use crate::cache::{CacheStats, LruCache, MemoCache};
pub use crate::chaos::{ChaosConfig, Fault};
pub use crate::dist::{
    DistChaos, DistConfig, DistReport, GridSpec, MergeReport, ShardOutcome, WorkerCommand,
};
pub use crate::engine::{
    Engine, EngineConfig, JobOutcome, ResumeSummary, RetryPolicy, SweepResult,
};
pub use crate::job::{AlgorithmSpec, DatasetSpec, EvalJob, PropertySpec};
pub use crate::journal::{Journal, Replay, ShardMeta};
pub use crate::pool::ScopedPool;
pub use crate::record::{
    AttemptFailure, EvalRecord, JobStatus, PropertySummary, QuarantineRecord, ReleaseMetrics,
};

/// One-stop imports for engine users.
pub mod prelude {
    pub use crate::cache::{CacheStats, LruCache};
    pub use crate::chaos::{ChaosConfig, Fault};
    pub use crate::dist::{
        DistChaos, DistConfig, DistReport, GridSpec, MergeReport, ShardOutcome, WorkerCommand,
    };
    pub use crate::engine::{
        Engine, EngineConfig, JobOutcome, ResumeSummary, RetryPolicy, SweepResult,
    };
    pub use crate::job::{AlgorithmSpec, DatasetSpec, EvalJob, PropertySpec};
    pub use crate::journal::{Journal, Replay, ShardMeta};
    pub use crate::pool::ScopedPool;
    pub use crate::record::{
        AttemptFailure, EvalRecord, JobStatus, PropertySummary, QuarantineRecord, ReleaseMetrics,
    };
}
