//! # anoncmp-engine
//!
//! The sweep-execution substrate of the `anoncmp` workspace: a parallel,
//! memoizing evaluation engine for *algorithm × k × dataset* grids.
//!
//! The paper this workspace reproduces is about **comparing** disclosure
//! control algorithms, which in practice means running the same
//! anonymizations over and over — once per comparator tournament, once per
//! experiment, once per benchmark. DPBench-style harnesses showed that such
//! comparisons want explicit, typed job specifications and machine-readable
//! results; this crate provides both:
//!
//! * [`EvalJob`] — a typed job spec: dataset spec × algorithm spec ×
//!   privacy parameters × requested property vectors;
//! * [`Engine`] — a work-stealing worker pool (crossbeam channels, `--jobs N`)
//!   with a content-addressed memoization cache, so a release computed for
//!   one experiment is reused by every later tournament with the same spec;
//! * [`EvalRecord`] — a serde-serializable per-release record that can be
//!   streamed as JSONL to a file sink.
//!
//! ## Guarantees
//!
//! * **Deterministic.** Per-job seeds are derived from the engine's root
//!   seed and the job's *content* (not its position or schedule), and sweep
//!   results are returned in submission order — `--jobs 8` produces
//!   byte-identical reports to `--jobs 1`.
//! * **Robust.** Every job runs under `catch_unwind`, optionally with a
//!   wall-clock budget; a panicking or runaway algorithm yields an error
//!   [`EvalRecord`] while the rest of the sweep completes.
//!
//! ```
//! use anoncmp_engine::prelude::*;
//!
//! let engine = Engine::new(EngineConfig { jobs: 2, ..EngineConfig::default() });
//! let jobs: Vec<EvalJob> = AlgorithmSpec::standard_suite()
//!     .into_iter()
//!     .map(|algorithm| EvalJob {
//!         dataset: DatasetSpec::Census { rows: 120, seed: 7, zip_pool: 10 },
//!         algorithm,
//!         k: 3,
//!         max_suppression: 6,
//!         properties: vec![PropertySpec::EqClassSize],
//!     })
//!     .collect();
//! let sweep = engine.run(&jobs);
//! assert_eq!(sweep.outcomes.len(), jobs.len());
//! // Re-running the same grid is served from the memo cache.
//! let again = engine.run(&jobs);
//! assert!(again.outcomes.iter().all(|o| o.record.cache_hit));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod job;
pub mod record;

pub use crate::cache::{CacheStats, MemoCache};
pub use crate::engine::{Engine, EngineConfig, JobOutcome, SweepResult};
pub use crate::job::{AlgorithmSpec, DatasetSpec, EvalJob, PropertySpec};
pub use crate::record::{EvalRecord, JobStatus, PropertySummary, ReleaseMetrics};

/// One-stop imports for engine users.
pub mod prelude {
    pub use crate::cache::CacheStats;
    pub use crate::engine::{Engine, EngineConfig, JobOutcome, SweepResult};
    pub use crate::job::{AlgorithmSpec, DatasetSpec, EvalJob, PropertySpec};
    pub use crate::record::{EvalRecord, JobStatus, PropertySummary, ReleaseMetrics};
}
