//! The write-ahead checkpoint journal that makes sweeps crash-safe.
//!
//! # Format
//!
//! One JSON envelope per line:
//!
//! ```text
//! {"v":1,"job":"<16-hex job fingerprint>","crc":"<16-hex FNV-1a>","record":{...}}
//! ```
//!
//! * `job` — the [`EvalJob::job_fingerprint`] of the completed job. Replay
//!   keys on it, so a resumed sweep skips exactly the jobs whose spec
//!   (dataset × algorithm × parameters × requested properties) already
//!   completed.
//! * `crc` — FNV-1a 64 over the `record` object's JSON text. The engine's
//!   serializer is deterministic and the parser preserves it byte-for-byte
//!   (see [`EvalRecord::from_jsonl`]), so replay re-serializes the parsed
//!   record and compares digests: any corruption — torn write, truncated
//!   tail, editor mangling — fails the check and drops the line.
//! * `record` — the completed [`EvalRecord`], verbatim.
//!
//! # Durability
//!
//! [`Journal::append`] writes the line, flushes, and `fdatasync`s before
//! returning: once the engine reports a job complete, the journal entry
//! survives a process kill. A kill *during* an append leaves a torn final
//! line; [`Journal::replay`] ignores it and [`Journal::open_resumable`]
//! truncates the file back to the last intact entry so appends resume on a
//! clean boundary.
//!
//! Only deterministic terminal statuses (`Ok`, `Failed`) are journaled by
//! the engine. `Panicked` and `BudgetExceeded` are treated as transient:
//! they are retried within the sweep and — if still failing — quarantined,
//! never checkpointed, so a resumed sweep gives them a fresh chance.
//!
//! [`EvalJob::job_fingerprint`]: crate::job::EvalJob::job_fingerprint
//! [`EvalRecord::from_jsonl`]: crate::record::EvalRecord::from_jsonl

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::fingerprint::{hex_id, Fingerprinter};
use crate::record::EvalRecord;

/// Journal format version (the `"v"` envelope field).
const FORMAT_VERSION: u64 = 1;

/// Shard metadata carried in the first line of a per-shard journal:
///
/// ```text
/// {"v":1,"shard":{"index":0,"of":4,"lo":"0000000000000000","hi":"3fffffffffffffff"}}
/// ```
///
/// The header binds the journal file to one shard of one shard plan, so a
/// resuming worker (or a reassigned survivor) refuses a journal written
/// for a different fingerprint range instead of silently mixing shards.
/// The header is not a record entry: it does not count toward
/// [`Replay::entries`] and carries no CRC of its own (it is regenerated,
/// never trusted for record content).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Which shard of the plan this journal belongs to.
    pub index: usize,
    /// Total shards in the plan.
    pub of: usize,
    /// Inclusive low end of the shard's job-fingerprint range.
    pub lo: u64,
    /// Inclusive high end of the shard's job-fingerprint range.
    pub hi: u64,
}

impl ShardMeta {
    /// Renders the header line (no trailing newline).
    pub fn header_line(&self) -> String {
        format!(
            "{{\"v\":{FORMAT_VERSION},\"shard\":{{\"index\":{},\"of\":{},\"lo\":\"{}\",\"hi\":\"{}\"}}}}",
            self.index,
            self.of,
            hex_id(self.lo),
            hex_id(self.hi)
        )
    }
}

/// Decodes a shard header line, if that is what the line is.
fn decode_shard_header(line: &str) -> Option<ShardMeta> {
    let envelope = serde::json::parse(line)?;
    if envelope.get("v")?.as_u64()? != FORMAT_VERSION {
        return None;
    }
    let shard = envelope.get("shard")?;
    Some(ShardMeta {
        index: shard.get("index")?.as_u64()? as usize,
        of: shard.get("of")?.as_u64()? as usize,
        lo: u64::from_str_radix(shard.get("lo")?.as_str()?, 16).ok()?,
        hi: u64::from_str_radix(shard.get("hi")?.as_str()?, 16).ok()?,
    })
}

/// An open, append-only checkpoint journal.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

/// What [`Journal::replay`] recovered from a journal file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Completed records, keyed by job fingerprint. Later duplicates of a
    /// key are ignored (journaled records are deterministic in the job, so
    /// duplicates are byte-identical anyway).
    pub completed: HashMap<u64, EvalRecord>,
    /// Intact entries read (including duplicates).
    pub entries: usize,
    /// Lines dropped as torn or corrupt (failed parse or CRC).
    pub dropped: usize,
    /// Byte offset just past the last intact line — the truncation point
    /// for crash recovery.
    pub valid_len: u64,
    /// Shard metadata from the header line, when the journal is a
    /// per-shard journal (see [`ShardMeta`]).
    pub shard: Option<ShardMeta>,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Journal { file, path })
    }

    /// Creates (or truncates) a fresh per-shard journal at `path`, with
    /// the shard header as its first, fsync'd line.
    pub fn create_sharded(path: impl AsRef<Path>, meta: ShardMeta) -> io::Result<Journal> {
        let mut journal = Journal::create(path)?;
        journal.file.write_all(meta.header_line().as_bytes())?;
        journal.file.write_all(b"\n")?;
        journal.file.flush()?;
        journal.file.sync_data()?;
        Ok(journal)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Renders the envelope line (no trailing newline) for one completed
    /// job. Exposed for the chaos layer, which truncates it mid-write.
    pub fn entry_line(job_fingerprint: u64, record: &EvalRecord) -> String {
        let record_json = record.to_jsonl();
        let mut crc = Fingerprinter::new();
        crc.write_bytes(record_json.as_bytes());
        format!(
            "{{\"v\":{FORMAT_VERSION},\"job\":\"{}\",\"crc\":\"{}\",\"record\":{}}}",
            hex_id(job_fingerprint),
            hex_id(crc.finish()),
            record_json
        )
    }

    /// Appends one completed job, fsync'd: when this returns `Ok`, the
    /// entry survives a process kill.
    pub fn append(&mut self, job_fingerprint: u64, record: &EvalRecord) -> io::Result<()> {
        let line = Self::entry_line(job_fingerprint, record);
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Chaos hook: writes a torn prefix of the entry (no newline) and
    /// syncs it, simulating a crash mid-append.
    pub fn append_torn(&mut self, job_fingerprint: u64, record: &EvalRecord) -> io::Result<()> {
        let line = Self::entry_line(job_fingerprint, record);
        self.file.write_all(&line.as_bytes()[..line.len() / 2])?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Replays a journal file. A missing file replays as empty (a fresh
    /// sweep); torn or corrupt lines are counted and dropped.
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Replay> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        };
        let mut replay = Replay::default();
        let mut reader = BufReader::new(file);
        let mut line: Vec<u8> = Vec::new();
        let mut offset = 0u64;
        loop {
            line.clear();
            let n = reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                break;
            }
            let intact = line.last() == Some(&b'\n');
            // Corruption can produce invalid UTF-8; treat it like any
            // other undecodable line rather than an I/O error.
            let text = std::str::from_utf8(&line).unwrap_or("");
            if offset == 0 && intact {
                // A shard journal leads with its header line; it is not a
                // record entry and does not advance `entries`.
                if let Some(meta) = decode_shard_header(text.trim_end_matches('\n')) {
                    replay.shard = Some(meta);
                    offset += n as u64;
                    replay.valid_len = offset;
                    continue;
                }
            }
            match decode_entry(text.trim_end_matches('\n')) {
                Some((job_fp, record)) if intact => {
                    replay.entries += 1;
                    replay.completed.entry(job_fp).or_insert(record);
                    offset += n as u64;
                    replay.valid_len = offset;
                }
                _ => {
                    // A torn or corrupt line ends recovery: anything after
                    // it was written past a bad boundary and cannot be
                    // trusted to start on a line break of its own.
                    replay.dropped += 1;
                    break;
                }
            }
        }
        Ok(replay)
    }

    /// Opens a journal for resumption: replays it, truncates any torn
    /// tail, and reopens for appending. The returned [`Replay`] holds the
    /// recovered records.
    pub fn open_resumable(path: impl AsRef<Path>) -> io::Result<(Journal, Replay)> {
        let path = path.as_ref().to_path_buf();
        let replay = Self::replay(&path)?;
        // Deliberately not truncating on open: the recovered prefix must
        // survive. `set_len` below trims exactly the torn tail.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(replay.valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        Ok((Journal { file, path }, replay))
    }

    /// Opens a per-shard journal for resumption. A missing or fully-torn
    /// journal is recreated fresh with `meta` as its header; an existing
    /// one must carry a matching header — a journal written for a
    /// different shard range (or a non-sharded journal) is refused with
    /// `InvalidData` rather than mixed in.
    pub fn open_resumable_sharded(
        path: impl AsRef<Path>,
        meta: ShardMeta,
    ) -> io::Result<(Journal, Replay)> {
        let path = path.as_ref().to_path_buf();
        let replay = Self::replay(&path)?;
        if replay.valid_len == 0 {
            let journal = Journal::create_sharded(&path, meta)?;
            let replay = Replay {
                shard: Some(meta),
                ..Replay::default()
            };
            return Ok((journal, replay));
        }
        match replay.shard {
            Some(found) if found == meta => {}
            found => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal {} belongs to shard {:?}, expected {:?}",
                        path.display(),
                        found,
                        meta
                    ),
                ));
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(replay.valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        Ok((Journal { file, path }, replay))
    }
}

/// Decodes one envelope line into `(job_fingerprint, record)`, verifying
/// the CRC by re-serializing the parsed record.
fn decode_entry(line: &str) -> Option<(u64, EvalRecord)> {
    let envelope = serde::json::parse(line)?;
    if envelope.get("v")?.as_u64()? != FORMAT_VERSION {
        return None;
    }
    let job_fp = u64::from_str_radix(envelope.get("job")?.as_str()?, 16).ok()?;
    let stored_crc = u64::from_str_radix(envelope.get("crc")?.as_str()?, 16).ok()?;
    let record_value = envelope.get("record")?;
    let record = EvalRecord::from_json_value(record_value)?;
    let mut crc = Fingerprinter::new();
    crc.write_bytes(record.to_jsonl().as_bytes());
    if crc.finish() != stored_crc {
        return None;
    }
    Some((job_fp, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{JobStatus, PropertySummary, ReleaseMetrics};

    fn record(tag: u64) -> EvalRecord {
        EvalRecord {
            job_id: hex_id(tag),
            dataset: "census(rows=10, seed=1, zips=5)".into(),
            algorithm: "datafly".into(),
            k: 2,
            max_suppression: 1,
            seed: tag.wrapping_mul(0x9e37_79b9),
            status: JobStatus::Ok,
            metrics: Some(ReleaseMetrics {
                rows: 10,
                classes: 4,
                min_class_size: 2,
                suppressed: 0,
                total_loss: 3.5 + tag as f64,
            }),
            release_digest: Some(hex_id(tag ^ 0xff)),
            properties: vec![PropertySummary {
                name: "eq-class-size".into(),
                values: vec![2.0, 2.0, 3.0, 0.1 + 0.2],
            }],
            duration_ms: 17,
            cache_hit: false,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anoncmp-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path).unwrap();
        for fp in 1u64..=5 {
            journal.append(fp, &record(fp)).unwrap();
        }
        drop(journal);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries, 5);
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.completed.len(), 5);
        for fp in 1u64..=5 {
            assert_eq!(replay.completed[&fp], record(fp));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Journal::replay(temp_path("never-created")).unwrap();
        assert_eq!(replay.entries, 0);
        assert_eq!(replay.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let path = temp_path("torn");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(1, &record(1)).unwrap();
        journal.append(2, &record(2)).unwrap();
        journal.append_torn(3, &record(3)).unwrap();
        drop(journal);

        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries, 2);
        assert_eq!(replay.dropped, 1);
        assert!(replay.completed.contains_key(&1) && replay.completed.contains_key(&2));

        // Reopening truncates the torn tail; appends land on a clean
        // boundary and the next replay sees all three entries intact.
        let (mut reopened, resumed) = Journal::open_resumable(&path).unwrap();
        assert_eq!(resumed.entries, 2);
        reopened.append(3, &record(3)).unwrap();
        drop(reopened);
        let healed = Journal::replay(&path).unwrap();
        assert_eq!(healed.entries, 3);
        assert_eq!(healed.dropped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_line_ends_recovery_at_the_last_good_prefix() {
        let path = temp_path("corrupt");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(1, &record(1)).unwrap();
        journal.append(2, &record(2)).unwrap();
        journal.append(3, &record(3)).unwrap();
        drop(journal);
        // Flip a byte inside the second entry's record.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let target = second_start + 120;
        bytes[target] = bytes[target].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries, 1, "recovery stops at the corruption");
        assert!(replay.completed.contains_key(&1));
        assert_eq!(replay.valid_len as usize, second_start);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn entry_line_crc_detects_single_byte_damage() {
        let line = Journal::entry_line(7, &record(7));
        assert!(decode_entry(&line).is_some());
        // Damage the record payload without breaking JSON syntax: change a
        // digit of the seed.
        let damaged = line.replacen("\"seed\":", "\"seed\":1", 1);
        assert!(decode_entry(&damaged).is_none(), "CRC must catch {damaged}");
    }

    #[test]
    fn sharded_journal_round_trips_header_and_entries() {
        let path = temp_path("sharded");
        let meta = ShardMeta {
            index: 2,
            of: 4,
            lo: 0x8000_0000_0000_0000,
            hi: 0xbfff_ffff_ffff_ffff,
        };
        let mut journal = Journal::create_sharded(&path, meta).unwrap();
        journal.append(0x9000, &record(0x9000)).unwrap();
        drop(journal);

        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.shard, Some(meta));
        assert_eq!(replay.entries, 1, "header is not a record entry");
        assert!(replay.completed.contains_key(&0x9000));

        // Resuming with the same meta recovers the entry and appends on a
        // clean boundary.
        let (mut reopened, resumed) = Journal::open_resumable_sharded(&path, meta).unwrap();
        assert_eq!(resumed.entries, 1);
        assert_eq!(resumed.shard, Some(meta));
        reopened.append(0xa000, &record(0xa000)).unwrap();
        drop(reopened);
        let healed = Journal::replay(&path).unwrap();
        assert_eq!(healed.entries, 2);
        assert_eq!(healed.shard, Some(meta));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_resume_refuses_mismatched_meta() {
        let path = temp_path("shard-mismatch");
        let meta = ShardMeta {
            index: 0,
            of: 2,
            lo: 0,
            hi: u64::MAX / 2,
        };
        drop(Journal::create_sharded(&path, meta).unwrap());
        let other = ShardMeta { index: 1, ..meta };
        let err = Journal::open_resumable_sharded(&path, other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A plain (non-sharded) journal with entries is refused too.
        let plain = temp_path("shard-plain");
        let mut journal = Journal::create(&plain).unwrap();
        journal.append(1, &record(1)).unwrap();
        drop(journal);
        let err = Journal::open_resumable_sharded(&plain, meta).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plain).ok();
    }

    #[test]
    fn replay_ignores_duplicate_entries() {
        let path = temp_path("dupes");
        let mut journal = Journal::create(&path).unwrap();
        journal.append(9, &record(9)).unwrap();
        journal.append(9, &record(9)).unwrap();
        drop(journal);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.entries, 2);
        assert_eq!(replay.completed.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
