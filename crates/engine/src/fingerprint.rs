//! Content fingerprinting for memoization keys and per-job seeds.
//!
//! The engine must produce **byte-identical output across processes**
//! (`--jobs 1` in one invocation vs `--jobs 8` in another), so fingerprints
//! cannot rely on `std::collections::hash_map::DefaultHasher`, whose keys
//! are randomized per process. This module implements 64-bit FNV-1a over a
//! canonical field encoding instead: stable across runs, processes, and
//! platforms.
//!
//! Release *content* digests ([`fingerprint_release`]) hash the tagged
//! integer codes underlying every [`GenValue`] cell — never rendered
//! strings, whose formatting could drift without the release changing.

use anoncmp_microdata::numeric::{NumericRelease, Release};
use anoncmp_microdata::prelude::{AnonymizedTable, GenValue};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher over canonically-encoded fields.
///
/// Fields are length- or tag-delimited so that `("ab", "c")` and
/// `("a", "bc")` fingerprint differently.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }
}

impl Fingerprinter {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` (widened to `u64` so 32- and 64-bit targets
    /// agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Finalizes the fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Mixes a root seed with a content fingerprint into a per-job seed.
///
/// Uses the SplitMix64 finalizer so nearby inputs diverge completely; the
/// result depends only on `(root_seed, fingerprint)`, never on job order or
/// scheduling.
pub fn derive_seed(root_seed: u64, fingerprint: u64) -> u64 {
    let mut z = root_seed ^ fingerprint.rotate_left(32);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders a fingerprint as the fixed-width hex id used in [`EvalRecord`]s.
///
/// [`EvalRecord`]: crate::record::EvalRecord
pub fn hex_id(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// Content digest of a computed release.
///
/// Hashes the table's dimensions, every cell's tagged integer encoding,
/// and the suppression mask — the complete released content, independent
/// of the table's display name or any rendering. Two releases digest
/// equally iff they contain the same generalized cells and suppress the
/// same tuples, so the digest certifies that a refactor of the evaluation
/// path (e.g. encoded vs materialized lattice application) left the
/// released data bit-identical.
///
/// Each [`GenValue`] variant gets a distinct tag byte before its payload
/// integers, so `Int(5)` and `Cat(5)` — or `Node(n)` at different
/// hierarchy levels — cannot collide structurally.
pub fn fingerprint_release(table: &AnonymizedTable) -> u64 {
    let mut f = Fingerprinter::new();
    let cols = table.records().first().map_or(0, Vec::len);
    f.write_usize(table.len()).write_usize(cols);
    for record in table.records() {
        for cell in record {
            match cell {
                GenValue::Int(v) => f.write_bytes(&[1]).write_u64(*v as u64),
                GenValue::Interval { lo, hi } => f
                    .write_bytes(&[2])
                    .write_u64(*lo as u64)
                    .write_u64(*hi as u64),
                GenValue::Cat(c) => f.write_bytes(&[3]).write_u64(u64::from(*c)),
                GenValue::Node(n) => f.write_bytes(&[4]).write_u64(u64::from(*n)),
                GenValue::Suppressed => f.write_bytes(&[5]),
            };
        }
    }
    for &s in table.suppression_mask() {
        f.write_bytes(&[u8::from(s)]);
    }
    f.finish()
}

/// Content digest of a perturbative (numeric) release.
///
/// Hashes a family tag, the release's dimensions, and every cell's
/// IEEE-754 bit pattern in column-major order — the complete released
/// content, independent of the release's display name. The leading
/// `"numeric-release"` tag keeps the numeric digest space disjoint from
/// [`fingerprint_release`]'s generalized digests, so a cache or journal
/// can never confuse the two families even on degenerate contents.
pub fn fingerprint_numeric_release(release: &NumericRelease) -> u64 {
    let mut f = Fingerprinter::new();
    f.write_str("numeric-release");
    f.write_usize(release.len()).write_usize(release.width());
    for col in release.columns() {
        for &v in col {
            f.write_f64(v);
        }
    }
    f.finish()
}

/// Content digest of either release family.
///
/// Dispatches to [`fingerprint_release`] or
/// [`fingerprint_numeric_release`]; the two digest spaces are disjoint by
/// construction (the numeric digest is tag-prefixed), so one memo cache
/// can hold both families keyed by digest alone.
pub fn release_digest(release: &Release) -> u64 {
    match release {
        Release::Generalized(table) => fingerprint_release(table),
        Release::Numeric(numeric) => fingerprint_numeric_release(numeric),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries_matter() {
        let mut a = Fingerprinter::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprinter::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprints_are_stable_constants() {
        // Guards against accidental algorithm changes: these values must
        // never change, or every cached sweep id shifts.
        let mut f = Fingerprinter::new();
        f.write_str("census").write_u64(1000).write_usize(5);
        assert_eq!(f.finish(), 0x1c6a_c3d8_405a_c418);
        assert_eq!(Fingerprinter::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn derived_seeds_spread() {
        let s1 = derive_seed(2024, 1);
        let s2 = derive_seed(2024, 2);
        let s3 = derive_seed(2025, 1);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Same inputs, same seed — determinism across calls.
        assert_eq!(s1, derive_seed(2024, 1));
    }

    #[test]
    fn numeric_digest_tracks_content_not_name() {
        use anoncmp_datagen::census::{generate, CensusConfig};
        use anoncmp_microdata::prelude::NumericBase;

        let ds = generate(&CensusConfig {
            rows: 40,
            seed: 5,
            zip_pool: 6,
        });
        let base = NumericBase::of(&ds).unwrap();
        let rel = NumericRelease::identity(base.clone(), "a");
        assert_eq!(
            fingerprint_numeric_release(&rel),
            fingerprint_numeric_release(&rel.clone().renamed("b"))
        );
        let mut cols = rel.columns().to_vec();
        cols[0][0] += 1.0;
        let changed = NumericRelease::new("a", base.clone(), cols);
        assert_ne!(
            fingerprint_numeric_release(&rel),
            fingerprint_numeric_release(&changed)
        );
        // The two digest families dispatch through one entry point and
        // stay disjoint on the same underlying dataset.
        let table = AnonymizedTable::identity(ds, "a");
        assert_ne!(
            release_digest(&Release::Numeric(rel.clone())),
            release_digest(&Release::Generalized(table))
        );
    }

    #[test]
    fn hex_id_is_fixed_width() {
        assert_eq!(hex_id(0xab), "00000000000000ab");
        assert_eq!(hex_id(u64::MAX).len(), 16);
    }

    #[test]
    fn release_digest_tracks_content_not_name() {
        use anoncmp_datagen::paper::{paper_schema_t3, paper_table1};
        use anoncmp_microdata::prelude::Lattice;

        let ds = paper_table1(paper_schema_t3());
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let levels = vec![1; lattice.max_levels().len()];
        let a = lattice.apply(&ds, &levels, "a").unwrap();

        // Renaming does not change the released content.
        assert_eq!(
            fingerprint_release(&a),
            fingerprint_release(&a.clone().renamed("b"))
        );
        // Different generalization levels do.
        let bottom = lattice.apply(&ds, &lattice.bottom(), "a").unwrap();
        assert_ne!(fingerprint_release(&a), fingerprint_release(&bottom));
        // Suppressing a tuple changes both cells and mask.
        assert_ne!(
            fingerprint_release(&a),
            fingerprint_release(&a.suppress_tuples([0]))
        );
        // Deterministic across calls.
        assert_eq!(fingerprint_release(&a), fingerprint_release(&a));
    }

    #[test]
    fn release_digest_distinguishes_cell_tags() {
        // Int(5) vs Cat(5) carry the same payload integer; the tag byte
        // must keep their digests apart. Exercised through the raw
        // encoder rather than a full table to pin the tagging scheme.
        let mut int5 = Fingerprinter::new();
        int5.write_bytes(&[1]).write_u64(5);
        let mut cat5 = Fingerprinter::new();
        cat5.write_bytes(&[3]).write_u64(5);
        assert_ne!(int5.finish(), cat5.finish());
    }
}
