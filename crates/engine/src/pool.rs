//! Core-budget arithmetic for nested parallelism.
//!
//! The engine runs two layers of parallelism at once: the sweep's worker
//! pool executes `--jobs N` jobs concurrently, and inside one job the
//! chunked pipeline (`anoncmp_microdata::chunked`) can fan a node's chunk
//! work out over intra-node threads. Giving each layer a full
//! machine's worth of threads oversubscribes the cores N-fold — at 10M
//! rows with `--jobs 8` that is 64 runnable threads thrashing 8 cores.
//!
//! [`ScopedPool`] owns the split: the machine's cores are divided by the
//! job-level worker count, and each concurrently running job gets the
//! quotient (at least 1) as its intra-node chunk-thread budget. An
//! explicit `--chunk-threads` overrides the quotient when the operator
//! knows better (e.g. a serve deployment that admits one big sweep at a
//! time). Thread budgets never change results — the chunked pipeline is
//! bit-identical at every thread count (see DESIGN.md "Threading
//! model") — so the split is purely a scheduling concern.

/// Splits a core budget between job-level workers and per-job intra-node
/// chunk threads.
///
/// ```
/// use anoncmp_engine::pool::ScopedPool;
///
/// // 8 cores, 8 concurrent jobs: each job streams chunks sequentially.
/// assert_eq!(ScopedPool::with_cores(8, 8, 0).chunk_threads(), 1);
/// // 8 cores, 2 concurrent jobs: each job gets 4 chunk threads.
/// assert_eq!(ScopedPool::with_cores(8, 2, 0).chunk_threads(), 4);
/// // Explicit override wins.
/// assert_eq!(ScopedPool::with_cores(8, 8, 3).chunk_threads(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopedPool {
    cores: usize,
    jobs: usize,
    chunk_threads: usize,
}

impl ScopedPool {
    /// A pool over the machine's available cores with `jobs` job-level
    /// workers and an optional explicit `chunk_threads` override (`0` =
    /// auto split). `jobs == 0` also means one per core.
    pub fn new(jobs: usize, chunk_threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ScopedPool::with_cores(cores, jobs, chunk_threads)
    }

    /// A pool over an explicit core count — the deterministic seam the
    /// unit tests and docs use.
    pub fn with_cores(cores: usize, jobs: usize, chunk_threads: usize) -> Self {
        let cores = cores.max(1);
        ScopedPool {
            cores,
            jobs: if jobs == 0 { cores } else { jobs },
            chunk_threads,
        }
    }

    /// The job-level worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The core budget being split.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Intra-node chunk threads each concurrently running job may use
    /// without oversubscribing: the explicit override if one was set,
    /// otherwise `max(1, cores / jobs)`.
    pub fn chunk_threads(&self) -> usize {
        match self.chunk_threads {
            0 => (self.cores / self.jobs.max(1)).max(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_split_divides_cores_by_jobs() {
        assert_eq!(ScopedPool::with_cores(16, 4, 0).chunk_threads(), 4);
        assert_eq!(ScopedPool::with_cores(16, 16, 0).chunk_threads(), 1);
        assert_eq!(ScopedPool::with_cores(16, 32, 0).chunk_threads(), 1);
        assert_eq!(ScopedPool::with_cores(1, 1, 0).chunk_threads(), 1);
    }

    #[test]
    fn zero_jobs_means_one_per_core() {
        let pool = ScopedPool::with_cores(8, 0, 0);
        assert_eq!(pool.jobs(), 8);
        assert_eq!(pool.chunk_threads(), 1);
    }

    #[test]
    fn explicit_override_beats_the_quotient() {
        assert_eq!(ScopedPool::with_cores(4, 4, 8).chunk_threads(), 8);
        assert_eq!(ScopedPool::with_cores(4, 1, 2).chunk_threads(), 2);
    }

    #[test]
    fn degenerate_cores_clamp_to_one() {
        let pool = ScopedPool::with_cores(0, 0, 0);
        assert_eq!(pool.cores(), 1);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.chunk_threads(), 1);
    }
}
