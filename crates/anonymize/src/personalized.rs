//! Personalized privacy (Xiao & Tao, cited as \[21\] in the paper).
//!
//! §2 singles out the personalized model as a place where anonymization
//! bias persists: "Personalized privacy in such a model is achieved by
//! constraining the probability of privacy breach for an individual,
//! depending on personal preferences of a breach, to an upper bound.
//! Nonetheless, the individual probabilities need not be same for all
//! tuples, thereby biasing a generalization scheme in more favor towards
//! some tuples than others."
//!
//! The guarding-node mechanism is modeled here at the granularity this
//! workspace measures privacy: each individual declares a maximum
//! acceptable breach probability `p_t`, equivalently a personal minimum
//! class size `k_t = ⌈1 / p_t⌉`. The [`PersonalizedKAnonymity`] model
//! requires every class to be at least as large as the *strictest* demand
//! among its members, and [`personalized_slack_vector`] exposes the
//! per-tuple slack `|EC(t)| − k_t` as a property vector so the paper's
//! comparators can quantify the bias *relative to individual demands*.

use anoncmp_core::vector::PropertyVector;
use anoncmp_microdata::prelude::AnonymizedTable;

use crate::models::PrivacyModel;

/// Per-individual k-anonymity: tuple `t` demands a class of at least
/// `k_of[t]` members.
#[derive(Debug, Clone)]
pub struct PersonalizedKAnonymity {
    k_of: Vec<usize>,
}

impl PersonalizedKAnonymity {
    /// Builds from per-tuple minimum class sizes.
    ///
    /// # Panics
    /// Panics if any demand is zero (every individual is in a class of at
    /// least one — demand 0 is meaningless).
    pub fn new(k_of: Vec<usize>) -> Self {
        assert!(
            k_of.iter().all(|&k| k >= 1),
            "personal k demands must be ≥ 1"
        );
        PersonalizedKAnonymity { k_of }
    }

    /// Builds from per-tuple maximum breach probabilities
    /// (`k_t = ⌈1 / p_t⌉`).
    ///
    /// # Panics
    /// Panics if any probability is outside `(0, 1]`.
    pub fn from_breach_bounds(bounds: &[f64]) -> Self {
        let k_of = bounds
            .iter()
            .map(|&p| {
                assert!(
                    p > 0.0 && p <= 1.0,
                    "breach bounds must be probabilities in (0, 1]"
                );
                (1.0 / p).ceil() as usize
            })
            .collect();
        PersonalizedKAnonymity::new(k_of)
    }

    /// The per-tuple demands.
    pub fn demands(&self) -> &[usize] {
        &self.k_of
    }

    /// The strictest demand among `members`.
    fn class_demand(&self, members: &[u32]) -> usize {
        members
            .iter()
            .map(|&t| self.k_of.get(t as usize).copied().unwrap_or(1))
            .max()
            .unwrap_or(1)
    }
}

impl PrivacyModel for PersonalizedKAnonymity {
    fn name(&self) -> String {
        let max = self.k_of.iter().max().copied().unwrap_or(1);
        format!("personalized-k (max demand {max})")
    }

    fn class_satisfied(&self, _table: &AnonymizedTable, members: &[u32]) -> bool {
        members.len() >= self.class_demand(members)
    }
}

/// Per-tuple slack `|EC(t)| − k_t`: how far each individual's protection
/// exceeds (positive) or falls short of (negative) their personal demand.
/// Higher is better; zero means the demand is met exactly. Feeding this
/// vector into the §5 comparators measures anonymization bias *relative to
/// personal preferences* rather than a global k.
///
/// # Panics
/// Panics if the demand vector's length differs from the table size.
pub fn personalized_slack_vector(
    table: &AnonymizedTable,
    model: &PersonalizedKAnonymity,
) -> PropertyVector {
    assert_eq!(
        model.demands().len(),
        table.len(),
        "one personal demand per tuple is required"
    );
    let v: Vec<f64> = (0..table.len())
        .map(|t| table.classes().class_size_of(t) as f64 - model.demands()[t] as f64)
        .collect();
    PropertyVector::new("personalized-slack", v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use anoncmp_microdata::prelude::*;

    use crate::constraint::Constraint;
    use crate::prelude::{Anonymizer, Datafly};

    /// Classes of sizes 2 ({1,2}) and 3 ({11,12,13}).
    fn fixture() -> AnonymizedTable {
        let schema = Schema::new(vec![Attribute::integer(
            "age",
            Role::QuasiIdentifier,
            0,
            100,
        )
        .with_hierarchy(IntervalLadder::uniform(0, &[10, 100]).unwrap().into())
        .unwrap()])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(11)],
                vec![Value::Int(12)],
                vec![Value::Int(13)],
            ],
        )
        .unwrap();
        Lattice::new(schema).unwrap().apply(&ds, &[1], "f").unwrap()
    }

    #[test]
    fn class_checks_use_the_strictest_member() {
        let t = fixture();
        // Tuple 1 demands k = 3 but sits in a class of 2 → violated.
        let m = PersonalizedKAnonymity::new(vec![1, 3, 1, 1, 1]);
        assert!(!m.satisfied(&t));
        // Everyone content with k ≤ 2 in the small class, ≤ 3 in the big.
        let m = PersonalizedKAnonymity::new(vec![2, 2, 3, 1, 3]);
        assert!(m.satisfied(&t));
    }

    #[test]
    fn breach_bound_conversion() {
        let m = PersonalizedKAnonymity::from_breach_bounds(&[1.0, 0.5, 0.34, 0.2]);
        assert_eq!(m.demands(), &[1, 2, 3, 5]);
        assert!(m.name().contains("max demand 5"));
    }

    #[test]
    fn slack_vector_measures_personal_bias() {
        let t = fixture();
        let m = PersonalizedKAnonymity::new(vec![2, 1, 3, 1, 2]);
        let slack = personalized_slack_vector(&t, &m);
        assert_eq!(slack.values(), &[0.0, 1.0, 0.0, 2.0, 1.0]);
        // The same release is exactly-sufficient for some, generous for
        // others — personalized anonymization bias, quantifiable with any
        // §5 comparator.
        assert_eq!(slack.min(), Some(0.0));
        assert_eq!(slack.max(), Some(2.0));
    }

    #[test]
    fn works_as_a_constraint_model() {
        let t = fixture();
        let ds = t.dataset().clone();
        let demands = vec![3usize; ds.len()];
        let c =
            Constraint::k_anonymity(1).with_model(Arc::new(PersonalizedKAnonymity::new(demands)));
        // Datafly generalizes until the strict personal demands hold.
        let out = Datafly
            .anonymize(&ds, &c)
            .expect("satisfiable by generalization");
        assert!(c.satisfied(&out));
        assert!(out.classes().min_class_size() >= 3);
    }

    #[test]
    #[should_panic(expected = "≥ 1")]
    fn zero_demand_rejected() {
        let _ = PersonalizedKAnonymity::new(vec![0]);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn bad_breach_bound_rejected() {
        let _ = PersonalizedKAnonymity::from_breach_bounds(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "one personal demand per tuple")]
    fn slack_arity_checked() {
        let t = fixture();
        let m = PersonalizedKAnonymity::new(vec![1]);
        let _ = personalized_slack_vector(&t, &m);
    }
}
