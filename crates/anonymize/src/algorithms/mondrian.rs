//! Mondrian multidimensional partitioning (LeFevre et al., cited as \[9\]
//! in the paper).
//!
//! Instead of recoding whole attribute domains, Mondrian recursively
//! splits the *tuple set* along one quasi-identifier at a time (median
//! split on the widest normalized dimension) while both halves keep at
//! least `k` tuples, then generalizes every leaf partition to its bounding
//! region: numeric columns to the partition's min–max interval,
//! categorical columns to the lowest taxonomy node covering the
//! partition's values. This local recoding "shows better performance in
//! capturing the underlying multivariate distribution of the attributes"
//! (paper §6) — and makes an instructive contrast with the full-domain
//! algorithms under the vector-based comparators.
//!
//! This is the *strict* variant (median split, no tuple straddling);
//! categorical dimensions split on the sorted category ids, a common
//! relaxation of the original taxonomy-guided split.

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Domain, Value};

use crate::algorithms::recoding::table_from_partitions;
use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The Mondrian strict multidimensional algorithm.
///
/// ```
/// use anoncmp_anonymize::prelude::*;
/// use anoncmp_datagen::census::{generate, CensusConfig};
///
/// let data = generate(&CensusConfig { rows: 120, seed: 1, zip_pool: 10 });
/// let constraint = Constraint::k_anonymity(5);
/// let release = Mondrian.anonymize(&data, &constraint).unwrap();
/// assert!(constraint.satisfied(&release));
/// assert!(release.classes().min_class_size() >= 5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Mondrian;

struct Ctx<'a> {
    dataset: &'a Dataset,
    qi: Vec<usize>,
    k: usize,
}

impl Mondrian {
    /// Runs Mondrian and also returns the final partitions (tuple-id
    /// lists).
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, Vec<Vec<u32>>)> {
        validate_common(dataset, constraint)?;
        if constraint.k > dataset.len() {
            return Err(AnonymizeError::Unsatisfiable(format!(
                "k = {} exceeds the dataset size {}",
                constraint.k,
                dataset.len()
            )));
        }
        let ctx = Ctx {
            dataset,
            qi: dataset.schema().quasi_identifiers().to_vec(),
            k: constraint.k,
        };
        let all: Vec<u32> = (0..dataset.len() as u32).collect();
        let mut partitions = Vec::new();
        Self::split(&ctx, all, &mut partitions);

        // Generalize each partition to its bounding region.
        let table = table_from_partitions(dataset, &partitions, "mondrian")?;
        // Mondrian guarantees k-anonymity by construction; extra models are
        // enforced via the suppression budget.
        let table = constraint.enforce(&table).ok_or_else(|| {
            AnonymizeError::Unsatisfiable(format!(
                "partitioning satisfies {}-anonymity but the extra models need more \
                 suppression than the budget allows",
                constraint.k
            ))
        })?;
        Ok((table, partitions))
    }

    /// Recursively splits `part`, appending leaf partitions to `out`.
    fn split(ctx: &Ctx<'_>, part: Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if part.len() < 2 * ctx.k {
            out.push(part);
            return;
        }
        // Dimensions ordered by normalized range, widest first.
        let mut dims: Vec<(f64, usize)> = ctx
            .qi
            .iter()
            .map(|&col| (Self::normalized_range(ctx.dataset, col, &part), col))
            .collect();
        dims.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("ranges are not NaN"));
        for &(range, col) in &dims {
            if range <= 0.0 {
                break; // no dimension can split a constant region
            }
            if let Some((left, right)) = Self::median_split(ctx, col, &part) {
                Self::split(ctx, left, out);
                Self::split(ctx, right, out);
                return;
            }
        }
        out.push(part);
    }

    /// The normalized extent of `part` along `col` (0 when constant).
    fn normalized_range(dataset: &Dataset, col: usize, part: &[u32]) -> f64 {
        match dataset.schema().attribute(col).domain() {
            Domain::Integer { min, max } => {
                let lo = part
                    .iter()
                    .map(|&t| dataset.value(t as usize, col).as_int().expect("int column"))
                    .min()
                    .expect("non-empty partition");
                let hi = part
                    .iter()
                    .map(|&t| dataset.value(t as usize, col).as_int().expect("int column"))
                    .max()
                    .expect("non-empty partition");
                let span = (max - min).max(1) as f64;
                (hi - lo) as f64 / span
            }
            Domain::Categorical { labels } => {
                let mut cats: Vec<u32> = part
                    .iter()
                    .map(|&t| dataset.value(t as usize, col).as_cat().expect("cat column"))
                    .collect();
                cats.sort_unstable();
                cats.dedup();
                if labels.len() <= 1 {
                    0.0
                } else {
                    (cats.len() - 1) as f64 / (labels.len() - 1) as f64
                }
            }
        }
    }

    /// Strict median split of `part` on `col`: tuples with value ≤ the
    /// median key go left. Returns `None` when either side would drop
    /// below `k` (e.g. the median value swallows everything).
    fn median_split(ctx: &Ctx<'_>, col: usize, part: &[u32]) -> Option<(Vec<u32>, Vec<u32>)> {
        let key = |t: u32| -> i64 {
            match ctx.dataset.value(t as usize, col) {
                Value::Int(v) => *v,
                Value::Cat(c) => *c as i64,
            }
        };
        let mut sorted: Vec<u32> = part.to_vec();
        sorted.sort_by_key(|&t| key(t));
        let median = key(sorted[sorted.len() / 2]);
        // Split strictly below/above the median key; tuples equal to the
        // median go left (ties are not straddled — strict Mondrian).
        let split_at = sorted.partition_point(|&t| key(t) <= median);
        let (left, right) = sorted.split_at(split_at);
        if left.len() >= ctx.k && right.len() >= ctx.k {
            Some((left.to_vec(), right.to_vec()))
        } else {
            // Try the other side of the tie block: strictly-less goes left.
            let split_at = sorted.partition_point(|&t| key(t) < median);
            let (left, right) = sorted.split_at(split_at);
            if !left.is_empty() && left.len() >= ctx.k && right.len() >= ctx.k {
                Some((left.to_vec(), right.to_vec()))
            } else {
                None
            }
        }
    }
}

impl Anonymizer for Mondrian {
    fn name(&self) -> String {
        "mondrian".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use anoncmp_microdata::prelude::GenValue;

    use crate::algorithms::test_support::{medium_census, small_census};

    #[test]
    fn output_is_k_anonymous_with_bounded_partitions() {
        let ds = small_census();
        for k in [2, 3, 5, 10] {
            let c = Constraint::k_anonymity(k);
            let (t, parts) = Mondrian.run(&ds, &c).unwrap();
            assert!(c.satisfied(&t), "k = {k}");
            for p in &parts {
                assert!(p.len() >= k, "partition below k");
                assert!(
                    p.len() < 2 * k + ds.len() / 10,
                    "strict Mondrian keeps partitions close to k (got {})",
                    p.len()
                );
            }
            // Partitions partition the tuple set.
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, ds.len());
        }
    }

    #[test]
    fn classes_match_partitions() {
        let ds = small_census();
        let (t, parts) = Mondrian.run(&ds, &Constraint::k_anonymity(4)).unwrap();
        // Tuples in the same partition share one equivalence class.
        for p in &parts {
            let class = t.classes().class_of(p[0] as usize);
            for &m in p {
                assert_eq!(t.classes().class_of(m as usize), class);
            }
        }
        // Class count is at most partition count (identical regions from
        // different partitions may merge).
        assert!(t.classes().class_count() <= parts.len());
    }

    #[test]
    fn intervals_cover_original_values() {
        let ds = small_census();
        let (t, _) = Mondrian.run(&ds, &Constraint::k_anonymity(3)).unwrap();
        let schema = ds.schema();
        for tuple in 0..ds.len() {
            for &col in schema.quasi_identifiers() {
                let gv = t.cell(tuple, col);
                let raw = ds.value(tuple, col);
                let covered = match (gv, schema.attribute(col).hierarchy()) {
                    (GenValue::Node(_), Some(h)) => h.covers(gv, raw),
                    _ => gv.covers_raw(raw),
                };
                assert!(covered, "cell does not cover its raw value");
            }
        }
    }

    #[test]
    fn beats_full_domain_on_utility() {
        // Mondrian's local recoding should lose (weakly) less information
        // than single-dimensional full-domain recoding at the same k — the
        // motivation LeFevre et al. give.
        use crate::algorithms::datafly::Datafly;
        use anoncmp_microdata::loss::LossMetric;
        let ds = medium_census();
        let c = Constraint::k_anonymity(5).with_suppression(ds.len() / 20);
        let m = LossMetric::classic();
        let mondrian = Mondrian.anonymize(&ds, &c).unwrap();
        let datafly = Datafly.anonymize(&ds, &c).unwrap();
        assert!(m.total_loss(&mondrian) <= m.total_loss(&datafly));
    }

    #[test]
    fn k_equal_to_n_yields_single_partition() {
        let ds = small_census();
        let (t, parts) = Mondrian
            .run(&ds, &Constraint::k_anonymity(ds.len()))
            .unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(t.classes().class_count(), 1);
    }

    #[test]
    fn oversized_k_unsatisfiable() {
        let ds = small_census();
        assert!(matches!(
            Mondrian.anonymize(&ds, &Constraint::k_anonymity(ds.len() + 1)),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn extra_models_enforced_by_suppression() {
        use crate::models::LDiversity;
        use std::sync::Arc as StdArc;
        let ds = small_census();
        let c = Constraint::k_anonymity(2)
            .with_suppression(ds.len() / 2)
            .with_model(StdArc::new(LDiversity::distinct(2)));
        let t = Mondrian.anonymize(&ds, &c).unwrap();
        assert!(c.satisfied(&t));
    }
}
