//! Greedy k-member clustering — utility-based local recoding in the
//! spirit of Xu et al. (cited as \[22\] in the paper).
//!
//! Where Mondrian splits space top-down, clustering builds equivalence
//! classes bottom-up: repeatedly pick a seed tuple (the one farthest from
//! the previous cluster's centroid region), greedily add the `k − 1`
//! records whose inclusion grows the cluster's covering region the least,
//! and close the cluster. Leftover records (< k of them) join their
//! nearest clusters. Quadratic-ish in `N/k · N`, but with excellent
//! utility on skewed data — a third recoding family (global, spatial,
//! cluster-based) for the comparison framework to judge.

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Domain, Value};

use crate::algorithms::recoding::table_from_partitions;
use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The greedy k-member clustering algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyCluster;

struct Ctx<'a> {
    dataset: &'a Dataset,
    qi: Vec<usize>,
    /// Per-QI normalization spans for the distance metric.
    spans: Vec<f64>,
}

impl Ctx<'_> {
    /// Normalized distance between two tuples over the quasi-identifiers:
    /// numeric attributes contribute `|a − b| / span`, categorical ones
    /// `0/1` mismatch.
    fn distance(&self, a: u32, b: u32) -> f64 {
        self.qi
            .iter()
            .zip(&self.spans)
            .map(|(&col, &span)| {
                match (
                    self.dataset.value(a as usize, col),
                    self.dataset.value(b as usize, col),
                ) {
                    (Value::Int(x), Value::Int(y)) => (x - y).abs() as f64 / span,
                    (Value::Cat(x), Value::Cat(y)) if x == y => 0.0,
                    _ => 1.0,
                }
            })
            .sum()
    }
}

impl GreedyCluster {
    /// Runs the clustering, also returning the partition.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, Vec<Vec<u32>>)> {
        validate_common(dataset, constraint)?;
        let k = constraint.k;
        if k > dataset.len() {
            return Err(AnonymizeError::Unsatisfiable(format!(
                "k = {k} exceeds the dataset size {}",
                dataset.len()
            )));
        }
        let schema = dataset.schema();
        let spans: Vec<f64> = schema
            .quasi_identifiers()
            .iter()
            .map(|&col| match schema.attribute(col).domain() {
                Domain::Integer { min, max } => ((max - min).max(1)) as f64,
                Domain::Categorical { .. } => 1.0,
            })
            .collect();
        let ctx = Ctx {
            dataset,
            qi: schema.quasi_identifiers().to_vec(),
            spans,
        };

        let n = dataset.len() as u32;
        let mut unassigned: Vec<u32> = (0..n).collect();
        let mut partitions: Vec<Vec<u32>> = Vec::new();
        let mut seed = 0u32; // first seed: tuple 0 (deterministic)
        while unassigned.len() >= k {
            // Remove the seed from the pool and grow a cluster around it.
            let pos = unassigned
                .iter()
                .position(|&t| t == seed)
                .expect("seed is unassigned");
            unassigned.swap_remove(pos);
            let mut cluster = vec![seed];
            while cluster.len() < k {
                // Greedy: the unassigned tuple closest to the seed (a
                // cheap surrogate for minimal region growth).
                let (idx, _) = unassigned
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (i, ctx.distance(seed, t)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
                    .expect("pool has at least k - |cluster| tuples");
                cluster.push(unassigned.swap_remove(idx));
            }
            // Next seed: the unassigned tuple farthest from this cluster's
            // seed, spreading clusters across the space.
            if let Some(&far) = unassigned.iter().max_by(|a, b| {
                ctx.distance(seed, **a)
                    .partial_cmp(&ctx.distance(seed, **b))
                    .expect("distances are not NaN")
            }) {
                seed = far;
            }
            partitions.push(cluster);
        }
        // Leftovers join their nearest cluster (by seed-tuple distance).
        for t in unassigned {
            let (idx, _) = partitions
                .iter()
                .enumerate()
                .map(|(i, p)| (i, ctx.distance(p[0], t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
                .expect("at least one cluster exists");
            partitions[idx].push(t);
        }
        for p in &mut partitions {
            p.sort_unstable();
        }

        let table = table_from_partitions(dataset, &partitions, "clustering")?;
        // k-anonymity holds by construction; extra models are enforced via
        // the suppression budget.
        let table = constraint.enforce(&table).ok_or_else(|| {
            AnonymizeError::Unsatisfiable(format!(
                "clustering satisfies {}-anonymity but the extra models need more \
                 suppression than the budget allows",
                k
            ))
        })?;
        Ok((table, partitions))
    }
}

impl Anonymizer for GreedyCluster {
    fn name(&self) -> String {
        "clustering".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::test_support::small_census;

    #[test]
    fn output_is_k_anonymous() {
        let ds = small_census();
        for k in [2usize, 3, 5, 10] {
            let c = Constraint::k_anonymity(k);
            let (t, parts) = GreedyCluster.run(&ds, &c).unwrap();
            assert!(c.satisfied(&t), "k = {k}");
            for p in &parts {
                assert!(p.len() >= k);
                assert!(p.len() < 2 * k, "clusters stay tight (got {})", p.len());
            }
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, ds.len(), "partition covers all tuples");
        }
    }

    #[test]
    fn clusters_map_to_classes() {
        let ds = small_census();
        let (t, parts) = GreedyCluster.run(&ds, &Constraint::k_anonymity(4)).unwrap();
        for p in &parts {
            let class = t.classes().class_of(p[0] as usize);
            for &m in p {
                assert_eq!(t.classes().class_of(m as usize), class);
            }
        }
    }

    #[test]
    fn deterministic() {
        let ds = small_census();
        let (_, p1) = GreedyCluster.run(&ds, &Constraint::k_anonymity(3)).unwrap();
        let (_, p2) = GreedyCluster.run(&ds, &Constraint::k_anonymity(3)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn utility_competitive_with_full_domain() {
        use anoncmp_microdata::loss::LossMetric;
        let ds = small_census();
        let c = Constraint::k_anonymity(5).with_suppression(6);
        let m = LossMetric::classic();
        let cluster = GreedyCluster.anonymize(&ds, &c).unwrap();
        let datafly = crate::algorithms::datafly::Datafly
            .anonymize(&ds, &c)
            .unwrap();
        assert!(m.total_loss(&cluster) <= m.total_loss(&datafly) + 1e-9);
    }

    #[test]
    fn oversized_k_unsatisfiable() {
        let ds = small_census();
        assert!(matches!(
            GreedyCluster.anonymize(&ds, &Constraint::k_anonymity(ds.len() + 1)),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn k_equals_n_single_cluster() {
        let ds = small_census();
        let (t, parts) = GreedyCluster
            .run(&ds, &Constraint::k_anonymity(ds.len()))
            .unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(t.classes().class_count(), 1);
    }
}
