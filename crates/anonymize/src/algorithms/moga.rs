//! Multi-objective genetic search — the paper's §7 extension realized.
//!
//! "Under the light of vector representations, privacy should no longer be
//! imposed only as a constraint in the framework but rather handled
//! directly as an objective to maximize. We leave the exploration of this
//! frontier for a later study." — this module is that exploration, in the
//! spirit of Dewri et al.'s weighted-k-anonymity formulation (\[2\] in the
//! paper): no privacy *constraint* at all, instead a set of
//! [`Objective`]s (privacy-side and utility-side) optimized simultaneously
//! with NSGA-II machinery from `anoncmp_core::pareto`, returning the
//! **Pareto front of anonymizations** instead of a single winner.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use anoncmp_core::bias::gini;
use anoncmp_core::pareto::{
    crowding_distance, non_dominated_sort_by, nsga2_order_by, pareto_front,
};
use anoncmp_core::prelude::{
    ComparisonMatrix, DominanceComparator, EqClassSize, Preference, Property, PropertyVector,
};
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{
    AnonymizedTable, Dataset, GenCodec, Lattice, LevelVector, NodePartition,
};

use crate::algorithms::validate_common;
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// An objective measured on a candidate release. Higher is better
/// (workspace convention); invert lower-is-better measurements.
pub trait Objective: Send + Sync {
    /// Display name, e.g. `"mean-class-size"`.
    fn name(&self) -> String;

    /// The objective value of one release.
    fn value(&self, table: &AnonymizedTable) -> f64;

    /// The objective value of a lattice node, evaluated on the encoded
    /// representation — no table materialization. The search loop calls
    /// this for every candidate, so built-in objectives override it with
    /// direct codec kernels; the default decodes the node and falls back
    /// to [`Objective::value`]. Overrides must return the bit-identical
    /// value the decoded-table path would.
    fn value_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> f64 {
        let table = codec
            .decode(partition.levels(), "moga")
            .expect("partition levels fit the codec");
        self.value(&table)
    }
}

/// Privacy objective: mean equivalence-class size — the "weighted
/// equivalence class size" reading of Dewri et al. \[2\].
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanClassSize;

impl Objective for MeanClassSize {
    fn name(&self) -> String {
        "mean-class-size".into()
    }

    fn value(&self, table: &AnonymizedTable) -> f64 {
        EqClassSize.extract(table).mean().unwrap_or(0.0)
    }

    fn value_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> f64 {
        EqClassSize
            .extract_encoded(codec, partition)
            .mean()
            .unwrap_or(0.0)
    }
}

/// Privacy objective: the scalar k (minimum class size) — kept for
/// comparison with the classical constraint view.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinClassSize;

impl Objective for MinClassSize {
    fn name(&self) -> String {
        "min-class-size".into()
    }

    fn value(&self, table: &AnonymizedTable) -> f64 {
        table.classes().min_class_size() as f64
    }

    fn value_encoded(&self, _codec: &GenCodec, partition: &NodePartition) -> f64 {
        partition.sizes().iter().copied().min().unwrap_or(0) as f64
    }
}

/// Utility objective: negated total generalization loss.
#[derive(Debug, Clone)]
pub struct NegLoss {
    /// The loss metric to negate.
    pub metric: LossMetric,
}

impl Default for NegLoss {
    fn default() -> Self {
        NegLoss {
            metric: LossMetric::classic(),
        }
    }
}

impl Objective for NegLoss {
    fn name(&self) -> String {
        "neg-loss".into()
    }

    fn value(&self, table: &AnonymizedTable) -> f64 {
        -self.metric.total_loss(table)
    }

    fn value_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> f64 {
        -self
            .metric
            .total_loss_encoded(codec, partition.levels())
            .expect("partition levels fit the codec")
    }
}

/// Fairness objective: negated Gini coefficient of the per-tuple privacy
/// distribution — directly optimizing *against* anonymization bias (§2).
#[derive(Debug, Clone, Copy, Default)]
pub struct NegPrivacyGini;

impl Objective for NegPrivacyGini {
    fn name(&self) -> String {
        "neg-privacy-gini".into()
    }

    fn value(&self, table: &AnonymizedTable) -> f64 {
        -gini(&EqClassSize.extract(table))
    }

    fn value_encoded(&self, codec: &GenCodec, partition: &NodePartition) -> f64 {
        -gini(&EqClassSize.extract_encoded(codec, partition))
    }
}

/// One point of the resulting Pareto front.
pub struct ParetoSolution {
    /// The level vector of this release.
    pub levels: LevelVector,
    /// Objective values, in objective order.
    pub objectives: Vec<f64>,
    /// The release itself.
    pub table: AnonymizedTable,
}

impl std::fmt::Debug for ParetoSolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParetoSolution")
            .field("levels", &self.levels)
            .field("objectives", &self.objectives)
            .finish()
    }
}

/// Configuration of the multi-objective search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MogaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MogaConfig {
    fn default() -> Self {
        MogaConfig {
            population: 32,
            generations: 30,
            mutation_rate: 0.2,
            seed: 42,
        }
    }
}

/// NSGA-II over the full-domain generalization lattice.
///
/// ```
/// use anoncmp_anonymize::prelude::*;
/// use anoncmp_datagen::census::{generate, CensusConfig};
///
/// let data = generate(&CensusConfig { rows: 80, seed: 1, zip_pool: 8 });
/// let moga = MultiObjectiveGenetic {
///     config: MogaConfig { population: 8, generations: 4, ..Default::default() },
///     ..Default::default()
/// };
/// let front = moga.run(&data).unwrap();
/// assert!(!front.is_empty());
/// // Sorted by privacy descending; utility rises as privacy falls.
/// for pair in front.windows(2) {
///     assert!(pair[0].objectives[0] >= pair[1].objectives[0]);
/// }
/// ```
pub struct MultiObjectiveGenetic {
    /// Search configuration.
    pub config: MogaConfig,
    /// The objectives to maximize simultaneously (at least two).
    pub objectives: Vec<Arc<dyn Objective>>,
}

impl Default for MultiObjectiveGenetic {
    fn default() -> Self {
        MultiObjectiveGenetic {
            config: MogaConfig::default(),
            objectives: vec![Arc::new(MeanClassSize), Arc::new(NegLoss::default())],
        }
    }
}

struct Individual {
    levels: LevelVector,
    objectives: Vec<f64>,
}

impl MultiObjectiveGenetic {
    /// Scores one lattice node through the encoded kernel: a
    /// [`NodePartition`] (class structure only) replaces the materialized
    /// table the search loop used to build per candidate.
    fn evaluate(&self, codec: &GenCodec, levels: LevelVector) -> Result<Individual> {
        let partition = codec.partition(&levels)?;
        let objectives = self
            .objectives
            .iter()
            .map(|o| o.value_encoded(codec, &partition))
            .collect();
        Ok(Individual { levels, objectives })
    }

    /// Runs the search and returns the non-dominated front, sorted by the
    /// first objective descending. The front always contains at least one
    /// solution.
    ///
    /// # Errors
    /// [`AnonymizeError::InvalidConfig`] for degenerate configurations;
    /// propagation of lattice errors otherwise.
    pub fn run(&self, dataset: &Arc<Dataset>) -> Result<Vec<ParetoSolution>> {
        // Objectives are unconstrained, so borrow a k = 1 constraint for
        // the shared sanity checks.
        validate_common(dataset, &Constraint::k_anonymity(1))?;
        if self.objectives.len() < 2 {
            return Err(AnonymizeError::InvalidConfig(
                "multi-objective search needs at least two objectives".into(),
            ));
        }
        if self.config.population < 4 {
            return Err(AnonymizeError::InvalidConfig(
                "population must be ≥ 4".into(),
            ));
        }
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Initial population: corners plus random nodes.
        let mut population: Vec<Individual> = Vec::with_capacity(self.config.population * 2);
        population.push(self.evaluate(&codec, lattice.bottom())?);
        population.push(self.evaluate(&codec, lattice.top())?);
        while population.len() < self.config.population {
            let levels: LevelVector = lattice
                .max_levels()
                .iter()
                .map(|&m| rng.gen_range(0..=m))
                .collect();
            population.push(self.evaluate(&codec, levels)?);
        }

        for _ in 0..self.config.generations {
            // Variation: binary tournaments on (front, crowding), one-point
            // crossover, ±1 mutation.
            let points: Vec<Vec<f64>> = population.iter().map(|i| i.objectives.clone()).collect();
            let order = rank_lookup(&points);
            let mut offspring: Vec<Individual> = Vec::with_capacity(self.config.population);
            while offspring.len() < self.config.population {
                let a = tournament(&mut rng, &order);
                let b = tournament(&mut rng, &order);
                let cut = rng.gen_range(0..=population[a].levels.len());
                let mut child: LevelVector = population[a].levels[..cut]
                    .iter()
                    .chain(population[b].levels[cut..].iter())
                    .copied()
                    .collect();
                for (dim, l) in child.iter_mut().enumerate() {
                    if rng.gen::<f64>() < self.config.mutation_rate {
                        let max = lattice.max_levels()[dim];
                        *l = if *l == 0 {
                            1.min(max)
                        } else if *l == max {
                            max.saturating_sub(1)
                        } else if rng.gen::<bool>() {
                            *l + 1
                        } else {
                            *l - 1
                        };
                    }
                }
                offspring.push(self.evaluate(&codec, child)?);
            }
            // Environmental selection: μ+λ, keep the NSGA-II best. Fronts
            // come from one batched dominance matrix over the pooled
            // population instead of per-pair point comparisons.
            population.extend(offspring);
            let points: Vec<Vec<f64>> = population.iter().map(|i| i.objectives.clone()).collect();
            let matrix = dominance_matrix(&points);
            let keep = nsga2_order_by(&points, |i, j| matrix.outcome(i, j) == Preference::First);
            let mut next: Vec<Individual> = Vec::with_capacity(self.config.population);
            let mut taken = vec![false; population.len()];
            for &i in keep.iter().take(self.config.population) {
                taken[i] = true;
            }
            for (i, ind) in population.drain(..).enumerate() {
                if taken[i] {
                    next.push(ind);
                }
            }
            population = next;
        }

        // Final front, deduplicated by level vector.
        population.sort_by(|a, b| a.levels.cmp(&b.levels));
        population.dedup_by(|a, b| a.levels == b.levels);
        let points: Vec<Vec<f64>> = population.iter().map(|i| i.objectives.clone()).collect();
        let front = pareto_front(&points);
        let mut solutions: Vec<ParetoSolution> = Vec::with_capacity(front.len());
        for i in front {
            let table = lattice.apply(dataset, &population[i].levels, "moga")?;
            solutions.push(ParetoSolution {
                levels: population[i].levels.clone(),
                objectives: population[i].objectives.clone(),
                table,
            });
        }
        solutions.sort_by(|a, b| {
            b.objectives[0]
                .partial_cmp(&a.objectives[0])
                .expect("objectives are not NaN")
        });
        Ok(solutions)
    }
}

/// All-pairs dominance over objective points, computed by the batched
/// [`ComparisonMatrix`] kernel. Its [`Preference::First`] entries coincide
/// exactly with `point_strongly_dominates` (weak dominance forward without
/// weak dominance backward ⟺ `≥` everywhere and `>` somewhere), so
/// matrix-fed sorting reproduces the point-based sort bit for bit.
fn dominance_matrix(points: &[Vec<f64>]) -> ComparisonMatrix {
    let names: Vec<String> = (0..points.len()).map(|i| i.to_string()).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let vectors: Vec<PropertyVector> = points
        .iter()
        .map(|p| PropertyVector::new("objectives", p.clone()))
        .collect();
    ComparisonMatrix::of_vectors(&name_refs, &vectors, &DominanceComparator)
}

/// Maps each index to its NSGA-II survival rank (0 = best).
fn rank_lookup(points: &[Vec<f64>]) -> Vec<usize> {
    let matrix = dominance_matrix(points);
    let fronts = non_dominated_sort_by(points.len(), |i, j| {
        matrix.outcome(i, j) == Preference::First
    });
    let mut rank = vec![0usize; points.len()];
    let mut position = 0usize;
    for front in fronts {
        let front_points: Vec<Vec<f64>> = front.iter().map(|&i| points[i].clone()).collect();
        let crowd = crowding_distance(&front_points);
        let mut ranked: Vec<(usize, f64)> = front.into_iter().zip(crowd).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("crowding is not NaN"));
        for (i, _) in ranked {
            rank[i] = position;
            position += 1;
        }
    }
    rank
}

/// Binary tournament: the individual with the smaller survival rank wins.
fn tournament(rng: &mut StdRng, rank: &[usize]) -> usize {
    let a = rng.gen_range(0..rank.len());
    let b = rng.gen_range(0..rank.len());
    if rank[a] <= rank[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::test_support::small_census;

    fn quick() -> MultiObjectiveGenetic {
        MultiObjectiveGenetic {
            config: MogaConfig {
                population: 12,
                generations: 8,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let ds = small_census();
        let front = quick().run(&ds).unwrap();
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !anoncmp_core::pareto::point_strongly_dominates(
                            &a.objectives,
                            &b.objectives
                        ),
                        "front member dominates another"
                    );
                }
            }
        }
    }

    #[test]
    fn front_spans_the_privacy_utility_tradeoff() {
        let ds = small_census();
        let front = quick().run(&ds).unwrap();
        // Sorted by privacy descending, utility must be ascending — the
        // trade-off curve of §7.
        for w in front.windows(2) {
            assert!(w[0].objectives[0] >= w[1].objectives[0]);
            assert!(
                w[0].objectives[1] <= w[1].objectives[1] + 1e-9,
                "utility must rise as privacy falls along the front"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = small_census();
        let f1 = quick().run(&ds).unwrap();
        let f2 = quick().run(&ds).unwrap();
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(a.levels, b.levels);
        }
    }

    #[test]
    fn three_objective_run_with_fairness() {
        let ds = small_census();
        let moga = MultiObjectiveGenetic {
            config: MogaConfig {
                population: 12,
                generations: 6,
                ..Default::default()
            },
            objectives: vec![
                Arc::new(MeanClassSize),
                Arc::new(NegLoss::default()),
                Arc::new(NegPrivacyGini),
            ],
        };
        let front = moga.run(&ds).unwrap();
        assert!(!front.is_empty());
        for s in &front {
            assert_eq!(s.objectives.len(), 3);
            // Gini objective is in [-1, 0].
            assert!((-1.0..=0.0).contains(&s.objectives[2]));
        }
    }

    #[test]
    fn objective_names_and_values() {
        let ds = small_census();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let t = lattice.apply(&ds, &lattice.top(), "top").unwrap();
        assert_eq!(MeanClassSize.value(&t), ds.len() as f64);
        assert_eq!(MinClassSize.value(&t), ds.len() as f64);
        assert!(NegLoss::default().value(&t) < 0.0);
        assert_eq!(NegPrivacyGini.value(&t), 0.0, "uniform sizes → zero gini");
        assert_eq!(MeanClassSize.name(), "mean-class-size");
        assert_eq!(MinClassSize.name(), "min-class-size");
        assert_eq!(NegLoss::default().name(), "neg-loss");
        assert_eq!(NegPrivacyGini.name(), "neg-privacy-gini");
    }

    #[test]
    fn encoded_objectives_match_table_objectives() {
        // Every built-in objective must score a node identically whether
        // it sees the materialized table or the encoded partition.
        let ds = small_census();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        let objectives: Vec<Arc<dyn Objective>> = vec![
            Arc::new(MeanClassSize),
            Arc::new(MinClassSize),
            Arc::new(NegLoss::default()),
            Arc::new(NegPrivacyGini),
        ];
        for levels in [
            lattice.bottom(),
            lattice.top(),
            vec![1; lattice.bottom().len()],
        ] {
            let table = lattice.apply(&ds, &levels, "node").unwrap();
            let partition = codec.partition(&levels).unwrap();
            for o in &objectives {
                assert_eq!(
                    o.value(&table),
                    o.value_encoded(&codec, &partition),
                    "{} diverges at {levels:?}",
                    o.name()
                );
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let ds = small_census();
        let m = MultiObjectiveGenetic {
            objectives: vec![Arc::new(MeanClassSize)],
            ..MultiObjectiveGenetic::default()
        };
        assert!(matches!(m.run(&ds), Err(AnonymizeError::InvalidConfig(_))));
        let m = MultiObjectiveGenetic {
            config: MogaConfig {
                population: 2,
                ..Default::default()
            },
            ..MultiObjectiveGenetic::default()
        };
        assert!(matches!(m.run(&ds), Err(AnonymizeError::InvalidConfig(_))));
    }

    #[test]
    fn corners_anchor_the_front() {
        // The raw release maximizes utility; the top maximizes privacy.
        // Both are seeded, so the front ends must match or beat them.
        let ds = small_census();
        let front = quick().run(&ds).unwrap();
        let best_privacy = front.first().unwrap();
        let best_utility = front.last().unwrap();
        assert!(best_privacy.objectives[0] >= ds.len() as f64 - 1e-9);
        assert!(
            best_utility.objectives[1] >= -1e-9,
            "raw release has zero loss"
        );
    }
}
