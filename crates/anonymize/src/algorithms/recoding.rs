//! Shared local-recoding helpers: generalizing a *group of tuples* to the
//! smallest region covering all of them. Used by the partition-based
//! algorithms ([`Mondrian`](crate::algorithms::mondrian::Mondrian),
//! [`GreedyCluster`](crate::algorithms::clustering::GreedyCluster)).

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Domain, GenValue, Taxonomy};

use crate::error::Result;

/// The generalized cell covering the values of `part` in column `col`:
/// numeric columns get the tight half-open interval, categorical columns
/// the lowest covering taxonomy node (or the raw value when unique, or
/// `*` when only the root covers / no taxonomy exists).
pub(crate) fn cover(dataset: &Dataset, col: usize, part: &[u32]) -> GenValue {
    match dataset.schema().attribute(col).domain() {
        Domain::Integer { .. } => {
            let vals: Vec<i64> = part
                .iter()
                .map(|&t| dataset.value(t as usize, col).as_int().expect("int column"))
                .collect();
            let lo = *vals.iter().min().expect("non-empty partition");
            let hi = *vals.iter().max().expect("non-empty partition");
            if lo == hi {
                GenValue::Int(lo)
            } else {
                // Half-open (lo − 1, hi] covers exactly lo..=hi.
                GenValue::Interval { lo: lo - 1, hi }
            }
        }
        Domain::Categorical { .. } => {
            let mut cats: Vec<u32> = part
                .iter()
                .map(|&t| dataset.value(t as usize, col).as_cat().expect("cat column"))
                .collect();
            cats.sort_unstable();
            cats.dedup();
            if cats.len() == 1 {
                return GenValue::Cat(cats[0]);
            }
            match dataset
                .schema()
                .attribute(col)
                .hierarchy()
                .and_then(|h| h.as_taxonomy())
            {
                Some(tax) => lca(tax, &cats),
                None => GenValue::Suppressed,
            }
        }
    }
}

/// Lowest taxonomy node covering all of `cats`; `Suppressed` when only the
/// root covers them.
pub(crate) fn lca(tax: &Taxonomy, cats: &[u32]) -> GenValue {
    let first = cats[0];
    for level in 1..tax.height() {
        let node = tax
            .ancestor_at_level(first, level)
            .expect("level within height");
        if cats.iter().all(|&c| tax.node_covers_leaf(node, c)) {
            return GenValue::Node(node);
        }
    }
    GenValue::Suppressed
}

/// Builds the release induced by a tuple partition: every quasi-identifier
/// cell of a group is generalized to the group's covering region;
/// non-QI columns stay raw.
///
/// # Errors
/// Propagates [`AnonymizedTable::new`] validation errors.
pub(crate) fn table_from_partitions(
    dataset: &Arc<Dataset>,
    partitions: &[Vec<u32>],
    name: &str,
) -> Result<AnonymizedTable> {
    let qi: Vec<usize> = dataset.schema().quasi_identifiers().to_vec();
    let mut records: Vec<Vec<GenValue>> = dataset
        .rows()
        .iter()
        .map(|row| row.iter().map(|v| GenValue::raw(*v)).collect())
        .collect();
    for part in partitions {
        for &col in &qi {
            let gv = cover(dataset, col, part);
            for &t in part {
                records[t as usize][col] = gv;
            }
        }
    }
    Ok(AnonymizedTable::new(dataset.clone(), records, name)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    use anoncmp_microdata::prelude::*;

    fn dataset() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100),
            Attribute::from_taxonomy(
                "city",
                Role::QuasiIdentifier,
                Taxonomy::masking(&["aa", "ab", "bb"], &[1]).unwrap(),
            ),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        Dataset::new(
            schema,
            vec![
                vec![Value::Int(10), Value::Cat(0), Value::Cat(0)],
                vec![Value::Int(20), Value::Cat(1), Value::Cat(1)],
                vec![Value::Int(20), Value::Cat(2), Value::Cat(0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn numeric_cover_is_tight() {
        let ds = dataset();
        assert_eq!(cover(&ds, 0, &[0, 1]), GenValue::Interval { lo: 9, hi: 20 });
        assert_eq!(
            cover(&ds, 0, &[1, 2]),
            GenValue::Int(20),
            "single value stays raw"
        );
    }

    #[test]
    fn categorical_cover_uses_lca() {
        let ds = dataset();
        // aa (cat 0) and ab (cat 1) share the "a*" node.
        let gv = cover(&ds, 1, &[0, 1]);
        let tax = ds
            .schema()
            .attribute(1)
            .hierarchy()
            .unwrap()
            .as_taxonomy()
            .unwrap();
        match gv {
            GenValue::Node(n) => assert_eq!(tax.label(n), "a*"),
            other => panic!("expected a node, got {other:?}"),
        }
        // aa and bb only share the root.
        assert_eq!(cover(&ds, 1, &[0, 2]), GenValue::Suppressed);
        assert_eq!(cover(&ds, 1, &[2]), GenValue::Cat(2));
    }

    #[test]
    fn partitions_become_classes() {
        let ds = dataset();
        let t = table_from_partitions(&ds, &[vec![0, 1], vec![2]], "t").unwrap();
        assert_eq!(t.classes().class_count(), 2);
        assert_eq!(t.classes().class_of(0), t.classes().class_of(1));
        // Sensitive cells stay raw.
        assert_eq!(t.cell(0, 2), &GenValue::Cat(0));
    }
}
