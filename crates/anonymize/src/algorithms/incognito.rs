//! Incognito-style bottom-up lattice enumeration.
//!
//! A complete breadth-first sweep of the full-domain generalization
//! lattice that exploits the same anti-monotonicity Incognito (LeFevre et
//! al.) and Bayardo–Agrawal's complete search (cited as \[1\] in the paper)
//! rely on: once a node satisfies the constraint, every ancestor also
//! satisfies it and need not be evaluated. The sweep yields the complete
//! *minimal frontier* — all satisfying nodes with no satisfying
//! predecessor — from which the loss-optimal release is chosen. Unlike
//! [`Samarati`](crate::algorithms::samarati::Samarati), which only
//! guarantees minimal *height*, this search is exhaustive over minimal
//! nodes.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{
    AnonymizedTable, Dataset, GenCodec, Lattice, LevelVector, NodePartition,
};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The bottom-up exhaustive lattice search.
#[derive(Debug, Clone)]
pub struct Incognito {
    /// Preference metric used to choose among the minimal frontier.
    pub preference: LossMetric,
}

impl Default for Incognito {
    fn default() -> Self {
        Incognito {
            preference: LossMetric::classic(),
        }
    }
}

/// Search outcome: the chosen release and the whole minimal frontier.
#[derive(Debug)]
pub struct IncognitoOutcome {
    /// All minimal satisfying level vectors.
    pub frontier: Vec<LevelVector>,
    /// Number of lattice nodes whose tables were actually evaluated.
    pub evaluated: usize,
    /// The chosen (loss-minimal) release.
    pub table: AnonymizedTable,
    /// The chosen level vector.
    pub levels: LevelVector,
}

impl Incognito {
    /// Runs the sweep, exposing the minimal frontier and evaluation count.
    pub fn run(&self, dataset: &Arc<Dataset>, constraint: &Constraint) -> Result<IncognitoOutcome> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;
        let fast = constraint.is_frequency_only();

        // BFS from the bottom. `status` records, per visited node, whether
        // it satisfies; ancestors of satisfying nodes are marked satisfied
        // without evaluation (anti-monotone pruning). For pure
        // frequency-set constraints a node is decided from its class sizes
        // alone — rejected nodes never materialize a table, and their
        // partitions are kept so successors can be derived incrementally
        // by re-keying class representatives (`GenCodec::coarsen`) instead
        // of re-grouping every row.
        let mut status: HashMap<LevelVector, bool> = HashMap::new();
        let mut partitions: HashMap<LevelVector, NodePartition> = HashMap::new();
        let mut frontier: Vec<LevelVector> = Vec::new();
        let mut evaluated = 0usize;
        let mut queue: VecDeque<LevelVector> = VecDeque::new();
        queue.push_back(lattice.bottom());

        while let Some(levels) = queue.pop_front() {
            if status.contains_key(&levels) {
                continue;
            }
            // Pruning: a node above any known-satisfying node satisfies.
            let dominated = frontier.iter().any(|f| Lattice::leq(f, &levels));
            let sat = if dominated {
                true
            } else {
                evaluated += 1;
                if fast {
                    let part = self.evaluate_incremental(&codec, &partitions, &levels)?;
                    let ok = constraint.feasible_partition(&part);
                    if !ok {
                        // Only violating nodes enqueue successors, so only
                        // their partitions are worth keeping.
                        partitions.insert(levels.clone(), part);
                    }
                    ok
                } else {
                    let table = lattice.apply_encoded(&codec, &levels, "incognito")?;
                    constraint.enforce(&table).is_some()
                }
            };
            if sat && !dominated {
                frontier.push(levels.clone());
            }
            status.insert(levels.clone(), sat);
            if !sat {
                for s in lattice.successors(&levels) {
                    queue.push_back(s);
                }
            }
        }
        drop(partitions);

        // Keep only minimal frontier nodes (no other frontier node below).
        let minimal: Vec<&LevelVector> = frontier
            .iter()
            .filter(|&cand| !frontier.iter().any(|l| l != cand && Lattice::leq(l, cand)))
            .collect();
        if minimal.is_empty() {
            return Err(AnonymizeError::Unsatisfiable(format!(
                "no lattice node satisfies {}",
                constraint.describe()
            )));
        }
        // Decode and enforce only the minimal frontier — every node in it
        // is known to satisfy, so enforce cannot fail here.
        let mut enforced: Vec<(LevelVector, AnonymizedTable)> = Vec::with_capacity(minimal.len());
        for levels in minimal {
            let table = lattice.apply_encoded(&codec, levels, "incognito")?;
            let t = constraint
                .enforce(&table)
                .expect("frontier nodes satisfy the constraint");
            enforced.push((levels.clone(), t));
        }
        let (levels, table) = enforced
            .iter()
            .min_by(|a, b| {
                let la = self.preference.total_loss(&a.1);
                let lb = self.preference.total_loss(&b.1);
                la.partial_cmp(&lb).expect("losses are not NaN")
            })
            .map(|(l, t)| (l.clone(), t.clone().renamed("incognito")))
            .expect("minimal frontier is non-empty");
        let frontier_levels: Vec<LevelVector> = enforced.into_iter().map(|(l, _)| l).collect();
        Ok(IncognitoOutcome {
            frontier: frontier_levels,
            evaluated,
            table,
            levels,
        })
    }

    /// Evaluates a node's partition, preferring to coarsen the smallest
    /// stored predecessor partition (valid only when the stepped dimension
    /// satisfies the class-merge invariant); falls back to grouping from
    /// scratch.
    fn evaluate_incremental(
        &self,
        codec: &GenCodec,
        partitions: &HashMap<LevelVector, NodePartition>,
        levels: &[usize],
    ) -> Result<NodePartition> {
        let mut best: Option<&NodePartition> = None;
        for (dim, &level) in levels.iter().enumerate() {
            if level == 0 || !codec.is_monotone(dim) {
                continue;
            }
            let mut pred = levels.to_vec();
            pred[dim] -= 1;
            if let Some(p) = partitions.get(&pred) {
                if best.is_none_or(|b| p.class_count() < b.class_count()) {
                    best = Some(p);
                }
            }
        }
        match best {
            Some(parent) => Ok(codec.coarsen(parent, levels)?),
            None => Ok(codec.partition(levels)?),
        }
    }
}

impl Anonymizer for Incognito {
    fn name(&self) -> String {
        "incognito".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|o| o.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::samarati::Samarati;
    use crate::algorithms::test_support::small_census;

    #[test]
    fn frontier_nodes_are_minimal_and_satisfying() {
        let ds = small_census();
        let c = Constraint::k_anonymity(3).with_suppression(6);
        let outcome = Incognito::default().run(&ds, &c).unwrap();
        assert!(c.satisfied(&outcome.table));
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        for levels in &outcome.frontier {
            // Satisfying…
            let t = lattice.apply(&ds, levels, "x").unwrap();
            assert!(c.enforce(&t).is_some());
            // …and minimal: every predecessor violates.
            for pred in lattice.predecessors(levels) {
                let t = lattice.apply(&ds, &pred, "x").unwrap();
                assert!(
                    c.enforce(&t).is_none(),
                    "predecessor satisfies: not minimal"
                );
            }
        }
    }

    #[test]
    fn pruning_reduces_evaluations() {
        let ds = small_census();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let c = Constraint::k_anonymity(3).with_suppression(6);
        let outcome = Incognito::default().run(&ds, &c).unwrap();
        assert!(
            outcome.evaluated < lattice.node_count(),
            "anti-monotone pruning must skip ancestors"
        );
    }

    #[test]
    fn at_least_as_good_as_samarati() {
        // Incognito is exhaustive over minimal nodes, so its loss-optimal
        // choice can never be worse than Samarati's height-minimal choice
        // under the same preference metric.
        let ds = small_census();
        let c = Constraint::k_anonymity(4).with_suppression(6);
        let inc = Incognito::default().run(&ds, &c).unwrap();
        let sam = Samarati::default().run(&ds, &c).unwrap();
        let m = LossMetric::classic();
        assert!(m.total_loss(&inc.table) <= m.total_loss(&sam.table) + 1e-9);
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            Incognito::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn k_one_frontier_is_the_bottom() {
        let ds = small_census();
        let outcome = Incognito::default()
            .run(&ds, &Constraint::k_anonymity(1))
            .unwrap();
        assert_eq!(
            outcome.frontier,
            vec![Lattice::new(ds.schema().clone()).unwrap().bottom()]
        );
    }
}
