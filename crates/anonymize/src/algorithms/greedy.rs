//! μ-Argus-inspired greedy recoding (cited as \[6\] in the paper).
//!
//! μ-Argus generalizes attributes greedily based on the frequency of
//! quasi-identifier combinations and suppresses outliers. This
//! implementation keeps that shape in the full-domain setting: at each
//! step it evaluates every single-attribute generalization and applies the
//! one with the best ratio of *violation reduction* to *loss increase*,
//! stopping as soon as the remaining violating tuples fit in the
//! suppression budget. Like μ-Argus, it is fast and makes no optimality
//! claim — the paper notes μ-Argus "suffers from the shortcoming that
//! larger combinations of quasi-identifiers are not checked", and this
//! greedy cousin inherits the same local-view limitation.

use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Lattice};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The greedy ratio-driven recoder.
#[derive(Debug, Clone)]
pub struct GreedyRecoder {
    /// Loss metric steering the ratio (loss increase denominator).
    pub metric: LossMetric,
}

impl Default for GreedyRecoder {
    fn default() -> Self {
        GreedyRecoder {
            metric: LossMetric::classic(),
        }
    }
}

impl GreedyRecoder {
    /// Runs the recoder, also returning the final level vector.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, Vec<usize>)> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let mut levels = lattice.bottom();
        let mut current = lattice.apply(dataset, &levels, "greedy")?;
        let mut current_viol = constraint.violating_tuples(&current);
        let mut current_loss = self.metric.total_loss(&current);
        loop {
            if let Some(done) = constraint.enforce(&current) {
                return Ok((done, levels));
            }
            // Evaluate every single-step generalization.
            let mut best: Option<(f64, Vec<usize>, AnonymizedTable, usize, f64)> = None;
            for succ in lattice.successors(&levels) {
                let table = lattice.apply(dataset, &succ, "greedy")?;
                let viol = constraint.violating_tuples(&table);
                let loss = self.metric.total_loss(&table);
                let reduction = current_viol.saturating_sub(viol) as f64;
                let cost = (loss - current_loss).max(1e-9);
                let ratio = reduction / cost;
                if best.as_ref().is_none_or(|(r, ..)| ratio > *r) {
                    best = Some((ratio, succ, table, viol, loss));
                }
            }
            match best {
                Some((_, succ, table, viol, loss)) => {
                    levels = succ;
                    current = table;
                    current_viol = viol;
                    current_loss = loss;
                }
                None => {
                    return Err(AnonymizeError::Unsatisfiable(format!(
                        "top of the lattice still violates {}",
                        constraint.describe()
                    )));
                }
            }
        }
    }
}

impl Anonymizer for GreedyRecoder {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::test_support::small_census;

    #[test]
    fn produces_satisfying_output() {
        let ds = small_census();
        for k in [2, 5, 10] {
            let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
            let t = GreedyRecoder::default().anonymize(&ds, &c).unwrap();
            assert!(c.satisfied(&t), "k = {k}");
        }
    }

    #[test]
    fn run_returns_levels_in_lattice() {
        let ds = small_census();
        let c = Constraint::k_anonymity(3).with_suppression(5);
        let (t, levels) = GreedyRecoder::default().run(&ds, &c).unwrap();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        assert!(lattice.contains(&levels));
        // Applying the reported levels and enforcing reproduces the output
        // partition.
        let reapplied = lattice.apply(&ds, &levels, "x").unwrap();
        let reapplied = c.enforce(&reapplied).unwrap();
        assert!(t.classes().same_partition(reapplied.classes()));
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            GreedyRecoder::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn trivial_constraint_returns_raw_release() {
        let ds = small_census();
        let (t, levels) = GreedyRecoder::default()
            .run(&ds, &Constraint::k_anonymity(1))
            .unwrap();
        assert_eq!(levels, vec![0; 6]);
        assert_eq!(t.suppressed_count(), 0);
    }
}
