//! Iyengar-style genetic search over the generalization lattice (cited as
//! \[7\] in the paper, with the crossover refinement of Lunacek et al. \[12\]).
//!
//! Chromosomes are level vectors; fitness rewards low information loss for
//! feasible individuals (constraint satisfiable within the suppression
//! budget) and penalizes infeasible ones proportionally to their violation
//! count, so the population is pulled toward the feasible frontier from
//! both sides. Selection is tournament-based; crossover is either uniform
//! or the one-point level-preserving variant ("Lunacek-style"); mutation
//! nudges single levels by ±1. Deterministic under a fixed seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Lattice, LevelVector};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// Crossover operator for level vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Crossover {
    /// Each gene independently from either parent.
    Uniform,
    /// One cut point; prefix from one parent, suffix from the other — the
    /// constrained operator of Lunacek et al., which preserves contiguous
    /// generalization decisions.
    OnePoint,
}

/// Configuration of the genetic search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Crossover operator.
    pub crossover: Crossover,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 32,
            generations: 40,
            tournament: 3,
            mutation_rate: 0.15,
            crossover: Crossover::OnePoint,
            seed: 42,
        }
    }
}

/// The genetic lattice search.
#[derive(Debug, Clone)]
pub struct Genetic {
    /// Search configuration.
    pub config: GeneticConfig,
    /// Loss metric defining the fitness of feasible individuals.
    pub metric: LossMetric,
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic {
            config: GeneticConfig::default(),
            metric: LossMetric::classic(),
        }
    }
}

struct Evaluated {
    levels: LevelVector,
    fitness: f64,
    feasible: Option<AnonymizedTable>,
}

impl Genetic {
    fn evaluate(
        &self,
        lattice: &Lattice,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
        levels: LevelVector,
    ) -> Result<Evaluated> {
        let table = lattice.apply(dataset, &levels, "genetic")?;
        match constraint.enforce(&table) {
            Some(enforced) => {
                let fitness = -self.metric.total_loss(&enforced);
                Ok(Evaluated {
                    levels,
                    fitness,
                    feasible: Some(enforced),
                })
            }
            None => {
                // Infeasible: rank below every feasible individual, better
                // when fewer tuples violate.
                let viol = constraint.violating_tuples(&table) as f64;
                let n = dataset.len() as f64;
                let a = dataset.schema().quasi_identifiers().len() as f64;
                // Worst feasible fitness is -(loss ≤ a per tuple) ≥ -a·n.
                let fitness = -a * n - viol;
                Ok(Evaluated {
                    levels,
                    fitness,
                    feasible: None,
                })
            }
        }
    }

    fn mutate(&self, rng: &mut StdRng, lattice: &Lattice, levels: &mut LevelVector) {
        for (dim, l) in levels.iter_mut().enumerate() {
            if rng.gen::<f64>() < self.config.mutation_rate {
                let max = lattice.max_levels()[dim];
                if *l == 0 {
                    *l += 1;
                } else if *l == max {
                    *l -= 1;
                } else if rng.gen::<bool>() {
                    *l += 1;
                } else {
                    *l -= 1;
                }
            }
        }
    }

    fn cross(&self, rng: &mut StdRng, a: &LevelVector, b: &LevelVector) -> LevelVector {
        match self.config.crossover {
            Crossover::Uniform => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| if rng.gen::<bool>() { x } else { y })
                .collect(),
            Crossover::OnePoint => {
                let cut = rng.gen_range(0..=a.len());
                a[..cut].iter().chain(b[cut..].iter()).copied().collect()
            }
        }
    }

    /// Runs the search, returning the best table and its level vector.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, LevelVector)> {
        validate_common(dataset, constraint)?;
        if self.config.population < 2 || self.config.tournament == 0 {
            return Err(AnonymizeError::InvalidConfig(
                "population must be ≥ 2 and tournament ≥ 1".into(),
            ));
        }
        let lattice = Lattice::new(dataset.schema().clone())?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Initial population: random nodes plus the top (always feasible
        // for monotone constraints, anchoring the feasible side).
        let mut population: Vec<Evaluated> = Vec::with_capacity(self.config.population);
        population.push(self.evaluate(&lattice, dataset, constraint, lattice.top())?);
        while population.len() < self.config.population {
            let levels: LevelVector = lattice
                .max_levels()
                .iter()
                .map(|&m| rng.gen_range(0..=m))
                .collect();
            population.push(self.evaluate(&lattice, dataset, constraint, levels)?);
        }

        let mut best_idx = Self::best_index(&population);
        for _ in 0..self.config.generations {
            let mut next: Vec<Evaluated> = Vec::with_capacity(self.config.population);
            // Elitism: carry the best individual forward unchanged.
            next.push(self.evaluate(
                &lattice,
                dataset,
                constraint,
                population[best_idx].levels.clone(),
            )?);
            while next.len() < self.config.population {
                let a = self.select(&mut rng, &population);
                let b = self.select(&mut rng, &population);
                let mut child = self.cross(&mut rng, &population[a].levels, &population[b].levels);
                self.mutate(&mut rng, &lattice, &mut child);
                next.push(self.evaluate(&lattice, dataset, constraint, child)?);
            }
            population = next;
            best_idx = Self::best_index(&population);
        }

        let best = &population[best_idx];
        match &best.feasible {
            Some(table) => Ok((table.clone().renamed("genetic"), best.levels.clone())),
            None => Err(AnonymizeError::Unsatisfiable(format!(
                "no feasible individual found for {} (the constraint may be \
                 unsatisfiable even at the lattice top)",
                constraint.describe()
            ))),
        }
    }

    fn best_index(population: &[Evaluated]) -> usize {
        population
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.fitness
                    .partial_cmp(&b.1.fitness)
                    .expect("fitness not NaN")
            })
            .map(|(i, _)| i)
            .expect("population is non-empty")
    }

    fn select(&self, rng: &mut StdRng, population: &[Evaluated]) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament {
            let c = rng.gen_range(0..population.len());
            if population[c].fitness > population[best].fitness {
                best = c;
            }
        }
        best
    }
}

impl Anonymizer for Genetic {
    fn name(&self) -> String {
        match self.config.crossover {
            Crossover::Uniform => "genetic-uniform".into(),
            Crossover::OnePoint => "genetic".into(),
        }
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::test_support::small_census;

    fn quick() -> Genetic {
        Genetic {
            config: GeneticConfig {
                population: 16,
                generations: 12,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_feasible_solutions() {
        let ds = small_census();
        for k in [2, 5] {
            let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
            let (t, levels) = quick().run(&ds, &c).unwrap();
            assert!(c.satisfied(&t), "k = {k}");
            let lattice = Lattice::new(ds.schema().clone()).unwrap();
            assert!(lattice.contains(&levels));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = small_census();
        let c = Constraint::k_anonymity(3).with_suppression(6);
        let (_, l1) = quick().run(&ds, &c).unwrap();
        let (_, l2) = quick().run(&ds, &c).unwrap();
        assert_eq!(l1, l2);
    }

    #[test]
    fn crossover_variants_both_work() {
        let ds = small_census();
        let c = Constraint::k_anonymity(4).with_suppression(6);
        for crossover in [Crossover::Uniform, Crossover::OnePoint] {
            let ga = Genetic {
                config: GeneticConfig {
                    population: 16,
                    generations: 10,
                    crossover,
                    ..Default::default()
                },
                ..Default::default()
            };
            let t = ga.anonymize(&ds, &c).unwrap();
            assert!(c.satisfied(&t));
        }
    }

    #[test]
    fn search_beats_or_matches_the_top() {
        // The GA must never return something worse than full suppression.
        use anoncmp_microdata::prelude::AnonymizedTable;
        let ds = small_census();
        let c = Constraint::k_anonymity(3).with_suppression(6);
        let (t, _) = quick().run(&ds, &c).unwrap();
        let m = LossMetric::classic();
        let top = AnonymizedTable::fully_suppressed(ds.clone(), "top");
        assert!(m.total_loss(&t) <= m.total_loss(&top) + 1e-9);
    }

    #[test]
    fn invalid_config_rejected() {
        let ds = small_census();
        let ga = Genetic {
            config: GeneticConfig {
                population: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            ga.anonymize(&ds, &Constraint::k_anonymity(2)),
            Err(AnonymizeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            quick().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }
}
