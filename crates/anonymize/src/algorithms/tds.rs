//! Top-Down Specialization (Fung, Wang & Yu, cited as \[3\] in the paper).
//!
//! Where Datafly climbs the lattice bottom-up, TDS descends it: start from
//! the fully generalized release (trivially satisfying any monotone
//! constraint) and repeatedly *specialize* — decrement one attribute's
//! level — choosing at each step the specialization with the best
//! information-gain-per-anonymity-loss score, stopping when every further
//! specialization would violate the constraint. The full-domain adaptation
//! implemented here keeps TDS's defining trait: it approaches the
//! constraint boundary from the safe side, so it can stop *at* the
//! boundary instead of overshooting past it, and every intermediate state
//! is releasable.

use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, Lattice};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The top-down specialization algorithm.
#[derive(Debug, Clone)]
pub struct TopDown {
    /// Loss metric whose *reduction* is the information gain of a
    /// specialization.
    pub metric: LossMetric,
}

impl Default for TopDown {
    fn default() -> Self {
        TopDown {
            metric: LossMetric::classic(),
        }
    }
}

impl TopDown {
    /// Runs TDS, also returning the final level vector.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, Vec<usize>)> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let mut levels = lattice.top();
        let top_table = lattice.apply(dataset, &levels, "top-down")?;
        let mut current = constraint.enforce(&top_table).ok_or_else(|| {
            AnonymizeError::Unsatisfiable(format!(
                "even the fully generalized release violates {}",
                constraint.describe()
            ))
        })?;
        let mut current_loss = self.metric.total_loss(&current);
        loop {
            // Score every feasible single-step specialization by
            // information gain (loss reduction); anonymity loss is implicit
            // in feasibility (infeasible specializations are discarded),
            // with the suppression increase as a tie-breaking denominator —
            // the "score = gain / loss" shape of TDS.
            let mut best: Option<(f64, Vec<usize>, AnonymizedTable, f64)> = None;
            for pred in lattice.predecessors(&levels) {
                let table = lattice.apply(dataset, &pred, "top-down")?;
                let Some(enforced) = constraint.enforce(&table) else {
                    continue;
                };
                let loss = self.metric.total_loss(&enforced);
                let gain = (current_loss - loss).max(0.0);
                let anonymity_cost = (enforced.suppressed_count() as f64
                    - current.suppressed_count() as f64)
                    .max(0.0)
                    + 1.0;
                let score = gain / anonymity_cost;
                if best.as_ref().is_none_or(|(s, ..)| score > *s) {
                    best = Some((score, pred, enforced, loss));
                }
            }
            match best {
                Some((_, pred, table, loss)) => {
                    levels = pred;
                    current = table;
                    current_loss = loss;
                }
                // No feasible specialization remains: the boundary.
                None => return Ok((current, levels)),
            }
        }
    }
}

impl Anonymizer for TopDown {
    fn name(&self) -> String {
        "top-down".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::datafly::Datafly;
    use crate::algorithms::test_support::small_census;

    #[test]
    fn produces_satisfying_output() {
        let ds = small_census();
        for k in [2, 5, 10] {
            let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
            let t = TopDown::default().anonymize(&ds, &c).unwrap();
            assert!(c.satisfied(&t), "k = {k}");
            assert_eq!(t.len(), ds.len());
        }
    }

    #[test]
    fn stops_at_the_boundary() {
        // Every further single-step specialization of the returned node
        // must be infeasible — TDS's defining postcondition.
        let ds = small_census();
        let c = Constraint::k_anonymity(4).with_suppression(5);
        let (_, levels) = TopDown::default().run(&ds, &c).unwrap();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        for pred in lattice.predecessors(&levels) {
            let t = lattice.apply(&ds, &pred, "x").unwrap();
            assert!(
                c.enforce(&t).is_none(),
                "a feasible specialization remained below the result"
            );
        }
    }

    #[test]
    fn competitive_with_datafly_on_loss() {
        // TDS approaches from the safe side and stops at the boundary, so
        // it should not lose badly to Datafly's bottom-up overshoot.
        let ds = small_census();
        let c = Constraint::k_anonymity(5).with_suppression(6);
        let m = LossMetric::classic();
        let tds = TopDown::default().anonymize(&ds, &c).unwrap();
        let datafly = Datafly.anonymize(&ds, &c).unwrap();
        // Allow a generous band; the point is the same order of magnitude,
        // with TDS usually at or below Datafly's loss.
        assert!(m.total_loss(&tds) <= m.total_loss(&datafly) * 1.5 + 1e-9);
    }

    #[test]
    fn k_one_descends_to_the_bottom() {
        let ds = small_census();
        let (t, levels) = TopDown::default()
            .run(&ds, &Constraint::k_anonymity(1))
            .unwrap();
        assert_eq!(levels, vec![0; 6], "1-anonymity allows the raw release");
        assert_eq!(t.suppressed_count(), 0);
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            TopDown::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn intermediate_states_always_releasable() {
        // The monotone path invariant: since TDS only moves between
        // enforced-feasible nodes, its *final* answer is feasible even with
        // extra models attached.
        use crate::models::LDiversity;
        use std::sync::Arc as StdArc;
        let ds = small_census();
        let c = Constraint::k_anonymity(2)
            .with_suppression(ds.len() / 4)
            .with_model(StdArc::new(LDiversity::distinct(2)));
        let t = TopDown::default().anonymize(&ds, &c).unwrap();
        assert!(c.satisfied(&t));
    }
}
