//! Brute-force optimal full-domain anonymization — the ground-truth
//! baseline in the spirit of Bayardo & Agrawal's complete search (cited as
//! \[1\] in the paper).
//!
//! Enumerates **every** lattice node, enforces the constraint on each, and
//! returns the feasible release with minimal total loss. Exponential in
//! the number of quasi-identifiers, so only usable on small lattices — its
//! purpose is to certify the heuristics: for *monotone* loss metrics the
//! loss-optimal feasible node always lies on the minimal feasible frontier
//! (generalizing further can only add loss), so
//! [`Incognito`](crate::algorithms::incognito::Incognito)'s frontier
//! choice must match this baseline; the tests pin that equivalence.

use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, GenCodec, Lattice, LevelVector};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The exhaustive full-domain search.
#[derive(Debug, Clone)]
pub struct OptimalLattice {
    /// The loss metric to minimize.
    pub metric: LossMetric,
}

impl Default for OptimalLattice {
    fn default() -> Self {
        OptimalLattice {
            metric: LossMetric::classic(),
        }
    }
}

impl OptimalLattice {
    /// Runs the exhaustive search, returning the loss-minimal feasible
    /// release, its levels, and the number of feasible nodes found.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, LevelVector, usize)> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;
        let fast = constraint.is_frequency_only();
        let mut best: Option<(f64, LevelVector, AnonymizedTable)> = None;
        let mut feasible = 0usize;
        for levels in lattice.iter_all() {
            // Frequency-set pre-check: infeasible nodes are rejected from
            // class sizes alone and never materialize a table.
            if fast && !constraint.feasible_partition(&lattice.evaluate_node(&codec, &levels)?) {
                continue;
            }
            let table = lattice.apply_encoded(&codec, &levels, "optimal")?;
            let Some(enforced) = constraint.enforce(&table) else {
                continue;
            };
            feasible += 1;
            let loss = self.metric.total_loss(&enforced);
            if best.as_ref().is_none_or(|(l, ..)| loss < *l) {
                best = Some((loss, levels, enforced));
            }
        }
        match best {
            Some((_, levels, table)) => Ok((table, levels, feasible)),
            None => Err(AnonymizeError::Unsatisfiable(format!(
                "no lattice node satisfies {}",
                constraint.describe()
            ))),
        }
    }
}

impl Anonymizer for OptimalLattice {
    fn name(&self) -> String {
        "optimal".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, ..)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::incognito::Incognito;
    use crate::algorithms::samarati::Samarati;
    use crate::algorithms::test_support::small_census;

    #[test]
    fn incognito_matches_the_exhaustive_optimum_without_suppression() {
        // The certification this module exists for: with no suppression
        // budget the total loss is pure generalization loss, which is
        // monotone along the lattice, so the optimum lies on the minimal
        // feasible frontier and Incognito finds it. (With a suppression
        // budget the optimum can sit *above* the frontier — trading more
        // generalization for fewer all-suppressed tuples — which is why
        // this equality is only asserted at budget 0.)
        let ds = small_census();
        for k in [2usize, 3, 4] {
            let c = Constraint::k_anonymity(k);
            let (opt_table, opt_levels, _) = OptimalLattice::default().run(&ds, &c).unwrap();
            let inc = Incognito::default().run(&ds, &c).unwrap();
            let m = LossMetric::classic();
            assert!(
                (m.total_loss(&inc.table) - m.total_loss(&opt_table)).abs() < 1e-9,
                "incognito is not optimal at k = {k}: {:?} vs {:?}",
                inc.levels,
                opt_levels
            );
        }
    }

    #[test]
    fn every_heuristic_is_bounded_below_by_the_optimum() {
        let ds = small_census();
        let c = Constraint::k_anonymity(5).with_suppression(6);
        let (opt_table, _, _) = OptimalLattice::default().run(&ds, &c).unwrap();
        let m = LossMetric::classic();
        let opt_loss = m.total_loss(&opt_table);
        for algo in [
            Box::new(crate::algorithms::datafly::Datafly) as Box<dyn Anonymizer>,
            Box::new(crate::algorithms::greedy::GreedyRecoder::default()),
            Box::new(crate::algorithms::tds::TopDown::default()),
            Box::new(Samarati::default()),
        ] {
            let t = algo.anonymize(&ds, &c).unwrap();
            assert!(
                m.total_loss(&t) >= opt_loss - 1e-9,
                "{} reports loss below the certified optimum",
                algo.name()
            );
        }
    }

    #[test]
    fn feasible_count_grows_with_budget() {
        let ds = small_census();
        let (_, _, tight) = OptimalLattice::default()
            .run(&ds, &Constraint::k_anonymity(4))
            .unwrap();
        let (_, _, loose) = OptimalLattice::default()
            .run(
                &ds,
                &Constraint::k_anonymity(4).with_suppression(ds.len() / 5),
            )
            .unwrap();
        assert!(loose >= tight);
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            OptimalLattice::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }
}
