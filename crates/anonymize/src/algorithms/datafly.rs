//! Sweeney's Datafly heuristic (cited as \[16\] in the paper).
//!
//! Datafly repeatedly generalizes the quasi-identifier attribute with the
//! most distinct values in the current (generalized) projection until the
//! number of tuples violating the constraint fits in the suppression
//! budget, then suppresses the stragglers. A fast greedy heuristic with no
//! optimality guarantee — exactly the kind of algorithm whose outputs the
//! paper's framework wants to compare.

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, GenCodec, Lattice};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The Datafly algorithm.
///
/// ```
/// use anoncmp_anonymize::prelude::*;
/// use anoncmp_datagen::census::{generate, CensusConfig};
///
/// let data = generate(&CensusConfig { rows: 120, seed: 1, zip_pool: 10 });
/// let constraint = Constraint::k_anonymity(3).with_suppression(12);
/// let (release, levels) = Datafly.run(&data, &constraint).unwrap();
/// assert!(constraint.satisfied(&release));
/// assert_eq!(levels.len(), 6, "one level per quasi-identifier");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Datafly;

impl Datafly {
    /// Runs Datafly and also returns the final level vector.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<(AnonymizedTable, Vec<usize>)> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;
        let fast = constraint.is_frequency_only();
        let mut levels = lattice.bottom();
        loop {
            // Pure-k constraints are decided from encoded class sizes; a
            // table is materialized only for the accepted node. Extra
            // models need the actual table every round.
            if fast {
                if constraint.feasible_partition(&lattice.evaluate_node(&codec, &levels)?) {
                    let table = lattice.apply_encoded(&codec, &levels, "datafly")?;
                    let done = constraint
                        .enforce(&table)
                        .expect("frequency-set feasibility guarantees enforcement");
                    return Ok((done, levels));
                }
            } else {
                let table = lattice.apply_encoded(&codec, &levels, "datafly")?;
                if let Some(done) = constraint.enforce(&table) {
                    return Ok((done, levels));
                }
            }
            // Generalize the attribute with the most distinct generalized
            // values among those not yet at their maximum level. The
            // codec's per-(dimension, level) dictionary size IS that
            // distinct count — every dictionary entry is the image of a
            // value present in the column.
            let mut best: Option<(usize, usize)> = None; // (dim, distinct)
            for (dim, &level) in levels.iter().enumerate() {
                if level >= lattice.max_levels()[dim] {
                    continue;
                }
                let distinct = codec.distinct_at(dim, level);
                if best.is_none_or(|(_, d)| distinct > d) {
                    best = Some((dim, distinct));
                }
            }
            match best {
                Some((dim, _)) => levels[dim] += 1,
                None => {
                    let violating = if fast {
                        lattice
                            .evaluate_node(&codec, &levels)?
                            .tuples_below(constraint.k)
                    } else {
                        let table = lattice.apply_encoded(&codec, &levels, "datafly")?;
                        constraint.violating_tuples(&table)
                    };
                    return Err(AnonymizeError::Unsatisfiable(format!(
                        "even full generalization leaves {violating} tuples violating {}",
                        constraint.describe()
                    )));
                }
            }
        }
    }
}

impl Anonymizer for Datafly {
    fn name(&self) -> String {
        "datafly".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    use crate::algorithms::test_support::small_census;
    use crate::models::{LDiversity, PrivacyModel};

    #[test]
    fn produces_k_anonymous_output() {
        let ds = small_census();
        for k in [2, 3, 5, 10] {
            let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
            let t = Datafly
                .anonymize(&ds, &c)
                .expect("datafly finds a solution");
            assert!(c.satisfied(&t), "k = {k}");
            assert_eq!(t.len(), ds.len(), "suppressed tuples are retained");
        }
    }

    #[test]
    fn zero_suppression_still_works() {
        let ds = small_census();
        let c = Constraint::k_anonymity(3);
        let t = Datafly
            .anonymize(&ds, &c)
            .expect("solvable by generalizing enough");
        assert!(c.satisfied(&t));
        assert_eq!(t.suppressed_count(), 0);
    }

    #[test]
    fn honors_extra_models() {
        let ds = small_census();
        let c = Constraint::k_anonymity(2)
            .with_suppression(ds.len() / 5)
            .with_model(StdArc::new(LDiversity::distinct(2)));
        let t = Datafly.anonymize(&ds, &c).expect("diversity reachable");
        assert!(c.satisfied(&t));
        assert!(LDiversity::distinct(2).satisfied(&t) || t.suppressed_count() > 0);
    }

    #[test]
    fn unsatisfiable_k_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            Datafly.anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn k_zero_rejected() {
        let ds = small_census();
        assert!(matches!(
            Datafly.anonymize(&ds, &Constraint::k_anonymity(0)),
            Err(AnonymizeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn run_reports_monotone_levels() {
        let ds = small_census();
        let c5 = Constraint::k_anonymity(5).with_suppression(10);
        let (_, l5) = Datafly.run(&ds, &c5).unwrap();
        let c2 = Constraint::k_anonymity(2).with_suppression(10);
        let (_, l2) = Datafly.run(&ds, &c2).unwrap();
        // Tightening k never *reduces* the total generalization Datafly
        // applies (it follows the same deterministic path, which only
        // continues further).
        let h5: usize = l5.iter().sum();
        let h2: usize = l2.iter().sum();
        assert!(h5 >= h2, "higher k generalizes at least as much");
    }
}
