//! Incognito with its defining subset phases (LeFevre, DeWitt &
//! Ramakrishnan).
//!
//! Where [`Incognito`](crate::algorithms::incognito::Incognito) sweeps the
//! full-QI lattice directly, the original Incognito algorithm works in
//! phases over *subsets* of the quasi-identifier: phase `i` determines,
//! for every size-`i` QI subset, which of its generalization nodes make
//! the **projection** onto that subset k-anonymous. Two prunings make
//! this fast:
//!
//! 1. **Subset anti-monotonicity**: projecting onto fewer attributes only
//!    merges classes, so if a node's projection onto some `(i−1)`-subset
//!    already violates k (within the suppression budget), the node cannot
//!    satisfy for the `i`-subset. Phase `i`'s candidate sets are therefore
//!    *joined* from phase `i−1`'s results before anything is evaluated.
//! 2. **Generalization anti-monotonicity**: within one subset's candidate
//!    lattice, ancestors of satisfying nodes are marked satisfying without
//!    evaluation (as in the plain sweep).
//!
//! Subset phases prune on k-anonymity + suppression only (those are
//! anti-monotone under projection); any extra models in the constraint
//! are enforced on the final full-QI stage, whose verdict is
//! authoritative. The final answer — the loss-minimal satisfying node —
//! is identical to the plain sweep's; what differs is how few nodes the
//! search has to *evaluate*, which the outcome reports.

use std::collections::HashMap;
use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, GenCodec, Lattice, LevelVector};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// The phased subset-join Incognito.
#[derive(Debug, Clone)]
pub struct SubsetIncognito {
    /// Preference metric used to choose among minimal satisfying nodes.
    pub preference: LossMetric,
}

impl Default for SubsetIncognito {
    fn default() -> Self {
        SubsetIncognito {
            preference: LossMetric::classic(),
        }
    }
}

/// Search outcome with pruning statistics.
#[derive(Debug)]
pub struct SubsetIncognitoOutcome {
    /// The chosen (loss-minimal) release.
    pub table: AnonymizedTable,
    /// The chosen level vector (full QI).
    pub levels: LevelVector,
    /// Projections actually evaluated per phase (phase `i` at index
    /// `i − 1`).
    pub evaluated_per_phase: Vec<usize>,
    /// Candidate nodes pruned away by subset joins before evaluation,
    /// summed over phases ≥ 2.
    pub join_pruned: usize,
}

/// Checks whether the projection onto `dims` (QI dimension indices) at
/// `levels` (aligned with `dims`) is k-anonymous within the suppression
/// budget: the number of tuples in classes smaller than `k` must not
/// exceed `budget`. Evaluated entirely on the codec's encoded columns —
/// no `GenValue` signatures are built.
fn projection_satisfies(
    codec: &GenCodec,
    dims: &[usize],
    levels: &[usize],
    k: usize,
    budget: usize,
) -> Result<bool> {
    let view = codec.view_subset(dims, levels)?;
    let (sizes, _) = view.sizes_and_reps();
    let violating: usize = sizes
        .iter()
        .filter(|&&size| (size as usize) < k)
        .map(|&size| size as usize)
        .sum();
    Ok(violating <= budget)
}

impl SubsetIncognito {
    /// Runs the phased search.
    pub fn run(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<SubsetIncognitoOutcome> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;
        let m = lattice.dimensions();
        let max_levels = lattice.max_levels().to_vec();
        let budget = constraint.max_suppression;
        let k = constraint.k;

        // sat[subset] = set of level vectors (aligned with the subset's
        // dims) whose projection satisfies k within budget. Subsets are
        // identified by their sorted dim lists.
        let mut sat: HashMap<Vec<usize>, Vec<LevelVector>> = HashMap::new();
        let mut evaluated_per_phase = Vec::with_capacity(m);
        let mut join_pruned = 0usize;

        for phase in 1..=m {
            let mut evaluated = 0usize;
            for dims in subsets(m, phase) {
                // Candidate nodes: all level combinations whose every
                // (phase−1)-projection is satisfying.
                let mut candidates: Vec<LevelVector> = Vec::new();
                let mut all = vec![0usize; phase];
                loop {
                    let viable = if phase == 1 {
                        true
                    } else {
                        (0..phase).all(|drop| {
                            let sub_dims: Vec<usize> = dims
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| i != drop)
                                .map(|(_, &d)| d)
                                .collect();
                            let sub_levels: Vec<usize> = all
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| i != drop)
                                .map(|(_, &l)| l)
                                .collect();
                            sat.get(&sub_dims).is_some_and(|s| s.contains(&sub_levels))
                        })
                    };
                    if viable {
                        candidates.push(all.clone());
                    } else {
                        join_pruned += 1;
                    }
                    // Odometer over the subset's level ranges.
                    let mut dim = phase;
                    loop {
                        if dim == 0 {
                            break;
                        }
                        dim -= 1;
                        if all[dim] < max_levels[dims[dim]] {
                            all[dim] += 1;
                            for later in all.iter_mut().skip(dim + 1) {
                                *later = 0;
                            }
                            break;
                        }
                        if dim == 0 {
                            all.clear();
                        }
                    }
                    if all.is_empty() {
                        break;
                    }
                }
                // Bottom-up over candidates with generalization pruning:
                // process in ascending height; a candidate dominated by a
                // known-satisfying node is satisfying without evaluation.
                candidates.sort_by_key(|c| c.iter().sum::<usize>());
                let mut satisfying: Vec<LevelVector> = Vec::new();
                for cand in candidates {
                    let dominated = satisfying.iter().any(|s| Lattice::leq(s, &cand));
                    let ok = if dominated {
                        true
                    } else {
                        evaluated += 1;
                        projection_satisfies(&codec, &dims, &cand, k, budget)?
                    };
                    if ok {
                        satisfying.push(cand);
                    }
                }
                sat.insert(dims, satisfying);
            }
            evaluated_per_phase.push(evaluated);
        }

        // Final stage: the full-QI satisfying set, filtered by the full
        // constraint (extra models + exact enforcement), minimal nodes
        // only, choose by preference loss.
        let full_dims: Vec<usize> = (0..m).collect();
        let full_sat = sat.remove(&full_dims).unwrap_or_default();
        let mut best: Option<(f64, LevelVector, AnonymizedTable)> = None;
        for levels in &full_sat {
            // Minimality: skip nodes strictly above another satisfying node.
            let minimal = !full_sat
                .iter()
                .any(|o| o != levels && Lattice::leq(o, levels));
            if !minimal {
                continue;
            }
            let table = lattice.apply_encoded(&codec, levels, "subset-incognito")?;
            let Some(enforced) = constraint.enforce(&table) else {
                continue;
            };
            let loss = self.preference.total_loss(&enforced);
            if best.as_ref().is_none_or(|(l, ..)| loss < *l) {
                best = Some((loss, levels.clone(), enforced));
            }
        }
        // Extra models can knock out every minimal node; fall back to the
        // full satisfying set before giving up.
        if best.is_none() {
            for levels in &full_sat {
                let table = lattice.apply_encoded(&codec, levels, "subset-incognito")?;
                if let Some(enforced) = constraint.enforce(&table) {
                    let loss = self.preference.total_loss(&enforced);
                    if best.as_ref().is_none_or(|(l, ..)| loss < *l) {
                        best = Some((loss, levels.clone(), enforced));
                    }
                }
            }
        }
        match best {
            Some((_, levels, table)) => Ok(SubsetIncognitoOutcome {
                table,
                levels,
                evaluated_per_phase,
                join_pruned,
            }),
            None => Err(AnonymizeError::Unsatisfiable(format!(
                "no lattice node satisfies {}",
                constraint.describe()
            ))),
        }
    }
}

/// All size-`len` subsets of `0..m`, each sorted ascending.
fn subsets(m: usize, len: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(len);
    fn rec(start: usize, m: usize, len: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == len {
            out.push(cur.clone());
            return;
        }
        for i in start..m {
            cur.push(i);
            rec(i + 1, m, len, cur, out);
            cur.pop();
        }
    }
    rec(0, m, len, &mut cur, &mut out);
    out
}

impl Anonymizer for SubsetIncognito {
    fn name(&self) -> String {
        "subset-incognito".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|o| o.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::incognito::Incognito;
    use crate::algorithms::test_support::small_census;

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(subsets(2, 0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn matches_the_plain_sweep() {
        // Both searches must return releases of identical loss (both pick
        // the loss-minimal minimal node).
        let ds = small_census();
        let m = LossMetric::classic();
        for k in [2usize, 4] {
            let c = Constraint::k_anonymity(k).with_suppression(6);
            let plain = Incognito::default().run(&ds, &c).unwrap();
            let phased = SubsetIncognito::default().run(&ds, &c).unwrap();
            assert!(
                (m.total_loss(&plain.table) - m.total_loss(&phased.table)).abs() < 1e-9,
                "k = {k}: plain {:?} vs phased {:?}",
                plain.levels,
                phased.levels
            );
            assert!(c.satisfied(&phased.table));
        }
    }

    #[test]
    fn join_pruning_fires() {
        let ds = small_census();
        let c = Constraint::k_anonymity(8).with_suppression(4);
        let outcome = SubsetIncognito::default().run(&ds, &c).unwrap();
        assert_eq!(outcome.evaluated_per_phase.len(), 6, "one entry per phase");
        assert!(
            outcome.join_pruned > 0,
            "a strict k must disqualify some nodes at subset level"
        );
        // Later phases evaluate fewer candidate nodes per subset thanks to
        // the joins; at minimum, the final phase must evaluate fewer nodes
        // than the whole lattice.
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        assert!(outcome.evaluated_per_phase[5] < lattice.node_count());
    }

    #[test]
    fn honors_extra_models_at_the_final_stage() {
        use crate::models::LDiversity;
        use std::sync::Arc as StdArc;
        let ds = small_census();
        let c = Constraint::k_anonymity(2)
            .with_suppression(ds.len() / 5)
            .with_model(StdArc::new(LDiversity::distinct(2)));
        let t = SubsetIncognito::default().anonymize(&ds, &c).unwrap();
        assert!(c.satisfied(&t));
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            SubsetIncognito::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn projection_check_is_consistent_with_full_grouping() {
        let ds = small_census();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        let dims: Vec<usize> = (0..lattice.dimensions()).collect();
        for levels in [
            vec![0, 0, 0, 0, 0, 0],
            vec![2, 3, 1, 1, 1, 1],
            lattice.top(),
        ] {
            let table = lattice.apply(&ds, &levels, "x").unwrap();
            let full_ok = Constraint::k_anonymity(3).violating_tuples(&table) <= 6;
            let proj_ok = projection_satisfies(&codec, &dims, &levels, 3, 6).unwrap();
            assert_eq!(
                proj_ok, full_ok,
                "projection check must agree with full grouping at {levels:?}"
            );
        }
    }

    #[test]
    fn projection_check_on_true_subsets_matches_reference_grouping() {
        use std::collections::HashMap;
        let ds = small_census();
        let codec = GenCodec::new(&ds).unwrap();
        let qi = ds.schema().quasi_identifiers().to_vec();
        // Project onto dims {0, 2} at mixed levels and compare against a
        // straightforward signature count.
        let dims = vec![0usize, 2];
        let levels = vec![1usize, 0];
        for (k, budget) in [(2usize, 0usize), (3, 5), (10, 2)] {
            let mut groups: HashMap<Vec<_>, usize> = HashMap::new();
            for t in 0..ds.len() {
                let sig: Vec<_> = dims
                    .iter()
                    .zip(&levels)
                    .map(|(&d, &l)| {
                        let col = qi[d];
                        ds.schema()
                            .attribute(col)
                            .hierarchy()
                            .unwrap()
                            .generalize(ds.value(t, col), l)
                            .unwrap()
                    })
                    .collect();
                *groups.entry(sig).or_insert(0) += 1;
            }
            let violating: usize = groups.values().filter(|&&s| s < k).sum();
            assert_eq!(
                projection_satisfies(&codec, &dims, &levels, k, budget).unwrap(),
                violating <= budget,
                "k={k} budget={budget}"
            );
        }
    }
}
