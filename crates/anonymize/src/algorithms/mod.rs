//! Disclosure control algorithms.
//!
//! Every algorithm implements [`Anonymizer`]: given a dataset and a
//! [`Constraint`], produce an [`AnonymizedTable`]. The roster mirrors the
//! algorithms the paper's §6 surveys as the systems whose outputs the
//! comparison framework is meant to judge:
//!
//! | Algorithm | Paper citation | Module |
//! |---|---|---|
//! | Datafly greedy full-domain recoding | Sweeney \[16\] | [`datafly`] |
//! | Binary search over lattice heights | Samarati \[15\] | [`samarati`] |
//! | Bottom-up lattice BFS with pruning | Incognito-style (cf. \[1\]) | [`incognito`] |
//! | Phased subset-join Incognito | LeFevre et al. (original) | [`subset_incognito`] |
//! | Multidimensional median partitioning | LeFevre et al. \[9\] | [`mondrian`] |
//! | Frequency-driven greedy recoding | μ-Argus \[6\] (inspired) | [`greedy`] |
//! | Genetic lattice search | Iyengar \[7\] / Lunacek et al. \[12\] | [`genetic`] |
//! | Top-down specialization | Fung, Wang & Yu \[3\] | [`tds`] |
//! | Greedy k-member clustering | Xu et al. \[22\] (inspired) | [`clustering`] |
//! | Exhaustive optimal baseline | Bayardo & Agrawal \[1\] (spirit) | [`optimal`] |
//! | Multi-objective NSGA-II (privacy as objective) | §7 / Dewri et al. \[2\] | [`moga`] |

pub mod clustering;
pub mod datafly;
pub mod genetic;
pub mod greedy;
pub mod incognito;
pub mod moga;
pub mod mondrian;
pub mod optimal;
pub(crate) mod recoding;
pub mod samarati;
pub mod subset_incognito;
pub mod tds;

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, Dataset};

use crate::constraint::Constraint;
use crate::error::Result;

/// A microdata disclosure control algorithm.
pub trait Anonymizer {
    /// Display name, e.g. `"datafly"`.
    fn name(&self) -> String;

    /// Produces an anonymization of `dataset` satisfying `constraint`.
    ///
    /// # Errors
    /// [`AnonymizeError::Unsatisfiable`](crate::error::AnonymizeError::Unsatisfiable)
    /// when the algorithm's search space contains no satisfying release,
    /// [`AnonymizeError::InvalidConfig`](crate::error::AnonymizeError::InvalidConfig)
    /// for bad parameters.
    fn anonymize(&self, dataset: &Arc<Dataset>, constraint: &Constraint)
        -> Result<AnonymizedTable>;
}

pub(crate) fn validate_common(dataset: &Dataset, constraint: &Constraint) -> Result<()> {
    use crate::error::AnonymizeError;
    if constraint.k == 0 {
        return Err(AnonymizeError::InvalidConfig("k must be at least 1".into()));
    }
    if dataset.is_empty() {
        return Err(AnonymizeError::Unsatisfiable("dataset is empty".into()));
    }
    if constraint.k > dataset.len() && constraint.max_suppression < dataset.len() {
        return Err(AnonymizeError::Unsatisfiable(format!(
            "k = {} exceeds the dataset size {}",
            constraint.k,
            dataset.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Arc;

    use anoncmp_datagen::census::{generate, CensusConfig};
    use anoncmp_microdata::prelude::Dataset;

    /// A small deterministic census sample shared by algorithm tests.
    pub fn small_census() -> Arc<Dataset> {
        generate(&CensusConfig {
            rows: 120,
            seed: 99,
            zip_pool: 12,
        })
    }

    /// A larger sample for behavioural assertions.
    pub fn medium_census() -> Arc<Dataset> {
        generate(&CensusConfig {
            rows: 600,
            seed: 123,
            zip_pool: 25,
        })
    }
}
