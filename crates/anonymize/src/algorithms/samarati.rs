//! Samarati's k-minimal generalization search (cited as \[15\] in the
//! paper).
//!
//! Exploits the monotonicity of k-anonymity along generalization chains:
//! if any node at lattice height `h` satisfies the constraint (with
//! suppression within budget), then some node at every height above `h`
//! does too. A binary search over heights finds the minimal satisfying
//! height `h*`; the *k-minimal generalizations* are the satisfying nodes at
//! `h*`, and "an optimal generalization can be chosen based on certain
//! preference information" — here, minimal total loss under a configurable
//! metric.

use std::sync::Arc;

use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::{AnonymizedTable, Dataset, GenCodec, Lattice, LevelVector};

use crate::algorithms::{validate_common, Anonymizer};
use crate::constraint::Constraint;
use crate::error::{AnonymizeError, Result};

/// Samarati's binary search over lattice heights.
#[derive(Debug, Clone)]
pub struct Samarati {
    /// Preference metric used to choose among the k-minimal nodes.
    pub preference: LossMetric,
}

impl Default for Samarati {
    fn default() -> Self {
        Samarati {
            preference: LossMetric::classic(),
        }
    }
}

/// The outcome of the search: the chosen release plus the full k-minimal
/// frontier it was chosen from.
#[derive(Debug)]
pub struct SamaratiOutcome {
    /// The minimal satisfying height.
    pub height: usize,
    /// All satisfying level vectors at that height.
    pub k_minimal: Vec<LevelVector>,
    /// The chosen (loss-minimal) release, already suppressed/enforced.
    pub table: AnonymizedTable,
    /// The chosen level vector.
    pub levels: LevelVector,
}

impl Samarati {
    /// Finds a satisfying node at `height`, returning every satisfying
    /// level vector (paired with its enforced table). Tables are decoded
    /// through the codec — byte-identical to [`Lattice::apply`].
    fn satisfying_at_height(
        lattice: &Lattice,
        codec: &GenCodec,
        constraint: &Constraint,
        height: usize,
    ) -> Result<Vec<(LevelVector, AnonymizedTable)>> {
        let mut out = Vec::new();
        for levels in lattice.nodes_at_height(height) {
            let table = lattice.apply_encoded(codec, &levels, "samarati")?;
            if let Some(enforced) = constraint.enforce(&table) {
                out.push((levels, enforced));
            }
        }
        Ok(out)
    }

    /// Whether any node at `height` satisfies the constraint. For pure
    /// frequency-set constraints this decides each node from its encoded
    /// class sizes alone — no table is materialized during the binary
    /// search, only for the final frontier.
    fn any_satisfying_at_height(
        lattice: &Lattice,
        codec: &GenCodec,
        constraint: &Constraint,
        height: usize,
    ) -> Result<bool> {
        if constraint.is_frequency_only() {
            for levels in lattice.nodes_at_height(height) {
                if constraint.feasible_partition(&lattice.evaluate_node(codec, &levels)?) {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        Ok(!Self::satisfying_at_height(lattice, codec, constraint, height)?.is_empty())
    }

    /// Runs the full search, exposing the k-minimal frontier.
    pub fn run(&self, dataset: &Arc<Dataset>, constraint: &Constraint) -> Result<SamaratiOutcome> {
        validate_common(dataset, constraint)?;
        let lattice = Lattice::new(dataset.schema().clone())?;
        let codec = GenCodec::new(dataset)?;

        // The top must satisfy, or nothing does (monotone constraint).
        if !Self::any_satisfying_at_height(&lattice, &codec, constraint, lattice.max_height())? {
            return Err(AnonymizeError::Unsatisfiable(format!(
                "even the fully generalized release violates {}",
                constraint.describe()
            )));
        }

        // Binary search for the minimal satisfying height.
        let (mut lo, mut hi) = (0usize, lattice.max_height());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if Self::any_satisfying_at_height(&lattice, &codec, constraint, mid)? {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let height = lo;
        let frontier = Self::satisfying_at_height(&lattice, &codec, constraint, height)?;
        debug_assert!(!frontier.is_empty());

        // Preference: minimal total loss.
        let (best_idx, _) = frontier
            .iter()
            .enumerate()
            .map(|(i, (_, t))| (i, self.preference.total_loss(t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("losses are not NaN"))
            .expect("frontier is non-empty");
        let k_minimal: Vec<LevelVector> = frontier.iter().map(|(l, _)| l.clone()).collect();
        let (levels, table) = frontier.into_iter().nth(best_idx).expect("index valid");
        let table = table.renamed("samarati");
        Ok(SamaratiOutcome {
            height,
            k_minimal,
            table,
            levels,
        })
    }
}

impl Anonymizer for Samarati {
    fn name(&self) -> String {
        "samarati".into()
    }

    fn anonymize(
        &self,
        dataset: &Arc<Dataset>,
        constraint: &Constraint,
    ) -> Result<AnonymizedTable> {
        self.run(dataset, constraint).map(|o| o.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::algorithms::test_support::small_census;

    #[test]
    fn finds_minimal_height() {
        let ds = small_census();
        let c = Constraint::k_anonymity(3).with_suppression(6);
        let outcome = Samarati::default().run(&ds, &c).unwrap();
        assert!(c.satisfied(&outcome.table));
        // No node strictly below the reported height satisfies.
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        if outcome.height > 0 {
            for levels in lattice.nodes_at_height(outcome.height - 1) {
                let t = lattice.apply(&ds, &levels, "x").unwrap();
                assert!(c.enforce(&t).is_none(), "height is not minimal");
            }
        }
        assert!(outcome.k_minimal.contains(&outcome.levels));
    }

    #[test]
    fn chosen_node_minimizes_preference_loss() {
        let ds = small_census();
        let c = Constraint::k_anonymity(4).with_suppression(6);
        let s = Samarati::default();
        let outcome = s.run(&ds, &c).unwrap();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let chosen_loss = s.preference.total_loss(&outcome.table);
        for levels in &outcome.k_minimal {
            let t = lattice.apply(&ds, levels, "x").unwrap();
            let t = c.enforce(&t).expect("frontier nodes satisfy");
            assert!(
                chosen_loss <= s.preference.total_loss(&t) + 1e-9,
                "a frontier node has lower loss than the chosen one"
            );
        }
    }

    #[test]
    fn heights_shrink_with_larger_budget() {
        let ds = small_census();
        let tight = Samarati::default()
            .run(&ds, &Constraint::k_anonymity(5))
            .unwrap();
        let loose = Samarati::default()
            .run(
                &ds,
                &Constraint::k_anonymity(5).with_suppression(ds.len() / 5),
            )
            .unwrap();
        assert!(loose.height <= tight.height);
    }

    #[test]
    fn unsatisfiable_reported() {
        let ds = small_census();
        let c = Constraint::k_anonymity(ds.len() + 1);
        assert!(matches!(
            Samarati::default().anonymize(&ds, &c),
            Err(AnonymizeError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn k_equals_one_is_the_bottom() {
        let ds = small_census();
        let outcome = Samarati::default()
            .run(&ds, &Constraint::k_anonymity(1))
            .unwrap();
        assert_eq!(outcome.height, 0, "raw release is 1-anonymous");
    }
}
