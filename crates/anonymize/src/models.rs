//! Privacy models checked per equivalence class.
//!
//! Each model decides whether one equivalence class of an anonymized
//! release satisfies its requirement, evaluated against the **original**
//! sensitive values (the publisher has them). Fully suppressed classes are
//! exempt by convention — suppression is the escape hatch every classical
//! algorithm (Datafly, Samarati, μ-Argus) relies on — but they count
//! against the constraint's suppression budget (see
//! [`Constraint`](crate::constraint::Constraint)).

use anoncmp_microdata::prelude::{AnonymizedTable, Value};

/// A per-class privacy requirement.
pub trait PrivacyModel: Send + Sync {
    /// Display name, e.g. `"3-anonymity"`.
    fn name(&self) -> String;

    /// Whether one equivalence class (given by its member tuple ids)
    /// satisfies the requirement.
    fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool;

    /// Whether every non-suppressed class satisfies the requirement.
    fn satisfied(&self, table: &AnonymizedTable) -> bool {
        table.classes().iter().all(|(_, members)| {
            let suppressed = members
                .iter()
                .all(|&t| table.is_tuple_suppressed(t as usize));
            suppressed || self.class_satisfied(table, members)
        })
    }
}

fn sensitive_column(table: &AnonymizedTable, column: Option<usize>) -> usize {
    column.unwrap_or_else(|| {
        *table
            .dataset()
            .schema()
            .sensitive()
            .first()
            .expect("schema declares a sensitive attribute")
    })
}

/// k-anonymity: every class has at least `k` members (Sweeney/Samarati).
#[derive(Debug, Clone, Copy)]
pub struct KAnonymity {
    /// Minimum class size.
    pub k: usize,
}

impl PrivacyModel for KAnonymity {
    fn name(&self) -> String {
        format!("{}-anonymity", self.k)
    }

    fn class_satisfied(&self, _table: &AnonymizedTable, members: &[u32]) -> bool {
        members.len() >= self.k
    }
}

/// How ℓ-diversity counts the diversity of a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiversityKind {
    /// At least `ℓ` distinct sensitive values (Machanavajjhala et al.'s
    /// distinct ℓ-diversity).
    Distinct,
    /// Entropy of the class's sensitive distribution at least `ln ℓ`
    /// (entropy ℓ-diversity).
    Entropy,
    /// Recursive (c, ℓ)-diversity: with value counts sorted descending
    /// `r₁ ≥ r₂ ≥ …`, require `r₁ < c · (r_ℓ + r_{ℓ+1} + …)` — the most
    /// frequent value must not dominate the tail.
    Recursive {
        /// The constant `c > 0`.
        c: f64,
    },
}

/// ℓ-diversity on a sensitive attribute.
#[derive(Debug, Clone, Copy)]
pub struct LDiversity {
    /// Required diversity level `ℓ`.
    pub l: usize,
    /// Counting variant.
    pub kind: DiversityKind,
    /// Sensitive column; `None` selects the schema's first sensitive
    /// attribute.
    pub column: Option<usize>,
}

impl LDiversity {
    /// Distinct ℓ-diversity on the default sensitive attribute.
    pub fn distinct(l: usize) -> Self {
        LDiversity {
            l,
            kind: DiversityKind::Distinct,
            column: None,
        }
    }

    /// Entropy ℓ-diversity on the default sensitive attribute.
    pub fn entropy(l: usize) -> Self {
        LDiversity {
            l,
            kind: DiversityKind::Entropy,
            column: None,
        }
    }

    /// Recursive (c, ℓ)-diversity on the default sensitive attribute.
    pub fn recursive(c: f64, l: usize) -> Self {
        assert!(c > 0.0, "the recursive constant c must be positive");
        LDiversity {
            l,
            kind: DiversityKind::Recursive { c },
            column: None,
        }
    }
}

impl PrivacyModel for LDiversity {
    fn name(&self) -> String {
        match self.kind {
            DiversityKind::Distinct => format!("distinct {}-diversity", self.l),
            DiversityKind::Entropy => format!("entropy {}-diversity", self.l),
            DiversityKind::Recursive { c } => format!("recursive ({c},{})-diversity", self.l),
        }
    }

    fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool {
        let col = sensitive_column(table, self.column);
        let ds = table.dataset();
        let mut vals: Vec<&Value> = members.iter().map(|&t| ds.value(t as usize, col)).collect();
        vals.sort_unstable();
        match self.kind {
            DiversityKind::Distinct => {
                vals.dedup();
                vals.len() >= self.l
            }
            DiversityKind::Entropy => {
                let n = vals.len() as f64;
                let mut entropy = 0.0;
                let mut i = 0;
                while i < vals.len() {
                    let mut j = i;
                    while j < vals.len() && vals[j] == vals[i] {
                        j += 1;
                    }
                    let p = (j - i) as f64 / n;
                    entropy -= p * p.ln();
                    i = j;
                }
                entropy >= (self.l as f64).ln() - 1e-12
            }
            DiversityKind::Recursive { c } => {
                // Value counts, descending.
                let mut counts: Vec<usize> = Vec::new();
                let mut i = 0;
                while i < vals.len() {
                    let mut j = i;
                    while j < vals.len() && vals[j] == vals[i] {
                        j += 1;
                    }
                    counts.push(j - i);
                    i = j;
                }
                counts.sort_unstable_by(|a, b| b.cmp(a));
                if counts.len() < self.l {
                    return false;
                }
                let tail: usize = counts[self.l - 1..].iter().sum();
                (counts[0] as f64) < c * tail as f64
            }
        }
    }
}

/// t-closeness: the total variation distance between each class's
/// sensitive distribution and the global distribution is at most `t`
/// (Li et al.; total variation stands in for EMD on nominal attributes).
#[derive(Debug, Clone, Copy)]
pub struct TCloseness {
    /// Maximum admissible distance.
    pub t: f64,
    /// Sensitive column; `None` selects the schema's first sensitive
    /// attribute.
    pub column: Option<usize>,
}

impl TCloseness {
    /// t-closeness on the default sensitive attribute.
    pub fn new(t: f64) -> Self {
        TCloseness { t, column: None }
    }

    /// The total variation distance of one class from the global
    /// distribution.
    pub fn class_distance(&self, table: &AnonymizedTable, members: &[u32]) -> f64 {
        let col = sensitive_column(table, self.column);
        let ds = table.dataset();
        let n = table.len() as f64;
        let m = members.len() as f64;
        // Global counts.
        let mut values: Vec<(&Value, f64, f64)> = Vec::new(); // (value, global, local)
        for t in 0..table.len() {
            let v = ds.value(t, col);
            match values.iter_mut().find(|(g, _, _)| *g == v) {
                Some((_, c, _)) => *c += 1.0,
                None => values.push((v, 1.0, 0.0)),
            }
        }
        for &t in members {
            let v = ds.value(t as usize, col);
            if let Some((_, _, l)) = values.iter_mut().find(|(g, _, _)| *g == v) {
                *l += 1.0;
            }
        }
        values
            .iter()
            .map(|(_, g, l)| (g / n - l / m).abs())
            .sum::<f64>()
            / 2.0
    }
}

impl PrivacyModel for TCloseness {
    fn name(&self) -> String {
        format!("{}-closeness", self.t)
    }

    fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool {
        self.class_distance(table, members) <= self.t + 1e-12
    }
}

/// p-sensitive k-anonymity (Truta & Vinay): within a k-anonymous class,
/// at least `p` distinct sensitive values must occur. The `k` part is
/// expressed separately via [`KAnonymity`]; this model contributes the
/// sensitivity requirement.
#[derive(Debug, Clone, Copy)]
pub struct PSensitive {
    /// Required number of distinct sensitive values per class.
    pub p: usize,
    /// Sensitive column; `None` selects the schema's first sensitive
    /// attribute.
    pub column: Option<usize>,
}

impl PSensitive {
    /// p-sensitivity on the default sensitive attribute.
    pub fn new(p: usize) -> Self {
        PSensitive { p, column: None }
    }
}

impl PrivacyModel for PSensitive {
    fn name(&self) -> String {
        format!("{}-sensitive", self.p)
    }

    fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool {
        LDiversity {
            l: self.p,
            kind: DiversityKind::Distinct,
            column: self.column,
        }
        .class_satisfied(table, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use anoncmp_microdata::prelude::*;

    /// One class {0,1,2} (x,x,y) and one class {3,4,5} (y,y,y).
    fn fixture() -> AnonymizedTable {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(IntervalLadder::uniform(0, &[10]).unwrap().into())
                .unwrap(),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Cat(0)],
                vec![Value::Int(2), Value::Cat(0)],
                vec![Value::Int(3), Value::Cat(1)],
                vec![Value::Int(11), Value::Cat(1)],
                vec![Value::Int(12), Value::Cat(1)],
                vec![Value::Int(13), Value::Cat(1)],
            ],
        )
        .unwrap();
        Lattice::new(schema).unwrap().apply(&ds, &[1], "f").unwrap()
    }

    #[test]
    fn k_anonymity_checks_class_sizes() {
        let t = fixture();
        assert!(KAnonymity { k: 3 }.satisfied(&t));
        assert!(!KAnonymity { k: 4 }.satisfied(&t));
        assert_eq!(KAnonymity { k: 3 }.name(), "3-anonymity");
    }

    #[test]
    fn distinct_l_diversity() {
        let t = fixture();
        // Class {0,1,2} has {x,y}: 2 distinct; class {3,4,5} has only {y}.
        assert!(LDiversity::distinct(1).satisfied(&t));
        assert!(!LDiversity::distinct(2).satisfied(&t));
        let c0 = t.classes().members(t.classes().class_of(0));
        assert!(LDiversity::distinct(2).class_satisfied(&t, c0));
    }

    #[test]
    fn entropy_l_diversity() {
        let t = fixture();
        let c0 = t.classes().members(t.classes().class_of(0)).to_vec();
        let c1 = t.classes().members(t.classes().class_of(3)).to_vec();
        // Class 0: distribution (2/3, 1/3) → entropy ≈ 0.6365 ⇒ satisfies
        // entropy ℓ for ℓ ≤ e^0.6365 ≈ 1.89, i.e. ℓ=1 yes, ℓ=2 no.
        assert!(LDiversity::entropy(1).class_satisfied(&t, &c0));
        assert!(!LDiversity::entropy(2).class_satisfied(&t, &c0));
        // Class 1 is pure: entropy 0 ⇒ only ℓ=1.
        assert!(LDiversity::entropy(1).class_satisfied(&t, &c1));
        assert!(!LDiversity::entropy(2).class_satisfied(&t, &c1));
        assert!(LDiversity::entropy(2).name().contains("entropy"));
    }

    #[test]
    fn recursive_cl_diversity() {
        let t = fixture();
        // Class {0,1,2} counts (descending): x 2, y 1.
        let c0 = t.classes().members(t.classes().class_of(0)).to_vec();
        // l = 2: r1 = 2, tail from r2 = 1. c = 3: 2 < 3*1 ok; c = 2: 2 < 2*1 fails.
        assert!(LDiversity::recursive(3.0, 2).class_satisfied(&t, &c0));
        assert!(!LDiversity::recursive(2.0, 2).class_satisfied(&t, &c0));
        // l = 3 but only 2 distinct values: fails outright.
        assert!(!LDiversity::recursive(10.0, 3).class_satisfied(&t, &c0));
        // Pure class {3,4,5} (y,y,y): l = 1 means tail = whole count;
        // 3 < c*3 holds for c > 1.
        let c1 = t.classes().members(t.classes().class_of(3)).to_vec();
        assert!(LDiversity::recursive(1.5, 1).class_satisfied(&t, &c1));
        assert!(!LDiversity::recursive(0.9, 1).class_satisfied(&t, &c1));
        assert!(LDiversity::recursive(2.0, 2).name().contains("recursive"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn recursive_rejects_nonpositive_c() {
        let _ = LDiversity::recursive(0.0, 2);
    }

    #[test]
    fn t_closeness_distances() {
        let t = fixture();
        let model = TCloseness::new(0.5);
        // Global: x 1/3, y 2/3. Class {0,1,2}: x 2/3, y 1/3 → TV = 1/3.
        let c0 = t.classes().members(t.classes().class_of(0)).to_vec();
        assert!((model.class_distance(&t, &c0) - 1.0 / 3.0).abs() < 1e-12);
        // Class {3,4,5}: y only → TV = 1/3.
        let c1 = t.classes().members(t.classes().class_of(3)).to_vec();
        assert!((model.class_distance(&t, &c1) - 1.0 / 3.0).abs() < 1e-12);
        assert!(TCloseness::new(0.34).satisfied(&t));
        assert!(!TCloseness::new(0.2).satisfied(&t));
    }

    #[test]
    fn p_sensitive_matches_distinct_diversity() {
        let t = fixture();
        assert!(PSensitive::new(1).satisfied(&t));
        assert!(!PSensitive::new(2).satisfied(&t));
        assert_eq!(PSensitive::new(2).name(), "2-sensitive");
    }

    #[test]
    fn suppressed_classes_are_exempt() {
        let t = fixture();
        let sup = AnonymizedTable::fully_suppressed(t.dataset().clone(), "sup");
        // One big class of 6 with sensitive {x:2, y:4}: 2 distinct.
        assert!(LDiversity::distinct(2).satisfied(&sup));
        // Fully suppressed classes pass `satisfied` even for absurd
        // requirements because they are exempt.
        assert!(LDiversity::distinct(99).satisfied(&sup));
        assert!(KAnonymity { k: 99 }.satisfied(&sup));
    }

    #[test]
    fn fully_generalized_but_unsuppressed_class_is_checked() {
        // A class that is merely *coarse* (not suppressed) is still checked:
        // the fixture's classes fail ℓ=3 and that is reported.
        let t = fixture();
        assert!(!LDiversity::distinct(3).satisfied(&t));
    }
}
