//! Errors produced by disclosure control algorithms.

use std::fmt;

use anoncmp_microdata::error::Error as MicrodataError;

/// Errors from running an anonymization algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonymizeError {
    /// No anonymization satisfying the constraint exists in the algorithm's
    /// search space (e.g. even full suppression violates an extra model, or
    /// the dataset is smaller than `k`).
    Unsatisfiable(String),
    /// Invalid algorithm configuration (e.g. `k = 0`).
    InvalidConfig(String),
    /// An underlying microdata operation failed.
    Microdata(MicrodataError),
}

impl fmt::Display for AnonymizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonymizeError::Unsatisfiable(msg) => write!(f, "constraint unsatisfiable: {msg}"),
            AnonymizeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AnonymizeError::Microdata(e) => write!(f, "microdata error: {e}"),
        }
    }
}

impl std::error::Error for AnonymizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnonymizeError::Microdata(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MicrodataError> for AnonymizeError {
    fn from(e: MicrodataError) -> Self {
        AnonymizeError::Microdata(e)
    }
}

/// Result alias for anonymization operations.
pub type Result<T> = std::result::Result<T, AnonymizeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AnonymizeError::Unsatisfiable("k larger than dataset".into());
        assert!(e.to_string().contains("unsatisfiable"));

        let e = AnonymizeError::InvalidConfig("k = 0".into());
        assert!(e.to_string().contains("configuration"));

        let inner = MicrodataError::UnknownAttribute("x".into());
        let e: AnonymizeError = inner.into();
        assert!(e.to_string().contains("microdata"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(AnonymizeError::Unsatisfiable(String::new())
            .source()
            .is_none());
    }
}
