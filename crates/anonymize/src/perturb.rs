//! Perturbative disclosure control methods.
//!
//! Where the generalization algorithms recode quasi-identifier values
//! into coarser hierarchy nodes, these methods keep the original row
//! count and numeric QI columns and modify the *values*: additive and
//! correlated noise, rank swapping, univariate and MDAV multivariate
//! microaggregation, and randomization within a record's nearest-neighbor
//! neighborhood (RWN-style). All of them consume a
//! [`NumericBase`] and emit a [`NumericRelease`], the perturbative wing
//! of the engine's two-family [`Release`](anoncmp_microdata::numeric::Release)
//! representation.
//!
//! # Determinism
//!
//! Every method is a pure function of `(base, spec, seed)`: the RNG is a
//! seeded [`StdRng`], Gaussian variates come from a fixed Box–Muller
//! transform, and all iteration orders are content-defined (column-major
//! with index-tie-broken sorts). The engine derives `seed` from the job's
//! release fingerprint, so memoization, checkpoint journaling, and dist
//! sharding work on perturbative jobs exactly as on generalization jobs.

use std::sync::Arc;

use anoncmp_microdata::numeric::{NumericBase, NumericRelease};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The perturbative method families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbMethod {
    /// Additive Gaussian noise, independent per column, scaled by each
    /// column's standard deviation.
    Noise,
    /// Correlated Gaussian noise: the noise vector's covariance is
    /// proportional to the data covariance (Kim's method), so published
    /// correlations survive perturbation.
    CorrelatedNoise,
    /// Rank swapping: each column's values are permuted, but only between
    /// records whose ranks differ by at most the window.
    RankSwap,
    /// Univariate microaggregation: each column is independently sorted
    /// and replaced by consecutive group means.
    MicroAgg,
    /// MDAV multivariate microaggregation: records are clustered into
    /// groups of `k..2k-1` by standardized distance and replaced by their
    /// group centroid.
    Mdav,
    /// Randomization within neighborhood: each record is replaced by a
    /// uniformly drawn member of its k-nearest-neighbor neighborhood.
    Rwn,
}

impl PerturbMethod {
    /// The method's family name (the prefix of its wire name).
    pub fn family(&self) -> &'static str {
        match self {
            PerturbMethod::Noise => "noise",
            PerturbMethod::CorrelatedNoise => "cnoise",
            PerturbMethod::RankSwap => "rankswap",
            PerturbMethod::MicroAgg => "microagg",
            PerturbMethod::Mdav => "mdav",
            PerturbMethod::Rwn => "rwn",
        }
    }
}

/// One fully parameterized perturbative method.
///
/// `param` is the method's single tuning knob, kept integral so the spec
/// stays `Copy`, hashable, and exactly round-trippable through wire
/// names: for the noise methods it is the noise scale in *thousandths* of
/// a column standard deviation (`noise:0.05` ⇔ `param = 50`); for rank
/// swapping it is the maximum rank displacement; for the
/// microaggregation methods the minimum group size `k`; for RWN the
/// neighborhood size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerturbSpec {
    /// Which method.
    pub method: PerturbMethod,
    /// The method's parameter (see the struct docs for units).
    pub param: u32,
}

/// Thousandths per unit of noise scale in wire names.
const SCALE_MILLI: f64 = 1000.0;

impl PerturbSpec {
    /// Additive Gaussian noise with the given scale (fraction of each
    /// column's standard deviation, rounded to thousandths).
    pub fn noise(scale: f64) -> Self {
        PerturbSpec {
            method: PerturbMethod::Noise,
            param: (scale * SCALE_MILLI).round() as u32,
        }
    }

    /// Correlated Gaussian noise with the given scale.
    pub fn correlated_noise(scale: f64) -> Self {
        PerturbSpec {
            method: PerturbMethod::CorrelatedNoise,
            param: (scale * SCALE_MILLI).round() as u32,
        }
    }

    /// Rank swapping with the given maximum rank displacement.
    pub fn rank_swap(window: u32) -> Self {
        PerturbSpec {
            method: PerturbMethod::RankSwap,
            param: window,
        }
    }

    /// Univariate microaggregation with minimum group size `k`.
    pub fn micro_agg(k: u32) -> Self {
        PerturbSpec {
            method: PerturbMethod::MicroAgg,
            param: k,
        }
    }

    /// MDAV multivariate microaggregation with minimum group size `k`.
    pub fn mdav(k: u32) -> Self {
        PerturbSpec {
            method: PerturbMethod::Mdav,
            param: k,
        }
    }

    /// Randomization within a `k`-nearest-neighbor neighborhood.
    pub fn rwn(k: u32) -> Self {
        PerturbSpec {
            method: PerturbMethod::Rwn,
            param: k,
        }
    }

    /// The noise scale this spec encodes (noise methods only).
    pub fn scale(&self) -> f64 {
        f64::from(self.param) / SCALE_MILLI
    }

    /// The spec's stable wire name, e.g. `noise:0.05`, `rankswap:8`,
    /// `mdav:5`. Parses back exactly via [`PerturbSpec::parse`].
    pub fn wire_name(&self) -> String {
        match self.method {
            PerturbMethod::Noise | PerturbMethod::CorrelatedNoise => {
                format!("{}:{}", self.method.family(), self.scale())
            }
            _ => format!("{}:{}", self.method.family(), self.param),
        }
    }

    /// Parses a wire name back to its spec. `None` for unknown families,
    /// malformed or out-of-range parameters (noise scales are capped at
    /// 1000 standard deviations; group/neighborhood sizes and the swap
    /// window at 2³²−1; microaggregation and RWN need `k ≥ 1`).
    pub fn parse(name: &str) -> Option<PerturbSpec> {
        let (family, raw) = name.split_once(':')?;
        let spec = match family {
            "noise" | "cnoise" => {
                let scale: f64 = raw.parse().ok()?;
                if !(0.0..=1000.0).contains(&scale) {
                    return None;
                }
                if family == "noise" {
                    PerturbSpec::noise(scale)
                } else {
                    PerturbSpec::correlated_noise(scale)
                }
            }
            "rankswap" => PerturbSpec::rank_swap(raw.parse().ok()?),
            "microagg" | "mdav" | "rwn" => {
                let k: u32 = raw.parse().ok()?;
                if k == 0 {
                    return None;
                }
                match family {
                    "microagg" => PerturbSpec::micro_agg(k),
                    "mdav" => PerturbSpec::mdav(k),
                    _ => PerturbSpec::rwn(k),
                }
            }
            _ => return None,
        };
        // Reject inputs that do not round-trip (e.g. sub-thousandth noise
        // scales): every accepted name is *the* canonical spelling of its
        // spec, which keeps fingerprints and records unambiguous.
        (spec.wire_name() == name).then_some(spec)
    }

    /// Applies the method to `base` deterministically under `seed`,
    /// producing a release named by [`PerturbSpec::wire_name`].
    pub fn apply(&self, base: &Arc<NumericBase>, seed: u64) -> NumericRelease {
        let mut rng = StdRng::seed_from_u64(seed);
        let columns = match self.method {
            PerturbMethod::Noise => noise_columns(base, self.scale(), &mut rng),
            PerturbMethod::CorrelatedNoise => {
                correlated_noise_columns(base, self.scale(), &mut rng)
            }
            PerturbMethod::RankSwap => rank_swap_columns(base, self.param as usize, &mut rng),
            PerturbMethod::MicroAgg => micro_agg_columns(base, self.param as usize),
            PerturbMethod::Mdav => centroid_columns(base, &mdav_groups(base, self.param as usize)),
            PerturbMethod::Rwn => rwn_columns(base, self.param as usize, &mut rng),
        };
        NumericRelease::new(self.wire_name(), base.clone(), columns)
    }
}

/// One standard Gaussian variate via the Box–Muller transform. The
/// clamp keeps `ln` finite on a zero draw.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0_f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Additive independent noise: `y = x + scale · σ_j · z`, column-major.
fn noise_columns(base: &NumericBase, scale: f64, rng: &mut StdRng) -> Vec<Vec<f64>> {
    base.columns()
        .iter()
        .zip(base.stds())
        .map(|(col, &std)| {
            col.iter()
                .map(|&x| {
                    let z = gauss(rng);
                    if scale == 0.0 {
                        // Scale zero is the exact identity (the RNG is
                        // still advanced so records stay comparable
                        // across scales).
                        x
                    } else {
                        x + scale * std * z
                    }
                })
                .collect()
        })
        .collect()
}

/// Correlated noise: `y_i = x_i + scale · L·z_i` with `L·Lᵀ = Σ`, so the
/// added noise has covariance `scale² · Σ`.
fn correlated_noise_columns(base: &NumericBase, scale: f64, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let d = base.width();
    let l = base.cholesky();
    let mut columns: Vec<Vec<f64>> = base.columns().to_vec();
    let mut z = vec![0.0; d];
    for row in 0..base.len() {
        for slot in z.iter_mut() {
            *slot = gauss(rng);
        }
        if scale == 0.0 {
            continue;
        }
        for (j, column) in columns.iter_mut().enumerate() {
            let mut e = 0.0;
            for (k, &zk) in z.iter().enumerate().take(j + 1) {
                e += l[j][k] * zk;
            }
            column[row] += scale * e;
        }
    }
    columns
}

/// The ascending stable order of a column (ties broken by row index).
fn rank_order(col: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..col.len() as u32).collect();
    order.sort_by(|&a, &b| {
        col[a as usize]
            .partial_cmp(&col[b as usize])
            .expect("numeric columns contain no NaN")
            .then(a.cmp(&b))
    });
    order
}

/// Rank swapping: per column, walk the ranks ascending; every unswapped
/// rank picks a uniformly random partner within the next `window` ranks
/// and exchanges values. A permutation of each column, so the per-column
/// marginal multiset is preserved *exactly*.
fn rank_swap_columns(base: &NumericBase, window: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    base.columns()
        .iter()
        .map(|col| {
            let n = col.len();
            let mut out = col.clone();
            if window == 0 || n < 2 {
                return out;
            }
            let order = rank_order(col);
            let mut swapped = vec![false; n];
            for r in 0..n {
                let a = order[r] as usize;
                if swapped[a] {
                    continue;
                }
                let hi = (r + window).min(n - 1);
                if hi == r {
                    break;
                }
                let s = rng.gen_range(r + 1..=hi);
                let b = order[s] as usize;
                if swapped[b] {
                    continue;
                }
                out.swap(a, b);
                swapped[a] = true;
                swapped[b] = true;
            }
            out
        })
        .collect()
}

/// The consecutive group ranges of a sorted length-`n` sequence under
/// minimum group size `k`: `⌊n/k⌋` groups, the last absorbing the
/// remainder, so every size lands in `[k, 2k−1]` (or one group of `n`
/// when `n < 2k`).
fn group_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.max(1);
    if n == 0 {
        return Vec::new();
    }
    if n < 2 * k {
        return vec![(0, n)];
    }
    let groups = n / k;
    (0..groups)
        .map(|g| (g * k, if g + 1 == groups { n } else { (g + 1) * k }))
        .collect()
}

/// Univariate microaggregation: per column, sort, group consecutively,
/// replace every member by its group mean. Group means are computed as
/// `sum / len`, so each column's total — and therefore its mean — is
/// preserved to floating-point roundoff.
fn micro_agg_columns(base: &NumericBase, k: usize) -> Vec<Vec<f64>> {
    base.columns()
        .iter()
        .map(|col| {
            let order = rank_order(col);
            let mut out = col.clone();
            for (lo, hi) in group_ranges(col.len(), k) {
                let members = &order[lo..hi];
                let mean =
                    members.iter().map(|&i| col[i as usize]).sum::<f64>() / members.len() as f64;
                for &i in members {
                    out[i as usize] = mean;
                }
            }
            out
        })
        .collect()
}

/// Squared standardized Euclidean distance between rows `a` and `b` of
/// the original data.
fn std_dist2(base: &NumericBase, a: usize, b: usize) -> f64 {
    base.columns()
        .iter()
        .zip(base.stds())
        .map(|(col, &std)| {
            let diff = (col[a] - col[b]) / std;
            diff * diff
        })
        .sum()
}

/// Squared standardized Euclidean distance from row `a` to a point given
/// in standardized coordinates.
fn std_dist2_to_point(base: &NumericBase, a: usize, point: &[f64]) -> f64 {
    base.columns()
        .iter()
        .zip(base.stds())
        .enumerate()
        .map(|(j, (col, &std))| {
            let diff = col[a] / std - point[j];
            diff * diff
        })
        .sum()
}

/// The MDAV (Maximum Distance to Average Vector) grouping: group sizes
/// are in `[k, 2k−1]` whenever `n ≥ k`, matching the fixed-size
/// microaggregation contract. Returned groups list row indices
/// ascending; groups are in construction order.
pub fn mdav_groups(base: &NumericBase, k: usize) -> Vec<Vec<u32>> {
    let k = k.max(1);
    let n = base.len();
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut groups: Vec<Vec<u32>> = Vec::new();

    // Helper: centroid of `rows` in standardized coordinates.
    let centroid = |rows: &[u32]| -> Vec<f64> {
        let mut c = vec![0.0; base.width()];
        for &r in rows {
            for (j, col) in base.columns().iter().enumerate() {
                c[j] += col[r as usize] / base.stds()[j];
            }
        }
        for v in &mut c {
            *v /= rows.len().max(1) as f64;
        }
        c
    };
    // Helper: index (into `remaining`) of the row farthest from `point`,
    // ties to the lowest row index (scan order).
    let farthest = |remaining: &[u32], point: &[f64]| -> usize {
        let mut best = 0;
        let mut best_d = f64::NEG_INFINITY;
        for (slot, &r) in remaining.iter().enumerate() {
            let d = std_dist2_to_point(base, r as usize, point);
            if d > best_d {
                best_d = d;
                best = slot;
            }
        }
        best
    };
    // Helper: extract the row at `slot` plus its k−1 nearest remaining
    // neighbors as one group.
    let take_group = |remaining: &mut Vec<u32>, slot: usize, k: usize| -> Vec<u32> {
        let anchor = remaining.swap_remove(slot);
        let mut by_dist: Vec<u32> = std::mem::take(remaining);
        by_dist.sort_by(|&a, &b| {
            std_dist2(base, anchor as usize, a as usize)
                .partial_cmp(&std_dist2(base, anchor as usize, b as usize))
                .expect("distances contain no NaN")
                .then(a.cmp(&b))
        });
        let take = (k - 1).min(by_dist.len());
        let mut group: Vec<u32> = by_dist.drain(..take).collect();
        group.push(anchor);
        group.sort_unstable();
        *remaining = by_dist;
        group
    };

    while remaining.len() >= 3 * k {
        let c = centroid(&remaining);
        let r_slot = farthest(&remaining, &c);
        let r_row = remaining[r_slot];
        groups.push(take_group(&mut remaining, r_slot, k));
        // The record farthest from r, then its k−1 nearest.
        let s_slot = {
            let mut best = 0;
            let mut best_d = f64::NEG_INFINITY;
            for (slot, &row) in remaining.iter().enumerate() {
                let d = std_dist2(base, r_row as usize, row as usize);
                if d > best_d {
                    best_d = d;
                    best = slot;
                }
            }
            best
        };
        groups.push(take_group(&mut remaining, s_slot, k));
    }
    if remaining.len() >= 2 * k {
        let c = centroid(&remaining);
        let r_slot = farthest(&remaining, &c);
        groups.push(take_group(&mut remaining, r_slot, k));
    }
    if !remaining.is_empty() {
        remaining.sort_unstable();
        groups.push(std::mem::take(&mut remaining));
    }
    groups
}

/// Replaces every group member by the group's per-column mean (raw
/// coordinates), preserving each column's total exactly up to roundoff.
fn centroid_columns(base: &NumericBase, groups: &[Vec<u32>]) -> Vec<Vec<f64>> {
    let mut columns: Vec<Vec<f64>> = base.columns().to_vec();
    for group in groups {
        for (j, col) in base.columns().iter().enumerate() {
            let mean =
                group.iter().map(|&i| col[i as usize]).sum::<f64>() / group.len().max(1) as f64;
            for &i in group {
                columns[j][i as usize] = mean;
            }
        }
    }
    columns
}

/// Randomization within neighborhood: each record is replaced by a
/// uniformly drawn member of its `k`-nearest-neighbor neighborhood
/// (standardized Euclidean distance on the originals; the record itself
/// is a member, so the draw can keep it). Rows are processed in tuple
/// order with one RNG draw each.
fn rwn_columns(base: &NumericBase, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = base.len();
    let k = k.max(1).min(n.saturating_sub(1).max(1));
    let mut columns: Vec<Vec<f64>> = base.columns().to_vec();
    if n < 2 {
        return columns;
    }
    for i in 0..n {
        // The k nearest other records, ties broken by row index.
        let mut others: Vec<u32> = (0..n as u32).filter(|&j| j as usize != i).collect();
        others.sort_by(|&a, &b| {
            std_dist2(base, i, a as usize)
                .partial_cmp(&std_dist2(base, i, b as usize))
                .expect("distances contain no NaN")
                .then(a.cmp(&b))
        });
        others.truncate(k);
        // Slot k means "keep the record itself".
        let pick = rng.gen_range(0..=others.len());
        if pick < others.len() {
            let donor = others[pick] as usize;
            for (col, base_col) in columns.iter_mut().zip(base.columns()) {
                col[i] = base_col[donor];
            }
        }
    }
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use anoncmp_datagen::census::{generate, CensusConfig};

    fn census_base(rows: usize) -> Arc<NumericBase> {
        let ds = generate(&CensusConfig {
            rows,
            seed: 11,
            zip_pool: 8,
        });
        NumericBase::of(&ds).expect("census has a numeric age column")
    }

    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn wire_names_round_trip() {
        for spec in [
            PerturbSpec::noise(0.05),
            PerturbSpec::noise(0.0),
            PerturbSpec::correlated_noise(0.25),
            PerturbSpec::rank_swap(8),
            PerturbSpec::micro_agg(5),
            PerturbSpec::mdav(4),
            PerturbSpec::rwn(10),
        ] {
            let name = spec.wire_name();
            assert_eq!(PerturbSpec::parse(&name), Some(spec), "{name}");
        }
        assert_eq!(PerturbSpec::parse("noise:0.05").unwrap().param, 50);
        for bad in [
            "noise",
            "noise:",
            "noise:-1",
            "noise:x",
            "microagg:0",
            "rwn:0",
            "swap:3",
            "noise:0.0505",
            "mdav:5.5",
            "datafly",
        ] {
            assert_eq!(PerturbSpec::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn methods_are_deterministic_in_the_seed() {
        let base = census_base(120);
        for spec in [
            PerturbSpec::noise(0.1),
            PerturbSpec::correlated_noise(0.1),
            PerturbSpec::rank_swap(6),
            PerturbSpec::micro_agg(4),
            PerturbSpec::mdav(4),
            PerturbSpec::rwn(5),
        ] {
            let a = spec.apply(&base, 42);
            let b = spec.apply(&base, 42);
            assert_eq!(a.columns(), b.columns(), "{}", spec.wire_name());
            let c = spec.apply(&base, 43);
            if matches!(
                spec.method,
                PerturbMethod::Noise | PerturbMethod::CorrelatedNoise | PerturbMethod::RankSwap
            ) {
                assert_ne!(
                    a.columns(),
                    c.columns(),
                    "{} ignores its seed",
                    spec.wire_name()
                );
            }
        }
    }

    #[test]
    fn noise_scale_zero_is_the_identity() {
        let base = census_base(90);
        for spec in [PerturbSpec::noise(0.0), PerturbSpec::correlated_noise(0.0)] {
            let release = spec.apply(&base, 7);
            assert_eq!(release.columns(), base.columns(), "{}", spec.wire_name());
        }
    }

    #[test]
    fn rank_swap_preserves_marginal_multisets_exactly() {
        let base = census_base(150);
        let release = PerturbSpec::rank_swap(10).apply(&base, 3);
        for (orig, swapped) in base.columns().iter().zip(release.columns()) {
            assert_eq!(sorted(orig.clone()), sorted(swapped.clone()));
            assert_ne!(orig, swapped, "a 10-rank window must move something");
        }
    }

    #[test]
    fn micro_agg_groups_have_legal_sizes_and_preserve_means() {
        let base = census_base(137);
        for k in [3usize, 5, 10] {
            let ranges = group_ranges(base.len(), k);
            assert!(ranges
                .iter()
                .all(|&(lo, hi)| (k..2 * k).contains(&(hi - lo))));
            assert_eq!(ranges.iter().map(|&(lo, hi)| hi - lo).sum::<usize>(), 137);
            let release = PerturbSpec::micro_agg(k as u32).apply(&base, 1);
            for (j, col) in release.columns().iter().enumerate() {
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                assert!(
                    (mean - base.means()[j]).abs() < 1e-9,
                    "k={k} col={j}: {mean} vs {}",
                    base.means()[j]
                );
            }
        }
    }

    #[test]
    fn mdav_groups_partition_with_legal_sizes_and_preserve_means() {
        let base = census_base(101);
        for k in [3usize, 4, 7] {
            let groups = mdav_groups(&base, k);
            let mut seen = vec![false; base.len()];
            for g in &groups {
                assert!((k..2 * k).contains(&g.len()), "k={k}: group of {}", g.len());
                for &i in g {
                    assert!(!seen[i as usize], "row {i} in two groups");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "k={k}: rows left ungrouped");
            let release = PerturbSpec::mdav(k as u32).apply(&base, 1);
            for (j, col) in release.columns().iter().enumerate() {
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                assert!((mean - base.means()[j]).abs() < 1e-9, "k={k} col={j}");
            }
        }
    }

    #[test]
    fn rwn_only_publishes_existing_rows() {
        let base = census_base(80);
        let release = PerturbSpec::rwn(6).apply(&base, 9);
        // Every released row must literally be some original row.
        for i in 0..base.len() {
            let row = release.row(i);
            assert!(
                (0..base.len())
                    .any(|j| { base.columns().iter().zip(&row).all(|(col, &v)| col[j] == v) }),
                "released row {i} is not an original row"
            );
        }
        assert_ne!(
            release.columns(),
            base.columns(),
            "a 6-neighborhood over 80 rows must move something"
        );
    }
}
