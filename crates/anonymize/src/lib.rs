//! # anoncmp-anonymize
//!
//! From-scratch implementations of the microdata disclosure control
//! algorithms the EDBT'09 comparison paper surveys (§6): Datafly,
//! Samarati's k-minimal search, an Incognito-style exhaustive lattice
//! sweep, Mondrian multidimensional partitioning, a μ-Argus-inspired
//! greedy recoder, and an Iyengar-style genetic search — plus the privacy
//! models (k-anonymity, ℓ-diversity, t-closeness, p-sensitive
//! k-anonymity) they enforce.
//!
//! All algorithms implement the common
//! [`Anonymizer`] trait and emit the
//! uniform [`AnonymizedTable`](anoncmp_microdata::anonymized::AnonymizedTable)
//! representation, so their outputs feed directly into `anoncmp-core`'s
//! property-vector comparators.
//!
//! ```
//! use anoncmp_anonymize::prelude::*;
//! use anoncmp_datagen::census::{generate, CensusConfig};
//!
//! let data = generate(&CensusConfig { rows: 150, seed: 7, zip_pool: 12 });
//! let constraint = Constraint::k_anonymity(4).with_suppression(10);
//! let release = Mondrian.anonymize(&data, &constraint).unwrap();
//! assert!(constraint.satisfied(&release));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod constraint;
pub mod error;
pub mod models;
pub mod personalized;
pub mod perturb;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::algorithms::clustering::GreedyCluster;
    pub use crate::algorithms::datafly::Datafly;
    pub use crate::algorithms::genetic::{Crossover, Genetic, GeneticConfig};
    pub use crate::algorithms::greedy::GreedyRecoder;
    pub use crate::algorithms::incognito::{Incognito, IncognitoOutcome};
    pub use crate::algorithms::moga::{
        MeanClassSize, MinClassSize, MogaConfig, MultiObjectiveGenetic, NegLoss, NegPrivacyGini,
        Objective, ParetoSolution,
    };
    pub use crate::algorithms::mondrian::Mondrian;
    pub use crate::algorithms::optimal::OptimalLattice;
    pub use crate::algorithms::samarati::{Samarati, SamaratiOutcome};
    pub use crate::algorithms::subset_incognito::{SubsetIncognito, SubsetIncognitoOutcome};
    pub use crate::algorithms::tds::TopDown;
    pub use crate::algorithms::Anonymizer;
    pub use crate::constraint::Constraint;
    pub use crate::error::{AnonymizeError, Result};
    pub use crate::models::{
        DiversityKind, KAnonymity, LDiversity, PSensitive, PrivacyModel, TCloseness,
    };
    pub use crate::personalized::{personalized_slack_vector, PersonalizedKAnonymity};
    pub use crate::perturb::{mdav_groups, PerturbMethod, PerturbSpec};
}

pub use prelude::*;
