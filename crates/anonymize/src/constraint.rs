//! Privacy constraints: k-anonymity plus optional extra models, with a
//! tuple-suppression budget.
//!
//! Classical full-domain algorithms pair a generalization scheme with
//! *suppression of outliers*: after recoding, tuples in classes that still
//! violate the requirement are removed — here, retained in fully
//! generalized form per the paper's §3 convention — provided no more than
//! `max_suppression` tuples need it.

use std::sync::Arc;

use anoncmp_microdata::prelude::{AnonymizedTable, NodePartition};

use crate::models::{KAnonymity, PrivacyModel};

/// A conjunction of privacy requirements with a suppression budget.
///
/// ```
/// use std::sync::Arc;
/// use anoncmp_anonymize::prelude::*;
///
/// let constraint = Constraint::k_anonymity(5)
///     .with_suppression(20)
///     .with_model(Arc::new(LDiversity::distinct(2)));
/// assert_eq!(
///     constraint.describe(),
///     "5-anonymity + distinct 2-diversity (≤ 20 suppressed)"
/// );
/// ```
#[derive(Clone)]
pub struct Constraint {
    /// The k of the base k-anonymity requirement.
    pub k: usize,
    /// Maximum number of tuples that may be suppressed to reach
    /// satisfaction.
    pub max_suppression: usize,
    /// Additional per-class models (ℓ-diversity, t-closeness, …).
    pub models: Vec<Arc<dyn PrivacyModel>>,
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Constraint")
            .field("k", &self.k)
            .field("max_suppression", &self.max_suppression)
            .field(
                "models",
                &self.models.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Constraint {
    /// Plain k-anonymity with no suppression budget.
    pub fn k_anonymity(k: usize) -> Self {
        Constraint {
            k,
            max_suppression: 0,
            models: Vec::new(),
        }
    }

    /// Sets the suppression budget (number of tuples).
    pub fn with_suppression(mut self, max_suppression: usize) -> Self {
        self.max_suppression = max_suppression;
        self
    }

    /// Adds an extra privacy model.
    pub fn with_model(mut self, model: Arc<dyn PrivacyModel>) -> Self {
        self.models.push(model);
        self
    }

    /// Human-readable description, e.g. `"3-anonymity + distinct
    /// 2-diversity (≤ 5 suppressed)"`.
    pub fn describe(&self) -> String {
        let mut s = format!("{}-anonymity", self.k);
        for m in &self.models {
            s.push_str(" + ");
            s.push_str(&m.name());
        }
        if self.max_suppression > 0 {
            s.push_str(&format!(" (≤ {} suppressed)", self.max_suppression));
        }
        s
    }

    /// Whether this is a pure frequency-set constraint — k-anonymity plus
    /// a suppression budget, no extra models — decidable from equivalence
    /// class **sizes** alone, without materializing a table.
    pub fn is_frequency_only(&self) -> bool {
        self.models.is_empty()
    }

    /// Frequency-set feasibility from class sizes: whether a release with
    /// these class sizes can be brought to satisfaction within the
    /// suppression budget. Suppressing the tuples of every class below `k`
    /// only merges them into the fully suppressed class (which cannot
    /// shrink any class), so for a frequency-only constraint
    /// [`enforce`](Self::enforce) succeeds **iff** the tuples in
    /// sub-`k` classes fit the budget. Always `false` when extra models
    /// are attached — those need the actual table.
    pub fn feasible_class_sizes(&self, sizes: &[u32]) -> bool {
        self.is_frequency_only()
            && sizes
                .iter()
                .filter(|&&s| (s as usize) < self.k)
                .map(|&s| s as usize)
                .sum::<usize>()
                <= self.max_suppression
    }

    /// [`feasible_class_sizes`](Self::feasible_class_sizes) over a codec
    /// [`NodePartition`] — Incognito's frequency-set check.
    pub fn feasible_partition(&self, partition: &NodePartition) -> bool {
        self.is_frequency_only() && partition.tuples_below(self.k) <= self.max_suppression
    }

    /// Whether one class (by members) satisfies every requirement.
    pub fn class_satisfied(&self, table: &AnonymizedTable, members: &[u32]) -> bool {
        KAnonymity { k: self.k }.class_satisfied(table, members)
            && self
                .models
                .iter()
                .all(|m| m.class_satisfied(table, members))
    }

    /// Whether the table as released satisfies the constraint: every
    /// non-suppressed class passes all models and the number of suppressed
    /// tuples is within budget.
    pub fn satisfied(&self, table: &AnonymizedTable) -> bool {
        if table.suppressed_count() > self.max_suppression {
            return false;
        }
        table.classes().iter().all(|(_, members)| {
            let suppressed = members
                .iter()
                .all(|&t| table.is_tuple_suppressed(t as usize));
            suppressed || self.class_satisfied(table, members)
        })
    }

    /// Number of tuples in violating (non-suppressed) classes — the tuples
    /// that would need suppression for `table` to satisfy the constraint.
    pub fn violating_tuples(&self, table: &AnonymizedTable) -> usize {
        table
            .classes()
            .iter()
            .filter(|(_, members)| {
                let suppressed = members
                    .iter()
                    .all(|&t| table.is_tuple_suppressed(t as usize));
                !suppressed && !self.class_satisfied(table, members)
            })
            .map(|(_, members)| members.len())
            .sum()
    }

    /// Attempts to satisfy the constraint by suppressing every violating
    /// class, within budget. Returns `None` when more than
    /// `max_suppression` tuples would need to be suppressed (already
    /// suppressed tuples count against the budget too).
    pub fn enforce(&self, table: &AnonymizedTable) -> Option<AnonymizedTable> {
        let needed = self.violating_tuples(table);
        let already = table.suppressed_count();
        if needed + already > self.max_suppression {
            return None;
        }
        if needed == 0 {
            return Some(table.clone());
        }
        let mut to_suppress: Vec<usize> = Vec::with_capacity(needed);
        for (_, members) in table.classes().iter() {
            let suppressed = members
                .iter()
                .all(|&t| table.is_tuple_suppressed(t as usize));
            if !suppressed && !self.class_satisfied(table, members) {
                to_suppress.extend(members.iter().map(|&t| t as usize));
            }
        }
        let enforced = table.suppress_tuples(to_suppress);
        // Suppressing can only merge classes into the suppressed class, so
        // the result either satisfies the constraint or the constraint is
        // genuinely unsatisfiable within budget for this recoding.
        self.satisfied(&enforced).then_some(enforced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    use anoncmp_microdata::prelude::*;

    use crate::models::LDiversity;

    /// Ages 1,2,3 / 11 / 21,22 → classes of size 3, 1, 2 at level 1.
    fn fixture() -> AnonymizedTable {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(IntervalLadder::uniform(0, &[10]).unwrap().into())
                .unwrap(),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        let ds = Dataset::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::Cat(0)],
                vec![Value::Int(2), Value::Cat(1)],
                vec![Value::Int(3), Value::Cat(0)],
                vec![Value::Int(11), Value::Cat(1)],
                vec![Value::Int(21), Value::Cat(0)],
                vec![Value::Int(22), Value::Cat(1)],
            ],
        )
        .unwrap();
        Lattice::new(schema).unwrap().apply(&ds, &[1], "f").unwrap()
    }

    #[test]
    fn satisfaction_and_violations() {
        let t = fixture();
        let c2 = Constraint::k_anonymity(2);
        assert!(!c2.satisfied(&t), "the singleton class violates");
        assert_eq!(c2.violating_tuples(&t), 1);

        let c3 = Constraint::k_anonymity(3);
        assert_eq!(c3.violating_tuples(&t), 3, "singleton + pair");
    }

    #[test]
    fn enforce_within_budget() {
        let t = fixture();
        let c = Constraint::k_anonymity(2).with_suppression(1);
        let enforced = c.enforce(&t).expect("one suppression suffices");
        assert_eq!(enforced.suppressed_count(), 1);
        assert!(c.satisfied(&enforced));
        assert!(enforced.is_tuple_suppressed(3));
        // Untouched tuples keep their generalizations.
        assert_eq!(enforced.cell(0, 0), &GenValue::Interval { lo: 0, hi: 10 });
    }

    #[test]
    fn enforce_over_budget_fails() {
        let t = fixture();
        let c = Constraint::k_anonymity(3).with_suppression(2);
        assert!(c.enforce(&t).is_none(), "needs 3 suppressions, budget 2");
        let c = Constraint::k_anonymity(3).with_suppression(3);
        let enforced = c.enforce(&t).expect("budget 3 suffices");
        assert_eq!(enforced.suppressed_count(), 3);
    }

    #[test]
    fn enforce_noop_when_satisfied() {
        let t = fixture();
        let c = Constraint::k_anonymity(1);
        let enforced = c.enforce(&t).unwrap();
        assert_eq!(enforced.suppressed_count(), 0);
    }

    #[test]
    fn extra_models_participate() {
        let t = fixture();
        // k=1 passes alone, but distinct 2-diversity kills the singleton
        // class (1 distinct value).
        let c = Constraint::k_anonymity(1).with_model(StdArc::new(LDiversity::distinct(2)));
        assert!(!c.satisfied(&t));
        assert_eq!(c.violating_tuples(&t), 1);
        let c = c.with_suppression(1);
        let enforced = c.enforce(&t).unwrap();
        assert!(c.satisfied(&enforced));
        assert!(c.describe().contains("2-diversity"));
    }

    #[test]
    fn frequency_set_check_matches_enforce() {
        // Class sizes 3, 1, 2 (see `fixture`): the sizes-only check must
        // agree with enforce() for every pure-k constraint.
        let t = fixture();
        let codec = GenCodec::new(t.dataset()).unwrap();
        let part = codec.partition(&[1]).unwrap();
        assert_eq!(part.sizes(), &[3, 1, 2]);
        for k in 1..=7 {
            for budget in 0..=7 {
                let c = Constraint::k_anonymity(k).with_suppression(budget);
                assert!(c.is_frequency_only());
                assert_eq!(
                    c.feasible_partition(&part),
                    c.enforce(&t).is_some(),
                    "k={k} budget={budget}"
                );
                assert_eq!(
                    c.feasible_class_sizes(part.sizes()),
                    c.feasible_partition(&part)
                );
            }
        }
    }

    #[test]
    fn frequency_set_check_refuses_extra_models() {
        let t = fixture();
        let codec = GenCodec::new(t.dataset()).unwrap();
        let part = codec.partition(&[1]).unwrap();
        let c = Constraint::k_anonymity(1).with_model(StdArc::new(LDiversity::distinct(2)));
        assert!(!c.is_frequency_only());
        // k=1 is trivially feasible by sizes, but the model must force the
        // slow path: the sizes check conservatively refuses.
        assert!(!c.feasible_partition(&part));
        assert!(!c.feasible_class_sizes(part.sizes()));
    }

    #[test]
    fn describe_formats() {
        let c = Constraint::k_anonymity(3).with_suppression(5);
        assert_eq!(c.describe(), "3-anonymity (≤ 5 suppressed)");
        let c = Constraint::k_anonymity(2);
        assert_eq!(c.describe(), "2-anonymity");
    }

    #[test]
    fn debug_impl_lists_models() {
        let c = Constraint::k_anonymity(2).with_model(StdArc::new(LDiversity::distinct(2)));
        let s = format!("{c:?}");
        assert!(s.contains("2-diversity"));
    }
}
