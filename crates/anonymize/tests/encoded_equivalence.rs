//! Encoded-vs-materialized equivalence: the codec-routed search algorithms
//! must return **bit-identical** winning nodes and releases to reference
//! reimplementations that materialize a table at every lattice node (the
//! pre-codec evaluation strategy).
//!
//! The references below deliberately re-state each search in its naive
//! form — `Lattice::apply` + `Constraint::enforce` per node — so any
//! divergence introduced by the frequency-set fast path, incremental
//! coarsening, or decode-only-the-winner routing shows up as a failed
//! equality, not a subtle loss delta. CI runs this as the perf-smoke
//! equivalence gate.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use anoncmp_anonymize::prelude::*;
use anoncmp_datagen::census::{generate, CensusConfig};
use anoncmp_datagen::paper::{paper_schema_t3, paper_table1};
use anoncmp_microdata::loss::LossMetric;
use anoncmp_microdata::prelude::*;

// ----------------------------------------------------------------------
// Reference implementations (materialize every evaluated node).
// ----------------------------------------------------------------------

fn ref_satisfying_at_height(
    lattice: &Lattice,
    ds: &Arc<Dataset>,
    constraint: &Constraint,
    height: usize,
) -> Vec<(LevelVector, AnonymizedTable)> {
    let mut out = Vec::new();
    for levels in lattice.nodes_at_height(height) {
        let table = lattice.apply(ds, &levels, "samarati").expect("valid node");
        if let Some(enforced) = constraint.enforce(&table) {
            out.push((levels, enforced));
        }
    }
    out
}

/// Samarati's binary search, evaluating every node through a full table.
fn ref_samarati(
    ds: &Arc<Dataset>,
    constraint: &Constraint,
) -> Option<(LevelVector, AnonymizedTable)> {
    let lattice = Lattice::new(ds.schema().clone()).unwrap();
    if ref_satisfying_at_height(&lattice, ds, constraint, lattice.max_height()).is_empty() {
        return None;
    }
    let (mut lo, mut hi) = (0usize, lattice.max_height());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ref_satisfying_at_height(&lattice, ds, constraint, mid).is_empty() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let frontier = ref_satisfying_at_height(&lattice, ds, constraint, lo);
    let metric = LossMetric::classic();
    frontier
        .into_iter()
        .min_by(|a, b| {
            metric
                .total_loss(&a.1)
                .partial_cmp(&metric.total_loss(&b.1))
                .unwrap()
        })
        .map(|(l, t)| (l, t.renamed("samarati")))
}

/// Incognito's BFS with anti-monotone pruning, one table per evaluation.
fn ref_incognito(
    ds: &Arc<Dataset>,
    constraint: &Constraint,
) -> Option<(LevelVector, AnonymizedTable)> {
    let lattice = Lattice::new(ds.schema().clone()).unwrap();
    let mut status: HashMap<LevelVector, bool> = HashMap::new();
    let mut frontier: Vec<(LevelVector, AnonymizedTable)> = Vec::new();
    let mut queue: VecDeque<LevelVector> = VecDeque::new();
    queue.push_back(lattice.bottom());
    while let Some(levels) = queue.pop_front() {
        if status.contains_key(&levels) {
            continue;
        }
        let dominated = frontier.iter().any(|(f, _)| Lattice::leq(f, &levels));
        let sat = dominated || {
            let table = lattice.apply(ds, &levels, "incognito").expect("valid node");
            match constraint.enforce(&table) {
                Some(t) => {
                    frontier.push((levels.clone(), t));
                    true
                }
                None => false,
            }
        };
        status.insert(levels.clone(), sat);
        if !sat {
            for s in lattice.successors(&levels) {
                queue.push_back(s);
            }
        }
    }
    let minimal: Vec<(LevelVector, AnonymizedTable)> = frontier
        .iter()
        .filter(|(cand, _)| {
            !frontier
                .iter()
                .any(|(l, _)| l != cand && Lattice::leq(l, cand))
        })
        .cloned()
        .collect();
    let metric = LossMetric::classic();
    minimal
        .into_iter()
        .min_by(|a, b| {
            metric
                .total_loss(&a.1)
                .partial_cmp(&metric.total_loss(&b.1))
                .unwrap()
        })
        .map(|(l, t)| (l, t.renamed("incognito")))
}

/// Exhaustive search, one table per lattice node.
fn ref_optimal(
    ds: &Arc<Dataset>,
    constraint: &Constraint,
) -> Option<(LevelVector, AnonymizedTable)> {
    let lattice = Lattice::new(ds.schema().clone()).unwrap();
    let metric = LossMetric::classic();
    let mut best: Option<(f64, LevelVector, AnonymizedTable)> = None;
    for levels in lattice.iter_all() {
        let table = lattice.apply(ds, &levels, "optimal").expect("valid node");
        let Some(enforced) = constraint.enforce(&table) else {
            continue;
        };
        let loss = metric.total_loss(&enforced);
        if best.as_ref().is_none_or(|(l, ..)| loss < *l) {
            best = Some((loss, levels, enforced));
        }
    }
    best.map(|(_, l, t)| (l, t))
}

// ----------------------------------------------------------------------
// Equality assertions.
// ----------------------------------------------------------------------

/// Bit-identical releases: same cells, same suppression mask, same name.
fn assert_identical(context: &str, a: &AnonymizedTable, b: &AnonymizedTable) {
    assert_eq!(a.name(), b.name(), "{context}: names differ");
    assert_eq!(
        a.suppression_mask(),
        b.suppression_mask(),
        "{context}: suppression masks differ"
    );
    assert_eq!(a.records(), b.records(), "{context}: cells differ");
}

fn datasets() -> Vec<(&'static str, Arc<Dataset>)> {
    vec![
        ("paper_table1", paper_table1(paper_schema_t3())),
        (
            "census",
            generate(&CensusConfig {
                rows: 120,
                seed: 99,
                zip_pool: 12,
            }),
        ),
    ]
}

fn constraints(n: usize) -> Vec<Constraint> {
    vec![
        Constraint::k_anonymity(2),
        Constraint::k_anonymity(3).with_suppression(n / 10),
        Constraint::k_anonymity(5).with_suppression(n / 5),
    ]
}

#[test]
fn samarati_matches_materialized_reference() {
    for (label, ds) in datasets() {
        for c in constraints(ds.len()) {
            let reference = ref_samarati(&ds, &c).expect("satisfiable on seed data");
            let outcome = Samarati::default().run(&ds, &c).expect("satisfiable");
            let ctx = format!("samarati/{label}/{}", c.describe());
            assert_eq!(outcome.levels, reference.0, "{ctx}: winning node differs");
            assert_identical(&ctx, &outcome.table, &reference.1);
        }
    }
}

#[test]
fn incognito_matches_materialized_reference() {
    for (label, ds) in datasets() {
        for c in constraints(ds.len()) {
            let reference = ref_incognito(&ds, &c).expect("satisfiable on seed data");
            let outcome = Incognito::default().run(&ds, &c).expect("satisfiable");
            let ctx = format!("incognito/{label}/{}", c.describe());
            assert_eq!(outcome.levels, reference.0, "{ctx}: winning node differs");
            assert_identical(&ctx, &outcome.table, &reference.1);
        }
    }
}

#[test]
fn optimal_matches_materialized_reference() {
    for (label, ds) in datasets() {
        for c in constraints(ds.len()) {
            let reference = ref_optimal(&ds, &c).expect("satisfiable on seed data");
            let (table, levels, _) = OptimalLattice::default().run(&ds, &c).expect("satisfiable");
            let ctx = format!("optimal/{label}/{}", c.describe());
            assert_eq!(levels, reference.0, "{ctx}: winning node differs");
            assert_identical(&ctx, &table, &reference.1);
        }
    }
}

#[test]
fn datafly_matches_materialized_reference() {
    // Datafly's greedy path must be unchanged too: replay the loop with
    // materialized tables and a HashSet distinct count per dimension.
    use std::collections::HashSet;
    for (label, ds) in datasets() {
        for c in constraints(ds.len()) {
            let lattice = Lattice::new(ds.schema().clone()).unwrap();
            let qi: Vec<usize> = ds.schema().quasi_identifiers().to_vec();
            let mut levels = lattice.bottom();
            let reference = loop {
                let table = lattice.apply(&ds, &levels, "datafly").expect("valid node");
                if let Some(done) = c.enforce(&table) {
                    break (levels.clone(), done);
                }
                let mut best: Option<(usize, usize)> = None;
                for (dim, &col) in qi.iter().enumerate() {
                    if levels[dim] >= lattice.max_levels()[dim] {
                        continue;
                    }
                    let distinct = table
                        .records()
                        .iter()
                        .map(|r| r[col])
                        .collect::<HashSet<_>>()
                        .len();
                    if best.is_none_or(|(_, d)| distinct > d) {
                        best = Some((dim, distinct));
                    }
                }
                let (dim, _) = best.expect("satisfiable on seed data");
                levels[dim] += 1;
            };
            let (table, levels) = Datafly.run(&ds, &c).expect("satisfiable");
            let ctx = format!("datafly/{label}/{}", c.describe());
            assert_eq!(levels, reference.0, "{ctx}: final node differs");
            assert_identical(&ctx, &table, &reference.1);
        }
    }
}
