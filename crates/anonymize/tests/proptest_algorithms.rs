//! Property-based tests for the disclosure control algorithms: every
//! algorithm's output must satisfy its constraint on randomly generated
//! datasets and configurations.

use std::sync::Arc;

use proptest::prelude::*;

use anoncmp_anonymize::prelude::*;
use anoncmp_microdata::prelude::*;

fn small_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::integer("age", Role::QuasiIdentifier, 0, 99)
            .with_hierarchy(IntervalLadder::uniform(0, &[10, 50]).unwrap().into())
            .unwrap(),
        Attribute::from_taxonomy(
            "city",
            Role::QuasiIdentifier,
            Taxonomy::masking(&["aa", "ab", "ba", "bb"], &[1]).unwrap(),
        ),
        Attribute::categorical("d", Role::Sensitive, ["x", "y", "z"]),
    ])
    .unwrap()
}

fn arb_dataset() -> impl Strategy<Value = Arc<Dataset>> {
    proptest::collection::vec(
        (0i64..100, 0u32..4, 0u32..3)
            .prop_map(|(a, c, d)| vec![Value::Int(a), Value::Cat(c), Value::Cat(d)]),
        6..50,
    )
    .prop_map(|rows| Dataset::new(small_schema(), rows).expect("in-domain rows"))
}

fn check_satisfies(
    name: &str,
    result: anoncmp_anonymize::error::Result<AnonymizedTable>,
    constraint: &Constraint,
    n: usize,
) -> std::result::Result<(), TestCaseError> {
    match result {
        Ok(t) => {
            prop_assert!(
                constraint.satisfied(&t),
                "{name} output violates constraint"
            );
            prop_assert_eq!(t.len(), n, "{} changed the tuple count", name);
        }
        Err(AnonymizeError::Unsatisfiable(_)) => {
            // Acceptable only when even full generalization fails, which
            // for plain k-anonymity with suppression means k > n and
            // budget < n. With our parameter ranges this cannot happen for
            // lattice algorithms, so re-verify:
            prop_assert!(
                constraint.k > n,
                "{name} claimed unsatisfiable although k = {} ≤ n = {n}",
                constraint.k
            );
        }
        Err(e) => prop_assert!(false, "{name} unexpected error: {e}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn datafly_output_satisfies(ds in arb_dataset(), k in 1usize..8, budget_pct in 0usize..30) {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() * budget_pct / 100);
        check_satisfies("datafly", Datafly.anonymize(&ds, &c), &c, ds.len())?;
    }

    #[test]
    fn samarati_output_satisfies(ds in arb_dataset(), k in 1usize..8, budget_pct in 0usize..30) {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() * budget_pct / 100);
        check_satisfies("samarati", Samarati::default().anonymize(&ds, &c), &c, ds.len())?;
    }

    #[test]
    fn incognito_output_satisfies(ds in arb_dataset(), k in 1usize..8, budget_pct in 0usize..30) {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() * budget_pct / 100);
        check_satisfies("incognito", Incognito::default().anonymize(&ds, &c), &c, ds.len())?;
    }

    #[test]
    fn greedy_output_satisfies(ds in arb_dataset(), k in 1usize..8, budget_pct in 0usize..30) {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() * budget_pct / 100);
        check_satisfies("greedy", GreedyRecoder::default().anonymize(&ds, &c), &c, ds.len())?;
    }

    #[test]
    fn mondrian_output_satisfies(ds in arb_dataset(), k in 1usize..8) {
        let c = Constraint::k_anonymity(k.min(ds.len()));
        let (t, parts) = Mondrian.run(&ds, &c).expect("k ≤ n is always feasible");
        prop_assert!(c.satisfied(&t));
        // Partitions cover every tuple exactly once.
        let mut seen = vec![false; ds.len()];
        for p in &parts {
            prop_assert!(p.len() >= c.k);
            for &m in p {
                prop_assert!(!seen[m as usize], "tuple in two partitions");
                seen[m as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn genetic_output_satisfies(ds in arb_dataset(), k in 1usize..6, seed in 0u64..500) {
        let ga = Genetic {
            config: GeneticConfig { population: 8, generations: 6, seed, ..Default::default() },
            ..Default::default()
        };
        let c = Constraint::k_anonymity(k).with_suppression(ds.len() / 10);
        check_satisfies("genetic", ga.anonymize(&ds, &c), &c, ds.len())?;
    }

    #[test]
    fn enforce_is_idempotent(ds in arb_dataset(), k in 1usize..6) {
        let c = Constraint::k_anonymity(k).with_suppression(ds.len());
        let lattice = Lattice::new(ds.schema().clone()).expect("lattice");
        let t = lattice.apply(&ds, &[1, 0], "t").expect("levels");
        let once = c.enforce(&t).expect("full budget always succeeds");
        let twice = c.enforce(&once).expect("idempotent");
        prop_assert_eq!(once.suppressed_count(), twice.suppressed_count());
        prop_assert!(once.classes().same_partition(twice.classes()));
    }

    #[test]
    fn suppression_budget_is_respected(ds in arb_dataset(), k in 2usize..8, budget in 0usize..20) {
        let c = Constraint::k_anonymity(k).with_suppression(budget);
        for t in [
            Datafly.anonymize(&ds, &c),
            Mondrian.anonymize(&ds, &c),
            GreedyRecoder::default().anonymize(&ds, &c),
        ].into_iter().flatten() {
            prop_assert!(t.suppressed_count() <= budget);
        }
    }

    #[test]
    fn diversity_constraint_never_silently_violated(ds in arb_dataset(), k in 1usize..5, l in 1usize..4) {
        let c = Constraint::k_anonymity(k)
            .with_suppression(ds.len())
            .with_model(std::sync::Arc::new(LDiversity::distinct(l)));
        // With a full suppression budget every algorithm must succeed, and
        // the output must satisfy the model on non-suppressed classes.
        for (name, result) in [
            ("datafly", Datafly.anonymize(&ds, &c)),
            ("incognito", Incognito::default().anonymize(&ds, &c)),
            ("mondrian", Mondrian.anonymize(&ds, &c)),
        ] {
            let t = result.unwrap_or_else(|e| panic!("{name} failed: {e}"));
            prop_assert!(c.satisfied(&t), "{name} violates {}", c.describe());
        }
    }
}
