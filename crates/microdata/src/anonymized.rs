//! Anonymized tables and equivalence classes.
//!
//! Every disclosure control algorithm in this workspace — whether it does
//! full-domain recoding, multidimensional partitioning, or tuple
//! suppression — emits the same [`AnonymizedTable`] representation: one
//! generalized record per original tuple, in original tuple order.
//! Suppressed tuples remain present with fully suppressed quasi-identifier
//! cells, following the paper's §3 convention ("we assume that they still
//! exist in the anonymized data set in an overly generalized form"), so the
//! original and anonymized tables always have the same size `N`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::hash::FxMap;
use crate::value::GenValue;

/// The equivalence-class structure induced by an anonymization: tuples are
/// equivalent when their generalized quasi-identifier signatures coincide.
#[derive(Debug, Clone)]
pub struct EquivalenceClasses {
    /// `class_of[tuple]` is the class index of that tuple.
    class_of: Vec<u32>,
    /// `members[class]` lists the tuple ids of that class, ascending.
    members: Vec<Vec<u32>>,
}

impl EquivalenceClasses {
    /// Groups `records` by their projection onto `qi_cols`, using a hash
    /// map over signatures. O(N · |QI|).
    pub fn group_by_hash(records: &[Vec<GenValue>], qi_cols: &[usize]) -> Self {
        let mut index: HashMap<Vec<GenValue>, u32> = HashMap::new();
        let mut class_of = Vec::with_capacity(records.len());
        let mut members: Vec<Vec<u32>> = Vec::new();
        for (tuple, rec) in records.iter().enumerate() {
            let sig: Vec<GenValue> = qi_cols.iter().map(|&c| rec[c]).collect();
            let next = members.len() as u32;
            let class = *index.entry(sig).or_insert(next);
            if class == next {
                members.push(Vec::new());
            }
            class_of.push(class);
            members[class as usize].push(tuple as u32);
        }
        EquivalenceClasses { class_of, members }
    }

    /// Groups `records` by sorting tuple indices on their signatures.
    /// O(N log N · |QI|); kept as the ablation baseline for
    /// [`group_by_hash`](Self::group_by_hash) (see `bench grouping`).
    ///
    /// Class numbering differs from the hash variant (sorted signature
    /// order vs. first-appearance order) but the induced partition is
    /// identical.
    pub fn group_by_sort(records: &[Vec<GenValue>], qi_cols: &[usize]) -> Self {
        let mut order: Vec<u32> = (0..records.len() as u32).collect();
        let sig =
            |t: u32| -> Vec<GenValue> { qi_cols.iter().map(|&c| records[t as usize][c]).collect() };
        order.sort_by_key(|&a| sig(a));
        let mut class_of = vec![0u32; records.len()];
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut prev: Option<Vec<GenValue>> = None;
        for &t in &order {
            let s = sig(t);
            if prev.as_ref() != Some(&s) {
                members.push(Vec::new());
                prev = Some(s);
            }
            let class = (members.len() - 1) as u32;
            class_of[t as usize] = class;
            members[class as usize].push(t);
        }
        for m in &mut members {
            m.sort_unstable();
        }
        EquivalenceClasses { class_of, members }
    }

    /// Groups `rows` tuples by their per-column `u32` code slices — the
    /// dictionary-encoded fast path used by
    /// [`GenCodec`](crate::codec::GenCodec). Produces the **identical
    /// partition with identical first-appearance numbering** as
    /// [`group_by_hash`](Self::group_by_hash) on the decoded records,
    /// because dictionary codes are in bijection with generalized values
    /// per column.
    ///
    /// When the per-column code widths sum to ≤ 64 bits, each row key is
    /// packed into a single `u64` (no per-row allocation at all);
    /// otherwise all keys live in one flat buffer and the map borrows
    /// slices of it — a single allocation either way, no `GenValue`
    /// signature `Vec`s.
    ///
    /// Every slice in `columns` must have length `rows`; with no columns,
    /// all tuples share the empty signature.
    pub fn group_by_codes(rows: usize, columns: &[&[u32]]) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        let mut class_of: Vec<u32> = Vec::with_capacity(rows);
        let mut members: Vec<Vec<u32>> = Vec::new();

        // Bit layout for packing one row's codes into a u64, if it fits.
        let mut shifts: Option<Vec<u32>> = {
            let mut acc = Vec::with_capacity(columns.len());
            let mut used = 0u32;
            let mut ok = true;
            for col in columns {
                let max = col.iter().copied().max().unwrap_or(0);
                let bits = (u32::BITS - max.leading_zeros()).max(1);
                if used + bits > 64 {
                    ok = false;
                    break;
                }
                acc.push(used);
                used += bits;
            }
            ok.then_some(acc)
        };
        if columns.is_empty() {
            shifts = Some(Vec::new());
        }

        match shifts {
            Some(shifts) => {
                let mut index: FxMap<u64, u32> = FxMap::default();
                for row in 0..rows {
                    let key = columns
                        .iter()
                        .zip(&shifts)
                        .fold(0u64, |k, (col, &s)| k | (u64::from(col[row]) << s));
                    let next = members.len() as u32;
                    let class = *index.entry(key).or_insert(next);
                    if class == next {
                        members.push(Vec::new());
                    }
                    class_of.push(class);
                    members[class as usize].push(row as u32);
                }
            }
            None => {
                // Wide fallback: one flat buffer holds every row key; the
                // map borrows slices of it.
                let cols = columns.len();
                let mut flat: Vec<u32> = Vec::with_capacity(rows * cols);
                for row in 0..rows {
                    for col in columns {
                        flat.push(col[row]);
                    }
                }
                let mut index: FxMap<&[u32], u32> = FxMap::default();
                for (row, key) in flat.chunks_exact(cols).enumerate() {
                    let next = members.len() as u32;
                    let class = *index.entry(key).or_insert(next);
                    if class == next {
                        members.push(Vec::new());
                    }
                    class_of.push(class);
                    members[class as usize].push(row as u32);
                }
            }
        }
        EquivalenceClasses { class_of, members }
    }

    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }

    /// The class index of `tuple`.
    pub fn class_of(&self, tuple: usize) -> usize {
        self.class_of[tuple] as usize
    }

    /// Tuple ids belonging to class `class`, ascending.
    pub fn members(&self, class: usize) -> &[u32] {
        &self.members[class]
    }

    /// Size of the class containing `tuple`.
    pub fn class_size_of(&self, tuple: usize) -> usize {
        self.members[self.class_of[tuple] as usize].len()
    }

    /// Iterates `(class_index, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.as_slice()))
    }

    /// The size of the smallest class, or 0 for an empty table. This is the
    /// classical scalar `k` of k-anonymity.
    pub fn min_class_size(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether the partitions of two groupings coincide (class numbering
    /// may differ).
    ///
    /// Early-exits on tuple count and on [`class_count`](Self::class_count)
    /// before examining any assignments, so the common "differently sized
    /// partitions" case allocates nothing.
    pub fn same_partition(&self, other: &EquivalenceClasses) -> bool {
        if self.class_of.len() != other.class_of.len() || self.class_count() != other.class_count()
        {
            return false;
        }
        // Equal class counts: the partitions coincide iff mapping our
        // class ids to theirs is a consistent function (equal counts make
        // a consistent function automatically a bijection). Class ids are
        // dense 0..m, so a Vec replaces the old per-call HashMap.
        const UNSET: u32 = u32::MAX;
        let mut mapping: Vec<u32> = vec![UNSET; self.class_count()];
        for t in 0..self.class_of.len() {
            let a = self.class_of[t] as usize;
            let b = other.class_of[t];
            if mapping[a] == UNSET {
                mapping[a] = b;
            } else if mapping[a] != b {
                return false;
            }
        }
        true
    }
}

/// An anonymized release of a dataset: generalized records in original
/// tuple order plus the induced equivalence classes.
///
/// Record suppression is tracked as an explicit per-tuple flag rather than
/// inferred from the cells: a *suppressed* tuple and a tuple of a fully
/// generalized release render identically (all quasi-identifier cells
/// `*`), but only the former counts against an algorithm's suppression
/// budget.
#[derive(Debug, Clone)]
pub struct AnonymizedTable {
    dataset: Arc<Dataset>,
    records: Vec<Vec<GenValue>>,
    classes: EquivalenceClasses,
    suppressed: Vec<bool>,
    name: String,
}

impl AnonymizedTable {
    /// Wraps generalized `records` (one per dataset tuple, full schema
    /// arity) and induces equivalence classes over the quasi-identifier
    /// columns. No tuple is marked suppressed; use
    /// [`AnonymizedTable::with_suppressed`] for releases that suppress
    /// records.
    ///
    /// # Errors
    /// [`Error::InvalidDataset`] if the record count differs from the
    /// dataset size; [`Error::ArityMismatch`] if a record's arity differs
    /// from the schema.
    pub fn new(
        dataset: Arc<Dataset>,
        records: Vec<Vec<GenValue>>,
        name: impl Into<String>,
    ) -> Result<Self> {
        let n = dataset.len();
        Self::with_suppressed(dataset, records, vec![false; n], name)
    }

    /// Like [`AnonymizedTable::new`], with an explicit suppression mask.
    /// Suppressed tuples must carry fully suppressed quasi-identifier
    /// cells (the paper's §3 "overly generalized form" convention).
    ///
    /// # Errors
    /// As [`AnonymizedTable::new`]; additionally
    /// [`Error::InvalidDataset`] when the mask length differs from the
    /// record count or a masked tuple has an unsuppressed QI cell.
    pub fn with_suppressed(
        dataset: Arc<Dataset>,
        records: Vec<Vec<GenValue>>,
        suppressed: Vec<bool>,
        name: impl Into<String>,
    ) -> Result<Self> {
        if records.len() != dataset.len() {
            return Err(Error::InvalidDataset(format!(
                "anonymization has {} records but the dataset has {} tuples",
                records.len(),
                dataset.len()
            )));
        }
        if suppressed.len() != records.len() {
            return Err(Error::InvalidDataset(format!(
                "suppression mask covers {} tuples but there are {} records",
                suppressed.len(),
                records.len()
            )));
        }
        let arity = dataset.schema().len();
        for r in &records {
            if r.len() != arity {
                return Err(Error::ArityMismatch {
                    expected: arity,
                    actual: r.len(),
                });
            }
        }
        for (t, &sup) in suppressed.iter().enumerate() {
            if sup
                && !dataset
                    .schema()
                    .quasi_identifiers()
                    .iter()
                    .all(|&c| records[t][c].is_suppressed())
            {
                return Err(Error::InvalidDataset(format!(
                    "tuple {t} is marked suppressed but has unsuppressed QI cells"
                )));
            }
        }
        let classes =
            EquivalenceClasses::group_by_hash(&records, dataset.schema().quasi_identifiers());
        Ok(AnonymizedTable {
            dataset,
            records,
            classes,
            suppressed,
            name: name.into(),
        })
    }

    /// The original dataset this table anonymizes.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Number of tuples `N` (same as the original dataset).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Display label for this anonymization (e.g. `"T3a"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generalized record of `tuple`.
    pub fn record(&self, tuple: usize) -> &[GenValue] {
        &self.records[tuple]
    }

    /// All generalized records, in tuple order.
    pub fn records(&self) -> &[Vec<GenValue>] {
        &self.records
    }

    /// The generalized cell at (`tuple`, `col`).
    pub fn cell(&self, tuple: usize, col: usize) -> &GenValue {
        &self.records[tuple][col]
    }

    /// The induced equivalence classes.
    pub fn classes(&self) -> &EquivalenceClasses {
        &self.classes
    }

    /// Whether `tuple` was record-suppressed by the producing algorithm.
    ///
    /// Note that a tuple of a *fully generalized* release renders the same
    /// way (all QI cells `*`) but is **not** suppressed — see the type
    /// documentation.
    pub fn is_tuple_suppressed(&self, tuple: usize) -> bool {
        self.suppressed[tuple]
    }

    /// The suppression mask, one flag per tuple.
    pub fn suppression_mask(&self) -> &[bool] {
        &self.suppressed
    }

    /// Number of suppressed tuples.
    pub fn suppressed_count(&self) -> usize {
        self.suppressed.iter().filter(|&&s| s).count()
    }

    /// Renders the cell at (`tuple`, `col`) with attribute context:
    /// taxonomy nodes render their labels, categorical leaves their
    /// category labels, intervals as `(lo,hi]`, suppression as `*`.
    pub fn render_cell(&self, tuple: usize, col: usize) -> String {
        let attr = self.dataset.schema().attribute(col);
        match &self.records[tuple][col] {
            GenValue::Int(v) => v.to_string(),
            GenValue::Interval { lo, hi } => format!("({lo},{hi}]"),
            GenValue::Cat(c) => attr
                .category_label(*c)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("<cat {c}>")),
            GenValue::Node(n) => attr
                .hierarchy()
                .and_then(|h| h.as_taxonomy())
                .map(|t| t.label(*n).to_owned())
                .unwrap_or_else(|| format!("<node {n}>")),
            GenValue::Suppressed => "*".to_owned(),
        }
    }

    /// The trivially "anonymized" table that releases every value raw.
    /// Useful as the utility-maximal reference anonymization.
    pub fn identity(dataset: Arc<Dataset>, name: impl Into<String>) -> Self {
        let records = dataset
            .rows()
            .iter()
            .map(|row| row.iter().map(|v| GenValue::raw(*v)).collect())
            .collect();
        AnonymizedTable::new(dataset, records, name).expect("identity records are well-formed")
    }

    /// The fully suppressed table (every QI cell `*`, every tuple marked
    /// suppressed): the privacy-maximal, utility-minimal reference
    /// anonymization.
    pub fn fully_suppressed(dataset: Arc<Dataset>, name: impl Into<String>) -> Self {
        let qi: Vec<usize> = dataset.schema().quasi_identifiers().to_vec();
        let records = dataset
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        if qi.contains(&c) {
                            GenValue::Suppressed
                        } else {
                            GenValue::raw(*v)
                        }
                    })
                    .collect()
            })
            .collect();
        let n = dataset.len();
        AnonymizedTable::with_suppressed(dataset, records, vec![true; n], name)
            .expect("suppressed records are well-formed")
    }

    /// This table under a new display name (mask and records preserved).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// A copy of this table with the given tuples additionally suppressed:
    /// their quasi-identifier cells are replaced by `*` and their mask
    /// flags set.
    pub fn suppress_tuples(&self, tuples: impl IntoIterator<Item = usize>) -> Self {
        let qi: Vec<usize> = self.dataset.schema().quasi_identifiers().to_vec();
        let mut records = self.records.clone();
        let mut suppressed = self.suppressed.clone();
        for t in tuples {
            for &c in &qi {
                records[t][c] = GenValue::Suppressed;
            }
            suppressed[t] = true;
        }
        AnonymizedTable::with_suppressed(
            self.dataset.clone(),
            records,
            suppressed,
            self.name.clone(),
        )
        .expect("suppression preserves record shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Role, Schema};
    use crate::value::Value;

    fn tiny() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        Dataset::new(
            schema,
            vec![
                vec![Value::Int(10), Value::Cat(0)],
                vec![Value::Int(20), Value::Cat(1)],
                vec![Value::Int(12), Value::Cat(0)],
                vec![Value::Int(20), Value::Cat(0)],
            ],
        )
        .unwrap()
    }

    fn table(records: Vec<Vec<GenValue>>) -> AnonymizedTable {
        AnonymizedTable::new(tiny(), records, "t").unwrap()
    }

    #[test]
    fn grouping_by_interval_signature() {
        let iv = |lo, hi| GenValue::Interval { lo, hi };
        let t = table(vec![
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![iv(15, 30), GenValue::Cat(1)],
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![iv(15, 30), GenValue::Cat(0)],
        ]);
        let c = t.classes();
        assert_eq!(c.class_count(), 2);
        assert_eq!(c.class_of(0), c.class_of(2));
        assert_eq!(c.class_of(1), c.class_of(3));
        assert_ne!(c.class_of(0), c.class_of(1));
        assert_eq!(c.class_size_of(0), 2);
        assert_eq!(c.min_class_size(), 2);
        assert_eq!(c.members(c.class_of(1)), &[1, 3]);
    }

    #[test]
    fn sensitive_column_does_not_split_classes() {
        // Both tuples share the QI signature; differing sensitive values
        // must not separate them.
        let t = table(vec![
            vec![GenValue::Suppressed, GenValue::Cat(0)],
            vec![GenValue::Suppressed, GenValue::Cat(1)],
            vec![GenValue::Suppressed, GenValue::Cat(0)],
            vec![GenValue::Suppressed, GenValue::Cat(1)],
        ]);
        assert_eq!(t.classes().class_count(), 1);
        assert_eq!(t.classes().class_size_of(0), 4);
    }

    #[test]
    fn hash_and_sort_groupings_agree() {
        let iv = |lo, hi| GenValue::Interval { lo, hi };
        let records = vec![
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![iv(15, 30), GenValue::Cat(1)],
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![GenValue::Suppressed, GenValue::Cat(0)],
        ];
        let h = EquivalenceClasses::group_by_hash(&records, &[0]);
        let s = EquivalenceClasses::group_by_sort(&records, &[0]);
        assert!(h.same_partition(&s));
        assert_eq!(h.class_count(), 3);
    }

    #[test]
    fn codes_grouping_matches_hash_grouping_exactly() {
        // Codes mirror the signatures of `hash_and_sort_groupings_agree`.
        let col: Vec<u32> = vec![0, 1, 0, 2];
        let c = EquivalenceClasses::group_by_codes(4, &[&col]);
        let iv = |lo, hi| GenValue::Interval { lo, hi };
        let records = vec![
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![iv(15, 30), GenValue::Cat(1)],
            vec![iv(0, 15), GenValue::Cat(0)],
            vec![GenValue::Suppressed, GenValue::Cat(0)],
        ];
        let h = EquivalenceClasses::group_by_hash(&records, &[0]);
        assert!(c.same_partition(&h));
        // Not just the same partition: identical first-appearance numbering.
        for t in 0..4 {
            assert_eq!(c.class_of(t), h.class_of(t));
        }
        assert_eq!(c.members(0), &[0, 2]);
    }

    #[test]
    fn codes_grouping_wide_fallback() {
        // 3 columns with large codes force > 64 key bits, exercising the
        // flat-buffer path; one column packed exercises the u64 path.
        let a: Vec<u32> = vec![u32::MAX, 7, u32::MAX, 7];
        let b: Vec<u32> = vec![1, 2, 1, 2];
        let c: Vec<u32> = vec![u32::MAX - 1, 5, u32::MAX - 1, 6];
        let wide = EquivalenceClasses::group_by_codes(4, &[&a, &b, &c]);
        assert_eq!(wide.class_count(), 3);
        assert_eq!(wide.class_of(0), wide.class_of(2));
        assert_ne!(wide.class_of(1), wide.class_of(3), "third column splits");
        let packed = EquivalenceClasses::group_by_codes(4, &[&b]);
        assert_eq!(packed.class_count(), 2);
        assert_eq!(packed.members(0), &[0, 2]);
    }

    #[test]
    fn codes_grouping_degenerate_shapes() {
        // No columns: every tuple shares the empty signature.
        let all_one = EquivalenceClasses::group_by_codes(3, &[]);
        assert_eq!(all_one.class_count(), 1);
        assert_eq!(all_one.class_size_of(0), 3);
        // No rows: empty partition.
        let empty = EquivalenceClasses::group_by_codes(0, &[&[][..]]);
        assert_eq!(empty.class_count(), 0);
        assert_eq!(empty.min_class_size(), 0);
    }

    #[test]
    fn same_partition_class_count_shortcut() {
        // 3 tuples: {0,1},{2} vs {0},{1},{2} — same tuple count, different
        // class counts. The shortcut must reject before comparing any
        // assignment (and must agree with the full comparison).
        let a = EquivalenceClasses::group_by_codes(3, &[&[0, 0, 1][..]]);
        let b = EquivalenceClasses::group_by_codes(3, &[&[0, 1, 2][..]]);
        assert_ne!(a.class_count(), b.class_count());
        assert!(!a.same_partition(&b));
        assert!(!b.same_partition(&a));
        // Different tuple counts also short-circuit.
        let c = EquivalenceClasses::group_by_codes(2, &[&[0, 1][..]]);
        assert!(!b.same_partition(&c));
        // Equal class counts with permuted numbering still match…
        let p = EquivalenceClasses::group_by_codes(3, &[&[5, 2, 2][..]]);
        let q = EquivalenceClasses::group_by_codes(3, &[&[1, 9, 9][..]]);
        assert!(p.same_partition(&q));
        // …but equal counts with different groupings do not.
        let r = EquivalenceClasses::group_by_codes(3, &[&[1, 1, 2][..]]);
        let s = EquivalenceClasses::group_by_codes(3, &[&[1, 2, 2][..]]);
        assert_eq!(r.class_count(), s.class_count());
        assert!(!r.same_partition(&s));
    }

    #[test]
    fn same_partition_detects_differences() {
        let records_a = vec![
            vec![GenValue::Int(1)],
            vec![GenValue::Int(1)],
            vec![GenValue::Int(2)],
        ];
        let records_b = vec![
            vec![GenValue::Int(1)],
            vec![GenValue::Int(2)],
            vec![GenValue::Int(2)],
        ];
        let a = EquivalenceClasses::group_by_hash(&records_a, &[0]);
        let b = EquivalenceClasses::group_by_hash(&records_b, &[0]);
        assert!(a.same_partition(&a));
        assert!(!a.same_partition(&b));
    }

    #[test]
    fn suppression_is_explicit_not_inferred() {
        // A table whose cells are all-* is NOT suppressed unless flagged.
        let coarse = table(vec![
            vec![GenValue::Suppressed, GenValue::Cat(0)],
            vec![GenValue::Int(20), GenValue::Cat(1)],
            vec![GenValue::Suppressed, GenValue::Cat(0)],
            vec![GenValue::Int(20), GenValue::Cat(0)],
        ]);
        assert_eq!(coarse.suppressed_count(), 0);
        assert!(!coarse.is_tuple_suppressed(0));

        // suppress_tuples flags and rewrites cells.
        let sup = coarse.suppress_tuples([1]);
        assert!(sup.is_tuple_suppressed(1));
        assert_eq!(sup.suppressed_count(), 1);
        assert_eq!(sup.cell(1, 0), &GenValue::Suppressed);
        assert_eq!(sup.cell(1, 1), &GenValue::Cat(1), "sensitive cell kept");
        assert_eq!(sup.suppression_mask(), &[false, true, false, false]);
    }

    #[test]
    fn with_suppressed_validates_mask() {
        let ds = tiny();
        // Mask length mismatch.
        let records: Vec<Vec<GenValue>> = (0..4)
            .map(|_| vec![GenValue::Suppressed, GenValue::Cat(0)])
            .collect();
        let r = AnonymizedTable::with_suppressed(ds.clone(), records.clone(), vec![true], "t");
        assert!(matches!(r, Err(Error::InvalidDataset(_))));
        // Marked suppressed but QI cell not suppressed.
        let mut bad = records;
        bad[0][0] = GenValue::Int(10);
        let r = AnonymizedTable::with_suppressed(ds, bad, vec![true, true, true, true], "t");
        assert!(matches!(r, Err(Error::InvalidDataset(_))));
    }

    #[test]
    fn identity_and_fully_suppressed() {
        let ds = tiny();
        let id = AnonymizedTable::identity(ds.clone(), "id");
        assert_eq!(id.len(), 4);
        assert_eq!(id.cell(0, 0), &GenValue::Int(10));
        // Ages 10, 20, 12, 20 → three classes (tuples 1 and 3 share age 20).
        assert_eq!(id.classes().class_count(), 3);

        let sup = AnonymizedTable::fully_suppressed(ds, "sup");
        assert_eq!(sup.classes().class_count(), 1);
        assert_eq!(sup.suppressed_count(), 4);
        // Sensitive values stay raw.
        assert_eq!(sup.cell(0, 1), &GenValue::Cat(0));
    }

    #[test]
    fn validation_errors() {
        let ds = tiny();
        let r = AnonymizedTable::new(ds.clone(), vec![], "t");
        assert!(matches!(r, Err(Error::InvalidDataset(_))));
        let r = AnonymizedTable::new(
            ds,
            vec![
                vec![GenValue::Int(1)],
                vec![GenValue::Int(1)],
                vec![GenValue::Int(1)],
                vec![GenValue::Int(1)],
            ],
            "t",
        );
        assert!(matches!(r, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn render_cells() {
        let t = table(vec![
            vec![GenValue::Interval { lo: 0, hi: 15 }, GenValue::Cat(0)],
            vec![GenValue::Suppressed, GenValue::Cat(1)],
            vec![GenValue::Int(12), GenValue::Cat(0)],
            vec![GenValue::Int(20), GenValue::Cat(0)],
        ]);
        assert_eq!(t.render_cell(0, 0), "(0,15]");
        assert_eq!(t.render_cell(0, 1), "x");
        assert_eq!(t.render_cell(1, 0), "*");
        assert_eq!(t.render_cell(2, 0), "12");
    }

    #[test]
    fn empty_partition_properties() {
        let c = EquivalenceClasses::group_by_hash(&[], &[0]);
        assert_eq!(c.class_count(), 0);
        assert_eq!(c.min_class_size(), 0);
    }
}
