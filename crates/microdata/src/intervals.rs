//! Interval ladders: generalization hierarchies for numeric attributes.
//!
//! The paper generalizes ages to half-open ranges such as `(25,35]`
//! (Table 2) and `(20,40]` (Table 3). An [`IntervalLadder`] is an ordered
//! list of bucketings (width + origin per level); level 0 releases the raw
//! value and the level above the last bucketing suppresses it entirely.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::value::GenValue;

/// One bucketing level of an [`IntervalLadder`].
///
/// A value `v` falls into the half-open interval `(lo, lo + width]` where
/// `lo = origin + k·width` for the unique integer `k` with
/// `lo < v ≤ lo + width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalLevel {
    /// A point that is the *exclusive lower bound* of some interval.
    pub origin: i64,
    /// Interval width; must be positive.
    pub width: i64,
}

impl IntervalLevel {
    /// The interval of this level containing `v`, under the half-open
    /// convention `(lo, hi]`.
    pub fn bucket(&self, v: i64) -> (i64, i64) {
        // Solve origin + k*width < v <= origin + (k+1)*width for integer k,
        // i.e. k = ceil((v - origin) / width) - 1, in pure integer math.
        let delta = v - self.origin;
        let k = if delta > 0 {
            (delta + self.width - 1) / self.width - 1
        } else {
            delta / self.width - 1
        };
        let lo = self.origin + k * self.width;
        (lo, lo + self.width)
    }
}

/// A ladder of increasingly coarse bucketings for a numeric attribute.
///
/// Level 0 is the raw value; levels `1..=n` use `levels[i-1]`; level `n+1`
/// is full suppression (`*`). Use [`IntervalLadder::new_nested`] when the
/// ladder must form a proper refinement chain (each coarser interval a union
/// of finer ones) — required for the anti-monotonicity assumptions of
/// lattice-search algorithms — or [`IntervalLadder::new_unchecked`] to allow
/// arbitrary ladders (the paper's T3a/T3b/T4 use three *different* ladders).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalLadder {
    levels: Vec<IntervalLevel>,
}

impl IntervalLadder {
    /// Builds a ladder and verifies it is a refinement chain: each level's
    /// buckets must be unions of the previous level's buckets, i.e.
    /// `width[i+1] % width[i] == 0` and
    /// `(origin[i+1] - origin[i]) % width[i] == 0`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidHierarchy`] on empty ladders, non-positive
    /// widths, non-increasing widths, or misaligned origins.
    pub fn new_nested(levels: Vec<IntervalLevel>) -> Result<Self> {
        Self::validate_basics(&levels)?;
        for w in levels.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.width % a.width != 0 {
                return Err(Error::InvalidHierarchy(format!(
                    "ladder not nested: width {} does not divide width {}",
                    a.width, b.width
                )));
            }
            if (b.origin - a.origin) % a.width != 0 {
                return Err(Error::InvalidHierarchy(format!(
                    "ladder not nested: origins {} and {} misaligned modulo width {}",
                    a.origin, b.origin, a.width
                )));
            }
        }
        Ok(IntervalLadder { levels })
    }

    /// Builds a ladder without the refinement check. Widths must still be
    /// positive and strictly increasing.
    ///
    /// # Errors
    /// Returns [`Error::InvalidHierarchy`] on empty ladders, non-positive
    /// widths, or non-increasing widths.
    pub fn new_unchecked(levels: Vec<IntervalLevel>) -> Result<Self> {
        Self::validate_basics(&levels)?;
        Ok(IntervalLadder { levels })
    }

    /// Convenience: a nested ladder with a shared origin and the given
    /// widths.
    ///
    /// # Errors
    /// As [`IntervalLadder::new_nested`].
    pub fn uniform(origin: i64, widths: &[i64]) -> Result<Self> {
        Self::new_nested(
            widths
                .iter()
                .map(|&width| IntervalLevel { origin, width })
                .collect(),
        )
    }

    fn validate_basics(levels: &[IntervalLevel]) -> Result<()> {
        if levels.is_empty() {
            return Err(Error::InvalidHierarchy(
                "interval ladder has no levels".into(),
            ));
        }
        for l in levels {
            if l.width <= 0 {
                return Err(Error::InvalidHierarchy(format!(
                    "interval width must be positive, got {}",
                    l.width
                )));
            }
        }
        for w in levels.windows(2) {
            if w[1].width <= w[0].width {
                return Err(Error::InvalidHierarchy(format!(
                    "interval widths must strictly increase, got {} then {}",
                    w[0].width, w[1].width
                )));
            }
        }
        Ok(())
    }

    /// Highest admissible generalization level: `levels + 1` (the final
    /// level is suppression).
    pub fn max_level(&self) -> usize {
        self.levels.len() + 1
    }

    /// The bucketing levels, finest first (excluding raw and suppression).
    pub fn levels(&self) -> &[IntervalLevel] {
        &self.levels
    }

    /// Generalizes `v` to `level`: 0 = raw, `1..=n` = interval at
    /// `levels[level-1]`, `n+1` = suppressed.
    ///
    /// # Errors
    /// Returns [`Error::LevelOutOfRange`] if `level > max_level()`.
    pub fn generalize(&self, v: i64, level: usize) -> Result<GenValue> {
        if level == 0 {
            return Ok(GenValue::Int(v));
        }
        if level == self.max_level() {
            return Ok(GenValue::Suppressed);
        }
        let l = self.levels.get(level - 1).ok_or(Error::LevelOutOfRange {
            attribute: String::new(),
            level,
            max: self.max_level(),
        })?;
        let (lo, hi) = l.bucket(v);
        Ok(GenValue::Interval { lo, hi })
    }

    /// The generalization level at which `gv` lives, if `gv` could have
    /// been produced by this ladder: raw → 0, suppressed → `max_level()`,
    /// interval → the matching bucketing level.
    pub fn level_of(&self, gv: &GenValue) -> Option<usize> {
        match gv {
            GenValue::Int(_) => Some(0),
            GenValue::Suppressed => Some(self.max_level()),
            GenValue::Interval { lo, hi } => {
                let width = hi - lo;
                self.levels
                    .iter()
                    .position(|l| l.width == width && (lo - l.origin) % l.width == 0)
                    .map(|i| i + 1)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_matches_paper_t3a() {
        // T3a ages: width 10, origin 25 → (25,35], (35,45], (45,55].
        let l = IntervalLevel {
            origin: 25,
            width: 10,
        };
        assert_eq!(l.bucket(28), (25, 35));
        assert_eq!(l.bucket(26), (25, 35));
        assert_eq!(l.bucket(31), (25, 35));
        assert_eq!(l.bucket(35), (25, 35), "upper bound inclusive");
        assert_eq!(l.bucket(36), (35, 45));
        assert_eq!(l.bucket(41), (35, 45));
        assert_eq!(l.bucket(50), (45, 55));
        assert_eq!(l.bucket(55), (45, 55));
        assert_eq!(l.bucket(25), (15, 25), "lower bound exclusive");
    }

    #[test]
    fn bucket_matches_paper_t3b_and_t4() {
        // T3b ages: width 20, origin 15 → (15,35], (35,55].
        let l = IntervalLevel {
            origin: 15,
            width: 20,
        };
        assert_eq!(l.bucket(28), (15, 35));
        assert_eq!(l.bucket(55), (35, 55));
        // T4 ages: width 20, origin 20 → (20,40], (40,60].
        let l = IntervalLevel {
            origin: 20,
            width: 20,
        };
        assert_eq!(l.bucket(28), (20, 40));
        assert_eq!(l.bucket(39), (20, 40));
        assert_eq!(l.bucket(41), (40, 60));
        assert_eq!(l.bucket(60), (40, 60));
    }

    #[test]
    fn bucket_handles_negatives_and_boundaries() {
        let l = IntervalLevel {
            origin: 0,
            width: 10,
        };
        assert_eq!(l.bucket(-5), (-10, 0));
        assert_eq!(l.bucket(0), (-10, 0), "0 is the inclusive upper bound");
        assert_eq!(l.bucket(-10), (-20, -10));
        assert_eq!(l.bucket(1), (0, 10));
        assert_eq!(l.bucket(10), (0, 10));
    }

    #[test]
    fn nested_validation() {
        // 10 then 20 with aligned origins: ok.
        assert!(IntervalLadder::new_nested(vec![
            IntervalLevel {
                origin: 25,
                width: 10
            },
            IntervalLevel {
                origin: 15,
                width: 20
            },
        ])
        .is_ok());
        // Misaligned origin (difference not multiple of 10): err.
        assert!(IntervalLadder::new_nested(vec![
            IntervalLevel {
                origin: 25,
                width: 10
            },
            IntervalLevel {
                origin: 20,
                width: 20
            },
        ])
        .is_err());
        // Width not a multiple: err.
        assert!(IntervalLadder::new_nested(vec![
            IntervalLevel {
                origin: 0,
                width: 10
            },
            IntervalLevel {
                origin: 0,
                width: 25
            },
        ])
        .is_err());
        // Unchecked allows the misaligned one.
        assert!(IntervalLadder::new_unchecked(vec![
            IntervalLevel {
                origin: 25,
                width: 10
            },
            IntervalLevel {
                origin: 20,
                width: 20
            },
        ])
        .is_ok());
    }

    #[test]
    fn basic_validation() {
        assert!(IntervalLadder::new_unchecked(vec![]).is_err());
        assert!(IntervalLadder::new_unchecked(vec![IntervalLevel {
            origin: 0,
            width: 0
        }])
        .is_err());
        assert!(IntervalLadder::new_unchecked(vec![
            IntervalLevel {
                origin: 0,
                width: 10
            },
            IntervalLevel {
                origin: 0,
                width: 10
            },
        ])
        .is_err());
    }

    #[test]
    fn generalize_levels() {
        let ladder = IntervalLadder::uniform(0, &[10, 20]).unwrap();
        assert_eq!(ladder.max_level(), 3);
        assert_eq!(ladder.generalize(17, 0).unwrap(), GenValue::Int(17));
        assert_eq!(
            ladder.generalize(17, 1).unwrap(),
            GenValue::Interval { lo: 10, hi: 20 }
        );
        assert_eq!(
            ladder.generalize(17, 2).unwrap(),
            GenValue::Interval { lo: 0, hi: 20 }
        );
        assert_eq!(ladder.generalize(17, 3).unwrap(), GenValue::Suppressed);
        assert!(ladder.generalize(17, 4).is_err());
    }

    #[test]
    fn level_of_roundtrip() {
        let ladder = IntervalLadder::uniform(5, &[10, 30]).unwrap();
        for level in 0..=ladder.max_level() {
            let gv = ladder.generalize(22, level).unwrap();
            assert_eq!(ladder.level_of(&gv), Some(level), "level {level} roundtrip");
        }
        // A foreign interval is not recognized.
        assert_eq!(ladder.level_of(&GenValue::Interval { lo: 0, hi: 7 }), None);
        assert_eq!(ladder.level_of(&GenValue::Cat(0)), None);
    }
}
