//! # anoncmp-microdata
//!
//! The microdata substrate for the `anoncmp` workspace: schemas, raw and
//! generalized values, value generalization hierarchies (taxonomies and
//! interval ladders), immutable datasets, anonymized releases with induced
//! equivalence classes, the full-domain generalization lattice, per-tuple
//! information-loss metrics, and CSV import/export.
//!
//! This crate implements everything the comparison framework of
//! *"On the Comparison of Microdata Disclosure Control Algorithms"*
//! (Dewri, Ray, Ray & Whitley, EDBT 2009) assumes as given: a way to
//! produce anonymizations of a dataset and to measure per-tuple quantities
//! on them.
//!
//! ## Quick tour
//!
//! ```
//! use anoncmp_microdata::prelude::*;
//!
//! // A schema with a masked zip code, a bucketed age, and a sensitive
//! // attribute — the shape of the paper's Table 1.
//! let zip = Taxonomy::masking(&["13053", "13268"], &[1, 2, 3, 4]).unwrap();
//! let schema = Schema::new(vec![
//!     Attribute::from_taxonomy("Zip Code", Role::QuasiIdentifier, zip),
//!     Attribute::integer("Age", Role::QuasiIdentifier, 0, 120)
//!         .with_hierarchy(IntervalLadder::uniform(5, &[10, 20]).unwrap().into())
//!         .unwrap(),
//!     Attribute::categorical("Status", Role::Sensitive, ["a", "b"]),
//! ])
//! .unwrap();
//!
//! let mut b = DatasetBuilder::with_capacity(schema.clone(), 2);
//! b.push_labels(&["13053", "28", "a"]).unwrap();
//! b.push_labels(&["13268", "41", "b"]).unwrap();
//! let dataset = b.build().unwrap();
//!
//! // Full-domain recoding via the generalization lattice.
//! let lattice = Lattice::new(schema).unwrap();
//! let release = lattice.apply(&dataset, &[2, 1], "demo").unwrap();
//! assert_eq!(release.render_cell(0, 0), "130**");
//! assert_eq!(release.render_cell(0, 1), "(25,35]");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anonymized;
pub mod chunked;
pub mod codec;
pub mod csv;
pub mod dataset;
pub mod display;
pub mod error;
mod hash;
pub mod hierarchy;
pub mod intervals;
pub mod kernels;
pub mod lattice;
pub mod loss;
pub mod numeric;
pub mod parallel;
pub mod schema;
pub mod stats;
pub mod taxonomy;
pub mod value;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::anonymized::{AnonymizedTable, EquivalenceClasses};
    pub use crate::chunked::{ChunkStore, ChunkedCodec, ChunkedColumn};
    pub use crate::codec::{EncodedView, GenCodec, NodePartition};
    pub use crate::dataset::{Dataset, DatasetBuilder, DistinctValues};
    pub use crate::error::{Error, Result};
    pub use crate::hierarchy::Hierarchy;
    pub use crate::intervals::{IntervalLadder, IntervalLevel};
    pub use crate::lattice::{Lattice, LevelVector};
    pub use crate::loss::{
        discernibility_vector, discernibility_vector_chunked, discernibility_vector_encoded,
        precision_vector, precision_vector_chunked, precision_vector_encoded, CellLossCache,
        ColumnSet, CoverageBasis, LossKind, LossMetric,
    };
    pub use crate::numeric::{NumericBase, NumericRelease, Release};
    pub use crate::schema::{Attribute, Domain, Role, Schema};
    pub use crate::stats::{render_profile, subset_profile, uniqueness_profile, SubsetProfile};
    pub use crate::taxonomy::{Taxonomy, TaxonomyBuilder};
    pub use crate::value::{GenValue, NodeId, Value};
}

pub use prelude::*;
