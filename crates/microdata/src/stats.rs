//! Dataset profiling: how identifying is the raw data?
//!
//! Before anonymizing, publishers profile the quasi-identifier: how many
//! records are unique on each QI attribute alone, on pairs, on the whole
//! combination? The profile explains *why* generalization is needed and
//! which attributes drive re-identification — the operational prelude to
//! the paper's per-tuple privacy measurements.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::value::Value;

/// Uniqueness statistics of one column subset.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetProfile {
    /// The column indices of the subset, ascending.
    pub columns: Vec<usize>,
    /// Number of distinct value combinations.
    pub distinct_combinations: usize,
    /// Number of records whose combination is unique (class of size 1).
    pub unique_records: usize,
    /// Size of the smallest combination group (the subset's scalar "k").
    pub min_group: usize,
}

/// Computes the profile of one column subset.
///
/// # Panics
/// Panics if `columns` is empty or contains an out-of-range index.
pub fn subset_profile(dataset: &Dataset, columns: &[usize]) -> SubsetProfile {
    assert!(!columns.is_empty(), "profile needs at least one column");
    for &c in columns {
        assert!(c < dataset.schema().len(), "column {c} out of range");
    }
    let mut sorted: Vec<usize> = columns.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    for t in 0..dataset.len() {
        let key: Vec<Value> = sorted.iter().map(|&c| *dataset.value(t, c)).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    let unique_records = groups.values().filter(|&&g| g == 1).count();
    let min_group = groups.values().copied().min().unwrap_or(0);
    SubsetProfile {
        columns: sorted,
        distinct_combinations: groups.len(),
        unique_records,
        min_group,
    }
}

/// The uniqueness profile over every single quasi-identifier, every QI
/// pair, and the full quasi-identifier, ordered by subset size then
/// lexicographically. The full-QI entry is always last.
pub fn uniqueness_profile(dataset: &Dataset) -> Vec<SubsetProfile> {
    let qi = dataset.schema().quasi_identifiers().to_vec();
    let mut out = Vec::new();
    for &c in &qi {
        out.push(subset_profile(dataset, &[c]));
    }
    for i in 0..qi.len() {
        for j in (i + 1)..qi.len() {
            out.push(subset_profile(dataset, &[qi[i], qi[j]]));
        }
    }
    if qi.len() > 2 {
        out.push(subset_profile(dataset, &qi));
    }
    out
}

/// Renders the profile as an aligned text table with attribute names.
pub fn render_profile(dataset: &Dataset, profiles: &[SubsetProfile]) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>9} {:>8} {:>7}\n",
        "quasi-identifier subset", "distinct", "unique", "min |g|"
    ));
    for p in profiles {
        let names: Vec<&str> = p
            .columns
            .iter()
            .map(|&c| schema.attribute(c).name())
            .collect();
        out.push_str(&format!(
            "{:<40} {:>9} {:>8} {:>7}\n",
            names.join(" + "),
            p.distinct_combinations,
            p.unique_records,
            p.min_group
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use crate::schema::{Attribute, Role, Schema};

    fn dataset() -> Arc<Dataset> {
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100),
            Attribute::categorical("sex", Role::QuasiIdentifier, ["F", "M"]),
            Attribute::categorical("zip", Role::QuasiIdentifier, ["a", "b"]),
            Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
        ])
        .unwrap();
        Dataset::new(
            schema,
            vec![
                vec![Value::Int(30), Value::Cat(0), Value::Cat(0), Value::Cat(0)],
                vec![Value::Int(30), Value::Cat(0), Value::Cat(1), Value::Cat(1)],
                vec![Value::Int(30), Value::Cat(1), Value::Cat(0), Value::Cat(0)],
                vec![Value::Int(40), Value::Cat(1), Value::Cat(0), Value::Cat(1)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_column_profiles() {
        let ds = dataset();
        let p = subset_profile(&ds, &[0]);
        // Ages: 30×3, 40×1.
        assert_eq!(p.distinct_combinations, 2);
        assert_eq!(p.unique_records, 1);
        assert_eq!(p.min_group, 1);
        let p = subset_profile(&ds, &[1]);
        // Sex: F×2, M×2.
        assert_eq!(p.distinct_combinations, 2);
        assert_eq!(p.unique_records, 0);
        assert_eq!(p.min_group, 2);
    }

    #[test]
    fn full_qi_profile() {
        let ds = dataset();
        let p = subset_profile(&ds, &[0, 1, 2]);
        // All four combinations distinct.
        assert_eq!(p.distinct_combinations, 4);
        assert_eq!(p.unique_records, 4);
        assert_eq!(p.min_group, 1);
    }

    #[test]
    fn duplicate_and_unsorted_columns_are_normalized() {
        let ds = dataset();
        let a = subset_profile(&ds, &[2, 0, 2]);
        let b = subset_profile(&ds, &[0, 2]);
        assert_eq!(a, b);
        assert_eq!(a.columns, vec![0, 2]);
    }

    #[test]
    fn uniqueness_profile_covers_singles_pairs_and_full() {
        let ds = dataset();
        let profiles = uniqueness_profile(&ds);
        // 3 singles + 3 pairs + 1 full.
        assert_eq!(profiles.len(), 7);
        assert_eq!(profiles.last().unwrap().columns, vec![0, 1, 2]);
        // Monotonicity: adding columns cannot decrease uniqueness.
        let single_age = &profiles[0];
        let full = profiles.last().unwrap();
        assert!(full.unique_records >= single_age.unique_records);
    }

    #[test]
    fn rendering_contains_names_and_counts() {
        let ds = dataset();
        let profiles = uniqueness_profile(&ds);
        let s = render_profile(&ds, &profiles);
        assert!(s.contains("age + sex"));
        assert!(s.contains("age + sex + zip"));
        assert!(s.contains("distinct"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_subset_rejected() {
        let ds = dataset();
        let _ = subset_profile(&ds, &[]);
    }

    #[test]
    fn empty_dataset_profile() {
        let schema =
            Schema::new(vec![Attribute::integer("a", Role::QuasiIdentifier, 0, 9)]).unwrap();
        let ds = Dataset::new(schema, vec![]).unwrap();
        let p = subset_profile(&ds, &[0]);
        assert_eq!(p.distinct_combinations, 0);
        assert_eq!(p.min_group, 0);
    }
}
