//! Raw and generalized cell values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A raw microdata cell value.
///
/// Categorical values are stored as indices into the owning attribute's
/// category label table (see
/// [`Attribute::category_label`](crate::schema::Attribute::category_label)),
/// which keeps `Value` `Copy` and hashing cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A categorical value (index into the attribute's labels).
    Cat(u32),
}

impl Value {
    /// The integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Cat(_) => None,
        }
    }

    /// The category id, if this is a categorical value.
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(*c),
            Value::Int(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

/// Identifier of a node in a [`Taxonomy`](crate::taxonomy::Taxonomy) arena.
pub type NodeId = u32;

/// A generalized cell value, as released in an anonymized table.
///
/// The paper (§3) treats suppression as a special case of generalization, so
/// [`GenValue::Suppressed`] represents the top of every hierarchy and a
/// record-suppressed tuple simply carries `Suppressed` in every
/// quasi-identifier cell.
///
/// All variants are plain integers so equality and hashing — the basis of
/// equivalence-class induction — are O(1) per cell and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GenValue {
    /// An ungeneralized integer value (hierarchy level 0).
    Int(i64),
    /// A half-open interval `(lo, hi]` produced by an interval ladder.
    ///
    /// The paper renders age generalizations this way, e.g. `(25,35]`.
    Interval {
        /// Exclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// An ungeneralized categorical value (hierarchy level 0).
    Cat(u32),
    /// An internal taxonomy node (hierarchy level ≥ 1).
    Node(NodeId),
    /// Fully suppressed: the top `*` of any hierarchy.
    Suppressed,
}

impl GenValue {
    /// Whether this cell is fully suppressed.
    pub fn is_suppressed(&self) -> bool {
        matches!(self, GenValue::Suppressed)
    }

    /// Whether this cell still carries its raw, ungeneralized value.
    pub fn is_raw(&self) -> bool {
        matches!(self, GenValue::Int(_) | GenValue::Cat(_))
    }

    /// Wraps a raw [`Value`] without generalizing it.
    pub fn raw(value: Value) -> Self {
        match value {
            Value::Int(v) => GenValue::Int(v),
            Value::Cat(c) => GenValue::Cat(c),
        }
    }

    /// Whether `value` is covered by this generalized cell.
    ///
    /// Interval containment uses the paper's half-open convention
    /// `lo < v ≤ hi`. Taxonomy-node containment cannot be decided without
    /// the taxonomy and is handled by
    /// [`Taxonomy::node_covers_leaf`](crate::taxonomy::Taxonomy::node_covers_leaf);
    /// this method returns `false` for [`GenValue::Node`].
    pub fn covers_raw(&self, value: &Value) -> bool {
        match (self, value) {
            (GenValue::Int(g), Value::Int(v)) => g == v,
            (GenValue::Interval { lo, hi }, Value::Int(v)) => lo < v && v <= hi,
            (GenValue::Cat(g), Value::Cat(c)) => g == c,
            (GenValue::Suppressed, _) => true,
            _ => false,
        }
    }
}

impl fmt::Display for GenValue {
    /// Context-free rendering. Categorical ids and taxonomy nodes render as
    /// placeholders; use
    /// [`AnonymizedTable::render_cell`](crate::anonymized::AnonymizedTable::render_cell)
    /// for label-aware output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenValue::Int(v) => write!(f, "{v}"),
            GenValue::Interval { lo, hi } => write!(f, "({lo},{hi}]"),
            GenValue::Cat(c) => write!(f, "<cat {c}>"),
            GenValue::Node(n) => write!(f, "<node {n}>"),
            GenValue::Suppressed => write!(f, "*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_cat(), None);
        assert_eq!(Value::Cat(2).as_cat(), Some(2));
        assert_eq!(Value::Cat(2).as_int(), None);
        assert_eq!(Value::from(7i64), Value::Int(7));
    }

    #[test]
    fn interval_containment_is_half_open() {
        let g = GenValue::Interval { lo: 25, hi: 35 };
        assert!(!g.covers_raw(&Value::Int(25)), "lower bound is exclusive");
        assert!(g.covers_raw(&Value::Int(26)));
        assert!(g.covers_raw(&Value::Int(35)), "upper bound is inclusive");
        assert!(!g.covers_raw(&Value::Int(36)));
    }

    #[test]
    fn suppressed_covers_everything() {
        assert!(GenValue::Suppressed.covers_raw(&Value::Int(1)));
        assert!(GenValue::Suppressed.covers_raw(&Value::Cat(9)));
        assert!(GenValue::Suppressed.is_suppressed());
        assert!(!GenValue::Suppressed.is_raw());
    }

    #[test]
    fn raw_wrapping() {
        assert_eq!(GenValue::raw(Value::Int(3)), GenValue::Int(3));
        assert_eq!(GenValue::raw(Value::Cat(1)), GenValue::Cat(1));
        assert!(GenValue::raw(Value::Cat(1)).is_raw());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(GenValue::Interval { lo: 25, hi: 35 }.to_string(), "(25,35]");
        assert_eq!(GenValue::Suppressed.to_string(), "*");
        assert_eq!(GenValue::Int(42).to_string(), "42");
    }

    #[test]
    fn node_does_not_cover_without_taxonomy() {
        assert!(!GenValue::Node(3).covers_raw(&Value::Cat(0)));
    }

    #[test]
    fn genvalue_hash_eq_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(GenValue::Interval { lo: 0, hi: 10 });
        set.insert(GenValue::Interval { lo: 0, hi: 10 });
        set.insert(GenValue::Suppressed);
        assert_eq!(set.len(), 2);
    }
}
