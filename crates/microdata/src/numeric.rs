//! Numeric views of microdata for the perturbative release family.
//!
//! Generalization algorithms emit [`AnonymizedTable`]s — per-tuple
//! generalization codes over the original schema. Perturbative methods
//! (noise addition, rank swapping, microaggregation, neighborhood
//! randomization) instead keep the original row count and re-publish the
//! *numeric* quasi-identifier columns with modified values. This module
//! provides the shared substrate both families are measured on:
//!
//! * [`NumericBase`] — the original numeric QI columns of a dataset in
//!   column-major `f64` form, with the per-column moments (mean, std) and
//!   the covariance/inverse-covariance matrices the distance-based
//!   risk/loss properties and the correlated perturbation methods need.
//!   Built once per dataset and shared via `Arc`.
//! * [`NumericRelease`] — one released (perturbed or numerically viewed)
//!   value matrix over the same base. Row order is tuple order, exactly
//!   like [`AnonymizedTable`], so per-tuple property vectors from both
//!   families are component-wise comparable (paper §3, Definition 1).
//! * [`NumericRelease::from_generalized`] — the numeric view of a
//!   generalization release (interval midpoints, suppression → column
//!   mean), which is what makes mixed-family comparator tournaments
//!   commensurable: the same distance-based property extracts from either
//!   family over identical column-slice representations.

use std::sync::Arc;

use crate::anonymized::AnonymizedTable;
use crate::dataset::Dataset;
use crate::schema::{Domain, Role};
use crate::value::{GenValue, Value};

/// The original numeric quasi-identifier columns of a dataset, plus the
/// precomputed statistics every distance-based measurement reuses.
///
/// Columns are the dataset's integer-domain QI attributes in schema
/// order; categorical QI columns and sensitive attributes never enter the
/// numeric view. All slices are row-aligned with the dataset.
#[derive(Debug)]
pub struct NumericBase {
    dataset: Arc<Dataset>,
    /// Schema column index of each numeric column.
    schema_cols: Vec<usize>,
    /// Attribute names of the numeric columns.
    names: Vec<String>,
    /// Original values, column-major.
    columns: Vec<Vec<f64>>,
    /// Per-column mean.
    means: Vec<f64>,
    /// Per-column population standard deviation, clamped to a positive
    /// floor so standardized distances stay finite on constant columns.
    stds: Vec<f64>,
    /// Sample covariance matrix (d × d, row-major).
    cov: Vec<Vec<f64>>,
    /// Inverse of the (ridge-regularized, if necessary) covariance.
    inv_cov: Vec<Vec<f64>>,
}

/// Floor for standard deviations and covariance ridge terms: keeps every
/// standardized / Mahalanobis distance finite even on degenerate columns.
const STD_FLOOR: f64 = 1e-12;

impl NumericBase {
    /// Builds the numeric base of `dataset`, or `None` when the schema
    /// has no integer-domain quasi-identifier column (nothing to
    /// perturb or measure numerically).
    pub fn of(dataset: &Arc<Dataset>) -> Option<Arc<NumericBase>> {
        let schema = dataset.schema();
        let schema_cols: Vec<usize> = schema
            .quasi_identifiers()
            .iter()
            .copied()
            .filter(|&c| {
                matches!(schema.attribute(c).domain(), Domain::Integer { .. })
                    && schema.attribute(c).role() == Role::QuasiIdentifier
            })
            .collect();
        if schema_cols.is_empty() {
            return None;
        }
        let n = dataset.len();
        let names: Vec<String> = schema_cols
            .iter()
            .map(|&c| schema.attribute(c).name().to_owned())
            .collect();
        let columns: Vec<Vec<f64>> = schema_cols
            .iter()
            .map(|&c| {
                (0..n)
                    .map(|row| match dataset.value(row, c) {
                        Value::Int(v) => *v as f64,
                        Value::Cat(_) => 0.0,
                    })
                    .collect()
            })
            .collect();
        let means: Vec<f64> = columns
            .iter()
            .map(|col| {
                if col.is_empty() {
                    0.0
                } else {
                    col.iter().sum::<f64>() / col.len() as f64
                }
            })
            .collect();
        let stds: Vec<f64> = columns
            .iter()
            .zip(&means)
            .map(|(col, &m)| {
                if col.is_empty() {
                    1.0
                } else {
                    let var =
                        col.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / col.len() as f64;
                    var.sqrt().max(STD_FLOOR)
                }
            })
            .collect();
        let d = columns.len();
        let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
        let mut cov = vec![vec![0.0; d]; d];
        for a in 0..d {
            for b in a..d {
                let mut acc = 0.0;
                for (&va, &vb) in columns[a].iter().zip(&columns[b]) {
                    acc += (va - means[a]) * (vb - means[b]);
                }
                let c = acc / denom;
                cov[a][b] = c;
                cov[b][a] = c;
            }
        }
        let inv_cov = invert_spd(&cov);
        Some(Arc::new(NumericBase {
            dataset: dataset.clone(),
            schema_cols,
            names,
            columns,
            means,
            stds,
            cov,
            inv_cov,
        }))
    }

    /// The dataset this base was built from.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of numeric columns (the dimension `d`).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Schema column indices of the numeric columns.
    pub fn schema_cols(&self) -> &[usize] {
        &self.schema_cols
    }

    /// Attribute names of the numeric columns.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The original values, column-major.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// One original column as a contiguous slice.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.columns[j]
    }

    /// Per-column means of the original data.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column population standard deviations (positive).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// The sample covariance matrix (row-major, d × d).
    pub fn covariance(&self) -> &[Vec<f64>] {
        &self.cov
    }

    /// The inverse covariance matrix used by Mahalanobis distances.
    pub fn inverse_covariance(&self) -> &[Vec<f64>] {
        &self.inv_cov
    }

    /// Lower-triangular Cholesky factor `L` of the (ridge-regularized)
    /// covariance: `L·Lᵀ = Σ`. Used by correlated noise addition.
    pub fn cholesky(&self) -> Vec<Vec<f64>> {
        cholesky_spd(&self.cov)
    }
}

/// A perturbed (or numerically viewed) release over a [`NumericBase`]:
/// the same rows, the same numeric columns, modified values.
#[derive(Debug, Clone)]
pub struct NumericRelease {
    name: String,
    base: Arc<NumericBase>,
    /// Released values, column-major, same shape as the base columns.
    columns: Vec<Vec<f64>>,
}

impl NumericRelease {
    /// Wraps released columns. Panics if the shape differs from the base.
    pub fn new(name: impl Into<String>, base: Arc<NumericBase>, columns: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            columns.len(),
            base.width(),
            "one released column per base column"
        );
        for col in &columns {
            assert_eq!(col.len(), base.len(), "released columns are row-aligned");
        }
        NumericRelease {
            name: name.into(),
            base,
            columns,
        }
    }

    /// The identity release: original values, unperturbed.
    pub fn identity(base: Arc<NumericBase>, name: impl Into<String>) -> Self {
        let columns = base.columns().to_vec();
        NumericRelease::new(name, base, columns)
    }

    /// The numeric view of a generalization release over the same
    /// dataset: exact integers stay themselves, intervals collapse to
    /// their midpoint, taxonomy nodes and suppressed cells fall back to
    /// the column mean (the least-informative numeric publication).
    ///
    /// Row order is tuple order in both representations, so a
    /// distance-based property extracted from this view is component-wise
    /// comparable with one extracted from a perturbative release.
    ///
    /// # Panics
    /// If `table` was not produced from the base's dataset (row counts
    /// differ).
    pub fn from_generalized(table: &AnonymizedTable, base: &Arc<NumericBase>) -> Self {
        assert_eq!(
            table.len(),
            base.len(),
            "generalized release and numeric base cover the same tuples"
        );
        let columns: Vec<Vec<f64>> = base
            .schema_cols()
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                (0..table.len())
                    .map(|row| match table.cell(row, c) {
                        GenValue::Int(v) => *v as f64,
                        // The midpoint of the half-open interval (lo, hi].
                        GenValue::Interval { lo, hi } => (*lo as f64 + *hi as f64) / 2.0,
                        GenValue::Cat(_) | GenValue::Node(_) | GenValue::Suppressed => {
                            base.means()[j]
                        }
                    })
                    .collect()
            })
            .collect();
        NumericRelease::new(table.name().to_owned(), base.clone(), columns)
    }

    /// The release's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the release under a different display name.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The base this release perturbs.
    pub fn base(&self) -> &Arc<NumericBase> {
        &self.base
    }

    /// Number of rows (always the original tuple count).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the release is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of numeric columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Released values, column-major.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// One released column as a contiguous slice.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.columns[j]
    }

    /// The released row `i` gathered across columns (row-at-a-time view;
    /// the naive reference extractors use this).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.columns.iter().map(|col| col[i]).collect()
    }
}

/// One release of either family. The engine caches, digests, and measures
/// releases through this enum; everything downstream of release
/// computation dispatches on the family exactly once.
#[derive(Debug, Clone)]
pub enum Release {
    /// A generalization/suppression release (the paper's original family).
    Generalized(AnonymizedTable),
    /// A perturbative release over the numeric quasi-identifiers.
    Numeric(NumericRelease),
}

impl Release {
    /// The release's display name.
    pub fn name(&self) -> &str {
        match self {
            Release::Generalized(t) => t.name(),
            Release::Numeric(n) => n.name(),
        }
    }

    /// Number of tuples (both families preserve the original count).
    pub fn len(&self) -> usize {
        match self {
            Release::Generalized(t) => t.len(),
            Release::Numeric(n) => n.len(),
        }
    }

    /// Whether the release is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The generalization table, when this is a generalized release.
    pub fn as_generalized(&self) -> Option<&AnonymizedTable> {
        match self {
            Release::Generalized(t) => Some(t),
            Release::Numeric(_) => None,
        }
    }

    /// The numeric release, when this is a perturbative release.
    pub fn as_numeric(&self) -> Option<&NumericRelease> {
        match self {
            Release::Generalized(_) => None,
            Release::Numeric(n) => Some(n),
        }
    }

    /// A short family tag for records and error messages.
    pub fn family(&self) -> &'static str {
        match self {
            Release::Generalized(_) => "generalized",
            Release::Numeric(_) => "numeric",
        }
    }
}

/// Inverts a symmetric positive-(semi)definite matrix by Gauss–Jordan
/// elimination, ridge-regularizing (`Σ + εI`) with growing ε until the
/// pivots are usable. `d` is tiny (the numeric QI count), so O(d³) is
/// irrelevant.
fn invert_spd(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = m.len();
    if d == 0 {
        return Vec::new();
    }
    let scale = (0..d)
        .map(|i| m[i][i].abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let mut ridge = 0.0;
    loop {
        let mut a: Vec<Vec<f64>> = m.to_vec();
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += ridge;
        }
        if let Some(inv) = gauss_jordan(&mut a) {
            return inv;
        }
        ridge = if ridge == 0.0 {
            scale * 1e-9
        } else {
            ridge * 10.0
        };
    }
}

/// Plain Gauss–Jordan with partial pivoting; `None` on a (near-)zero pivot.
fn gauss_jordan(a: &mut [Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let d = a.len();
    let mut inv: Vec<Vec<f64>> = (0..d)
        .map(|i| (0..d).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();
    for col in 0..d {
        let pivot_row = (col..d)
            .max_by(|&x, &y| a[x][col].abs().partial_cmp(&a[y][col].abs()).unwrap())
            .unwrap();
        if a[pivot_row][col].abs() < STD_FLOOR {
            return None;
        }
        a.swap(col, pivot_row);
        inv.swap(col, pivot_row);
        let pivot = a[col][col];
        for j in 0..d {
            a[col][j] /= pivot;
            inv[col][j] /= pivot;
        }
        for row in 0..d {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..d {
                a[row][j] -= factor * a[col][j];
                inv[row][j] -= factor * inv[col][j];
            }
        }
    }
    Some(inv)
}

/// Cholesky factorization of a symmetric positive-(semi)definite matrix,
/// ridge-regularizing until the factorization succeeds.
fn cholesky_spd(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = m.len();
    if d == 0 {
        return Vec::new();
    }
    let scale = (0..d)
        .map(|i| m[i][i].abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let mut ridge = 0.0;
    loop {
        if let Some(l) = cholesky_try(m, ridge) {
            return l;
        }
        ridge = if ridge == 0.0 {
            scale * 1e-9
        } else {
            ridge * 10.0
        };
    }
}

fn cholesky_try(m: &[Vec<f64>], ridge: f64) -> Option<Vec<Vec<f64>>> {
    let d = m.len();
    let mut l = vec![vec![0.0; d]; d];
    for i in 0..d {
        for j in 0..=i {
            let mut sum = m[i][j] + if i == j { ridge } else { 0.0 };
            for (a, b) in l[i][..j].iter().zip(&l[j][..j]) {
                sum -= a * b;
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;
    use crate::intervals::IntervalLadder;
    use crate::schema::{Attribute, Schema};
    use crate::taxonomy::Taxonomy;

    fn two_column_dataset() -> Arc<Dataset> {
        let zip = Taxonomy::masking(&["130", "132"], &[1, 2]).unwrap();
        let schema = Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(Hierarchy::from(
                    IntervalLadder::uniform(0, &[10, 20]).unwrap(),
                ))
                .unwrap(),
            Attribute::integer("income", Role::QuasiIdentifier, 0, 1000),
            Attribute::from_taxonomy("zip", Role::QuasiIdentifier, zip),
            Attribute::categorical("disease", Role::Sensitive, ["flu", "cold"]),
        ])
        .unwrap();
        // Correlated but not collinear columns: the covariance must be
        // invertible without ridge regularization for the inverse tests.
        let rows = [
            (25, 140, "130", "flu"),
            (35, 180, "130", "cold"),
            (45, 330, "132", "flu"),
            (55, 360, "132", "cold"),
            (65, 490, "130", "flu"),
        ];
        let mut b = crate::dataset::DatasetBuilder::with_capacity(schema, rows.len());
        for (age, income, zip, disease) in rows {
            b.push_labels(&[&age.to_string(), &income.to_string(), zip, disease])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn base_selects_integer_qi_columns_only() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).expect("two numeric QI columns");
        assert_eq!(base.width(), 2);
        assert_eq!(base.names(), ["age", "income"]);
        assert_eq!(base.len(), 5);
        assert!((base.means()[0] - 45.0).abs() < 1e-12);
        assert!((base.means()[1] - 300.0).abs() < 1e-12);
        assert!(base.stds().iter().all(|&s| s > 0.0));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `i`/`j`/`k` index `cov` and `inv` in lockstep
    fn inverse_covariance_is_an_inverse() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let d = base.width();
        let cov = base.covariance();
        let inv = base.inverse_covariance();
        for i in 0..d {
            for j in 0..d {
                let mut acc = 0.0;
                for k in 0..d {
                    acc += cov[i][k] * inv[k][j];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expected).abs() < 1e-6, "(Σ · Σ⁻¹)[{i}][{j}] = {acc}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `i`/`j`/`k` index `l` and the covariance in lockstep
    fn cholesky_reconstructs_covariance() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let l = base.cholesky();
        let d = base.width();
        for i in 0..d {
            for j in 0..d {
                let mut acc = 0.0;
                for k in 0..d {
                    acc += l[i][k] * l[j][k];
                }
                assert!(
                    (acc - base.covariance()[i][j]).abs() < 1e-6,
                    "(L·Lᵀ)[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn identity_release_reproduces_the_base() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let rel = NumericRelease::identity(base.clone(), "identity");
        assert_eq!(rel.columns(), base.columns());
        assert_eq!(rel.row(2), vec![45.0, 330.0]);
    }

    #[test]
    fn numeric_view_of_identity_generalization_is_exact() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let table = AnonymizedTable::identity(ds, "raw");
        let view = NumericRelease::from_generalized(&table, &base);
        assert_eq!(view.columns(), base.columns());
    }

    #[test]
    fn numeric_view_uses_midpoints_and_means() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let table = AnonymizedTable::identity(ds, "raw").suppress_tuples([0]);
        let view = NumericRelease::from_generalized(&table, &base);
        // Suppressed tuple falls back to column means; others unchanged.
        assert_eq!(view.column(0)[0], base.means()[0]);
        assert_eq!(view.column(1)[0], base.means()[1]);
        assert_eq!(view.column(0)[1], 35.0);
    }

    #[test]
    fn release_enum_dispatches_by_family() {
        let ds = two_column_dataset();
        let base = NumericBase::of(&ds).unwrap();
        let numeric = Release::Numeric(NumericRelease::identity(base, "n"));
        let generalized = Release::Generalized(AnonymizedTable::identity(ds, "g"));
        assert_eq!(numeric.family(), "numeric");
        assert_eq!(generalized.family(), "generalized");
        assert!(numeric.as_numeric().is_some());
        assert!(numeric.as_generalized().is_none());
        assert!(generalized.as_generalized().is_some());
        assert_eq!(numeric.len(), 5);
        assert_eq!(generalized.len(), 5);
    }
}
