//! Minimal CSV import/export for datasets and anonymized tables.
//!
//! Hand-rolled (no external csv crate) with support for the subset of RFC
//! 4180 this workspace needs: comma separation, double-quoted fields with
//! escaped quotes, and a header row.

use std::sync::Arc;

use crate::anonymized::AnonymizedTable;
use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{Error, Result};
use crate::schema::Schema;

/// Splits one CSV line into fields, honoring double quotes.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                ',' => fields.push(std::mem::take(&mut field)),
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Parse {
                            line: line_no,
                            detail: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Parse {
            line: line_no,
            detail: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Quotes a field if it contains separators, quotes, or newlines.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parses CSV text (header + records) into a dataset against a known
/// schema. Header names must match the schema's attribute names in order.
///
/// # Errors
/// [`Error::Parse`] for malformed CSV or header mismatches; value
/// resolution errors as in
/// [`DatasetBuilder::push_labels`](crate::dataset::DatasetBuilder::push_labels).
pub fn dataset_from_csv(schema: Arc<Schema>, text: &str) -> Result<Arc<Dataset>> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hdr_no, header) = lines.next().ok_or(Error::Parse {
        line: 1,
        detail: "missing header row".into(),
    })?;
    let names = split_line(header, hdr_no + 1)?;
    if names.len() != schema.len() {
        return Err(Error::Parse {
            line: hdr_no + 1,
            detail: format!(
                "header has {} columns, schema has {}",
                names.len(),
                schema.len()
            ),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if name.trim() != schema.attribute(i).name() {
            return Err(Error::Parse {
                line: hdr_no + 1,
                detail: format!(
                    "header column {} is '{}', expected '{}'",
                    i,
                    name.trim(),
                    schema.attribute(i).name()
                ),
            });
        }
    }
    let mut builder = DatasetBuilder::with_capacity(schema, 64);
    for (no, line) in lines {
        let fields = split_line(line, no + 1)?;
        builder.push_labels(&fields).map_err(|e| match e {
            Error::Parse { .. } => e,
            other => Error::Parse {
                line: no + 1,
                detail: other.to_string(),
            },
        })?;
    }
    builder.build()
}

/// Serializes a dataset as CSV (header + raw values).
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let schema = ds.schema();
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| quote(a.name()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..ds.len() {
        let cells: Vec<String> = (0..schema.len())
            .map(|col| quote(&ds.render(row, col)))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Serializes an anonymized table as CSV using the released (generalized)
/// cell renderings.
pub fn anonymized_to_csv(table: &AnonymizedTable) -> String {
    let schema = table.dataset().schema();
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| quote(a.name()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for tuple in 0..table.len() {
        let cells: Vec<String> = (0..schema.len())
            .map(|col| quote(&table.render_cell(tuple, col)))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Role};
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::integer("age", Role::QuasiIdentifier, 0, 120),
            Attribute::categorical("status", Role::Sensitive, ["a,b", "plain", "qu\"ote"]),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_with_quoting() {
        let ds = Dataset::new(
            schema(),
            vec![
                vec![Value::Int(28), Value::Cat(0)],
                vec![Value::Int(41), Value::Cat(1)],
                vec![Value::Int(50), Value::Cat(2)],
            ],
        )
        .unwrap();
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(schema(), &text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.value(0, 0), &Value::Int(28));
        assert_eq!(back.value(0, 1), &Value::Cat(0));
        assert_eq!(back.value(2, 1), &Value::Cat(2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "age,status\n28,\"unterminated\n";
        let err = dataset_from_csv(schema(), text).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }));

        let text = "age,status\nnotanum,plain\n";
        let err = dataset_from_csv(schema(), text).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 2, .. }));
    }

    #[test]
    fn header_validation() {
        assert!(dataset_from_csv(schema(), "").is_err());
        assert!(dataset_from_csv(schema(), "age\n").is_err());
        assert!(dataset_from_csv(schema(), "age,wrong\n").is_err());
        // Whitespace around header names is tolerated.
        assert!(dataset_from_csv(schema(), " age , status \n28,plain\n").is_ok());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "age,status\n\n28,plain\n\n41,plain\n";
        let ds = dataset_from_csv(schema(), text).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn split_line_quoted_fields() {
        assert_eq!(split_line("a,b,c", 1).unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_line("\"a,b\",c", 1).unwrap(), vec!["a,b", "c"]);
        assert_eq!(
            split_line("\"say \"\"hi\"\"\",x", 1).unwrap(),
            vec!["say \"hi\"", "x"]
        );
        assert_eq!(split_line("", 1).unwrap(), vec![""]);
        assert_eq!(split_line("a,", 1).unwrap(), vec!["a", ""]);
        assert!(split_line("ab\"cd", 1).is_err());
    }

    #[test]
    fn anonymized_export_renders_generalizations() {
        use crate::value::GenValue;
        let ds = Dataset::new(schema(), vec![vec![Value::Int(28), Value::Cat(1)]]).unwrap();
        let t = AnonymizedTable::new(
            ds,
            vec![vec![
                GenValue::Interval { lo: 25, hi: 35 },
                GenValue::Cat(1),
            ]],
            "t",
        )
        .unwrap();
        let text = anonymized_to_csv(&t);
        assert!(text.contains("\"(25,35]\"") || text.contains("(25,35]"));
        assert!(text.contains("plain"));
    }
}
