//! Error types for the microdata substrate.

use std::fmt;

/// Errors produced while building schemas, hierarchies, datasets, or
/// applying generalizations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A hierarchy definition is structurally invalid (e.g. unbalanced
    /// taxonomy, empty level list, non-nested interval ladder).
    InvalidHierarchy(String),
    /// A requested generalization level exceeds the hierarchy height.
    LevelOutOfRange {
        /// Attribute name.
        attribute: String,
        /// Requested level.
        level: usize,
        /// Maximum admissible level for this attribute.
        max: usize,
    },
    /// A value does not belong to the attribute's domain.
    ValueOutOfDomain {
        /// Attribute name.
        attribute: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// A tuple has the wrong arity for the schema.
    ArityMismatch {
        /// Expected number of attributes.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// The schema has no attribute with the given name.
    UnknownAttribute(String),
    /// An attribute that requires a hierarchy does not have one.
    MissingHierarchy(String),
    /// The kind of value supplied does not match the attribute kind
    /// (e.g. a categorical value for a numeric attribute).
    KindMismatch {
        /// Attribute name.
        attribute: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Failure while parsing external data (CSV).
    Parse {
        /// 1-based line number of the offending record, if known.
        line: usize,
        /// Description of the failure.
        detail: String,
    },
    /// Dataset-level invariant violation (e.g. empty dataset where tuples
    /// are required).
    InvalidDataset(String),
    /// Failure reading or writing a spilled column file (chunked store).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidHierarchy(msg) => write!(f, "invalid hierarchy: {msg}"),
            Error::LevelOutOfRange {
                attribute,
                level,
                max,
            } => write!(
                f,
                "generalization level {level} out of range for attribute '{attribute}' (max {max})"
            ),
            Error::ValueOutOfDomain { attribute, value } => {
                write!(
                    f,
                    "value '{value}' outside the domain of attribute '{attribute}'"
                )
            }
            Error::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity mismatch: expected {expected} values, got {actual}"
                )
            }
            Error::UnknownAttribute(name) => write!(f, "unknown attribute '{name}'"),
            Error::MissingHierarchy(name) => {
                write!(f, "attribute '{name}' has no generalization hierarchy")
            }
            Error::KindMismatch { attribute, detail } => {
                write!(f, "kind mismatch on attribute '{attribute}': {detail}")
            }
            Error::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            Error::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::LevelOutOfRange {
            attribute: "age".into(),
            level: 9,
            max: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("age"));
        assert!(msg.contains('9'));
        assert!(msg.contains('3'));

        let e = Error::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));

        let e = Error::Parse {
            line: 7,
            detail: "bad int".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::UnknownAttribute("x".into()));
    }
}
