//! Dictionary-encoded columnar generalization codec.
//!
//! Every full-domain lattice search (Samarati, Incognito, the exhaustive
//! optimal baseline) evaluates thousands of lattice nodes, and evaluating a
//! node through [`Lattice::apply`] materializes a complete
//! `Vec<Vec<GenValue>>` table and re-hashes every tuple signature. Almost
//! all of that work is redundant: under full-domain recoding the
//! generalized value of a cell depends only on `(column, raw value,
//! level)`, and a dataset column holds few distinct raw values compared to
//! its row count.
//!
//! [`GenCodec`] exploits this by interning, per quasi-identifier column:
//!
//! * a **raw code** per distinct value present in the column (`u32`,
//!   assigned in the sorted order of [`Dataset::distinct`]);
//! * per generalization level, a `Vec<u32>` **code map** from raw code to
//!   *generalized code*, plus the interned dictionary `Vec<GenValue>` those
//!   generalized codes index — computed once per `(column, level)` and
//!   shared by every lattice node that uses that level;
//! * per `(column, level)`, a lazily materialized **encoded column**: the
//!   per-row generalized codes, again computed once and shared.
//!
//! A lattice node then becomes an [`EncodedView`]: per-column `&[u32]`
//! code slices whose equivalence classes are computed by grouping plain
//! `u32` tuples ([`EquivalenceClasses::group_by_codes`]) — no `GenValue`
//! clones, no per-row `Vec` signatures. Decoding back to a displayable
//! [`AnonymizedTable`] happens only for the node a search actually
//! releases.
//!
//! # The class-merge invariant
//!
//! Stepping up one level in a *nested* hierarchy (a [`Taxonomy`], or an
//! [`IntervalLadder`](crate::intervals::IntervalLadder) built with
//! [`new_nested`](crate::intervals::IntervalLadder::new_nested)) can only
//! **merge** equivalence classes, never split them: two rows with equal
//! generalized values at level `l` also agree at every level `≥ l`. When
//! that invariant holds for every column ([`GenCodec::is_monotone`]), a
//! successor node's partition can be derived from its parent's by re-keying
//! one *representative row per parent class* — O(#classes) instead of
//! O(#rows) — via [`GenCodec::coarsen`]. Ladders built with
//! [`new_unchecked`](crate::intervals::IntervalLadder::new_unchecked) may
//! violate it (the paper's T3a/T3b/T4 ladders shift origins between
//! levels); the codec detects this at construction and refuses to coarsen
//! across a non-nested column, so callers fall back to the (still cheap)
//! from-scratch [`GenCodec::partition`].
//!
//! [`Lattice::apply`]: crate::lattice::Lattice::apply
//! [`Taxonomy`]: crate::taxonomy::Taxonomy

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::anonymized::{AnonymizedTable, EquivalenceClasses};
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::hash::FxMap;
use crate::lattice::LevelVector;
use crate::value::GenValue;

/// Per-level interned dictionary of one quasi-identifier column.
#[derive(Debug)]
struct LevelCodec {
    /// `code_map[raw_code]` is the generalized code at this level.
    code_map: Vec<u32>,
    /// `dict[gen_code]` is the generalized value (first-appearance order
    /// over ascending raw codes).
    dict: Vec<GenValue>,
    /// Per-row generalized codes, materialized on first use and shared by
    /// every lattice node that generalizes this column to this level.
    /// Level 0 aliases the column's raw codes instead and leaves this
    /// empty.
    encoded: OnceLock<Vec<u32>>,
}

/// The codec state of one quasi-identifier column.
#[derive(Debug)]
struct ColumnCodec {
    /// Schema column index.
    col: usize,
    /// Whether every adjacent level map is a coarsening of the previous
    /// one (the class-merge invariant; see the module docs).
    monotone: bool,
    /// `raw_codes[row]` is the row's raw code (index into the column's
    /// sorted distinct values).
    raw_codes: Vec<u32>,
    /// Per-level code maps and dictionaries; index = generalization level.
    levels: Vec<LevelCodec>,
}

/// The dictionary-encoded columnar view of a dataset's quasi-identifier
/// columns under full-domain generalization.
///
/// Build one per `(dataset, schema)` pair and share it across an entire
/// lattice search: all per-`(column, level)` state is computed at most
/// once.
///
/// ```
/// use anoncmp_microdata::prelude::*;
///
/// let schema = Schema::new(vec![
///     Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
///         .with_hierarchy(IntervalLadder::uniform(0, &[10, 20]).unwrap().into())
///         .unwrap(),
///     Attribute::categorical("d", Role::Sensitive, ["x", "y"]),
/// ])
/// .unwrap();
/// let ds = Dataset::new(
///     schema,
///     vec![
///         vec![Value::Int(15), Value::Cat(0)],
///         vec![Value::Int(18), Value::Cat(1)],
///         vec![Value::Int(25), Value::Cat(0)],
///     ],
/// )
/// .unwrap();
/// let codec = GenCodec::new(&ds).unwrap();
/// // 15 and 18 share the (10,20] bucket at level 1.
/// let part = codec.partition(&[1]).unwrap();
/// assert_eq!(part.class_count(), 2);
/// assert_eq!(part.min_class_size(), 1);
/// // The decoded table matches Lattice::apply exactly.
/// let table = codec.decode(&[1], "demo").unwrap();
/// assert_eq!(table.cell(0, 0), &GenValue::Interval { lo: 10, hi: 20 });
/// ```
#[derive(Debug)]
pub struct GenCodec {
    dataset: Arc<Dataset>,
    columns: Vec<ColumnCodec>,
}

impl GenCodec {
    /// Builds the codec for every quasi-identifier column of `dataset`.
    ///
    /// Cost: O(rows) to assign raw codes plus O(distinct · levels) to
    /// intern the per-level dictionaries — encoded columns are *not*
    /// materialized here, only on first use.
    ///
    /// # Errors
    /// [`Error::MissingHierarchy`] if a quasi-identifier attribute lacks a
    /// generalization hierarchy; propagates generalization errors.
    pub fn new(dataset: &Arc<Dataset>) -> Result<Self> {
        let schema = dataset.schema();
        let mut columns = Vec::with_capacity(schema.quasi_identifiers().len());
        for &col in schema.quasi_identifiers() {
            let attr = schema.attribute(col);
            let hierarchy = attr
                .hierarchy()
                .ok_or_else(|| Error::MissingHierarchy(attr.name().to_owned()))?;
            let distinct = dataset.distinct(col);

            // Raw codes: index into the column's sorted distinct values.
            let raw_codes: Vec<u32> = (0..dataset.len())
                .map(|row| {
                    distinct
                        .code_of(dataset.value(row, col))
                        .expect("dataset values appear in their own distinct summary")
                })
                .collect();

            // One representative raw value per raw code, for generalizing.
            let raw_values = distinct.values();

            // Per-level maps and dictionaries over the distinct values.
            let mut levels = Vec::with_capacity(hierarchy.max_level() + 1);
            for level in 0..=hierarchy.max_level() {
                let mut dict: Vec<GenValue> = Vec::new();
                let mut intern: HashMap<GenValue, u32> = HashMap::new();
                let mut code_map = Vec::with_capacity(raw_values.len());
                for value in &raw_values {
                    let gv = hierarchy.generalize(value, level)?;
                    let next = dict.len() as u32;
                    let code = *intern.entry(gv).or_insert(next);
                    if code == next {
                        dict.push(gv);
                    }
                    code_map.push(code);
                }
                levels.push(LevelCodec {
                    code_map,
                    dict,
                    encoded: OnceLock::new(),
                });
            }

            // Class-merge invariant: each level map must be a function of
            // the previous level's map (same code at level l ⇒ same code
            // at level l+1).
            let monotone = levels.windows(2).all(|w| {
                let (finer, coarser) = (&w[0], &w[1]);
                let mut parent: Vec<Option<u32>> = vec![None; finer.dict.len()];
                finer
                    .code_map
                    .iter()
                    .zip(&coarser.code_map)
                    .all(|(&f, &c)| match parent[f as usize] {
                        Some(seen) => seen == c,
                        None => {
                            parent[f as usize] = Some(c);
                            true
                        }
                    })
            });

            columns.push(ColumnCodec {
                col,
                monotone,
                raw_codes,
                levels,
            });
        }
        Ok(GenCodec {
            dataset: dataset.clone(),
            columns,
        })
    }

    /// The dataset this codec encodes.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Number of quasi-identifier columns (lattice dimensions).
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.dataset.len()
    }

    /// Maximum generalization level of dimension `dim`.
    pub fn max_level(&self, dim: usize) -> usize {
        self.columns[dim].levels.len() - 1
    }

    /// The schema column index dimension `dim` encodes.
    pub fn column_of(&self, dim: usize) -> usize {
        self.columns[dim].col
    }

    /// Whether dimension `dim` satisfies the class-merge invariant (see
    /// the module docs): required for [`GenCodec::coarsen`] to step this
    /// dimension.
    pub fn is_monotone(&self, dim: usize) -> bool {
        self.columns[dim].monotone
    }

    /// Whether every dimension satisfies the class-merge invariant.
    pub fn monotone(&self) -> bool {
        self.columns.iter().all(|c| c.monotone)
    }

    /// Number of distinct generalized values of dimension `dim` at
    /// `level` — `O(1)`, no scan. (This is exactly the distinct count
    /// Datafly's attribute-selection heuristic needs.)
    pub fn distinct_at(&self, dim: usize, level: usize) -> usize {
        self.columns[dim].levels[level].dict.len()
    }

    /// The interned dictionary of dimension `dim` at `level`.
    pub fn dict(&self, dim: usize, level: usize) -> &[GenValue] {
        &self.columns[dim].levels[level].dict
    }

    /// The per-row generalized codes of dimension `dim` at `level`,
    /// materializing them on first use. Codes index
    /// [`GenCodec::dict`]`(dim, level)`.
    pub fn encoded_column(&self, dim: usize, level: usize) -> &[u32] {
        let column = &self.columns[dim];
        if level == 0 {
            // Level 0 is the identity map; the raw codes double as the
            // encoded column.
            return &column.raw_codes;
        }
        let lc = &column.levels[level];
        lc.encoded.get_or_init(|| {
            column
                .raw_codes
                .iter()
                .map(|&r| lc.code_map[r as usize])
                .collect()
        })
    }

    /// Validates a full-dimensional level vector.
    ///
    /// # Errors
    /// [`Error::ArityMismatch`] / [`Error::LevelOutOfRange`], as
    /// [`Lattice::validate`](crate::lattice::Lattice::validate).
    pub fn validate(&self, levels: &[usize]) -> Result<()> {
        if levels.len() != self.columns.len() {
            return Err(Error::ArityMismatch {
                expected: self.columns.len(),
                actual: levels.len(),
            });
        }
        for (dim, &level) in levels.iter().enumerate() {
            let max = self.max_level(dim);
            if level > max {
                let attr = self.dataset.schema().attribute(self.columns[dim].col);
                return Err(Error::LevelOutOfRange {
                    attribute: attr.name().to_owned(),
                    level,
                    max,
                });
            }
        }
        Ok(())
    }

    /// The encoded view of the lattice node `levels` (all dimensions).
    ///
    /// # Errors
    /// As [`GenCodec::validate`].
    pub fn view(&self, levels: &[usize]) -> Result<EncodedView<'_>> {
        self.validate(levels)?;
        let dims: Vec<usize> = (0..self.dims()).collect();
        Ok(self.view_of(&dims, levels))
    }

    /// The encoded view of a **projection**: only the listed dimensions,
    /// generalized to `levels` (aligned with `dims`). Used by subset
    /// phases of Incognito.
    ///
    /// # Errors
    /// [`Error::ArityMismatch`] if `dims` and `levels` differ in length;
    /// [`Error::LevelOutOfRange`] for an out-of-range pair.
    pub fn view_subset(&self, dims: &[usize], levels: &[usize]) -> Result<EncodedView<'_>> {
        if dims.len() != levels.len() {
            return Err(Error::ArityMismatch {
                expected: dims.len(),
                actual: levels.len(),
            });
        }
        for (&dim, &level) in dims.iter().zip(levels) {
            let max = self.max_level(dim);
            if level > max {
                let attr = self.dataset.schema().attribute(self.columns[dim].col);
                return Err(Error::LevelOutOfRange {
                    attribute: attr.name().to_owned(),
                    level,
                    max,
                });
            }
        }
        Ok(self.view_of(dims, levels))
    }

    fn view_of(&self, dims: &[usize], levels: &[usize]) -> EncodedView<'_> {
        let columns: Vec<&[u32]> = dims
            .iter()
            .zip(levels)
            .map(|(&dim, &level)| self.encoded_column(dim, level))
            .collect();
        let dict_sizes: Vec<u32> = dims
            .iter()
            .zip(levels)
            .map(|(&dim, &level)| self.distinct_at(dim, level) as u32)
            .collect();
        EncodedView {
            rows: self.rows(),
            columns,
            dict_sizes,
        }
    }

    /// Groups the node `levels` from scratch into class sizes plus one
    /// representative row per class — the evaluation kernel of the lattice
    /// searches. Class numbering is first-appearance order, identical to
    /// [`EquivalenceClasses::group_by_hash`] on the materialized table.
    ///
    /// # Errors
    /// As [`GenCodec::validate`].
    pub fn partition(&self, levels: &[usize]) -> Result<NodePartition> {
        let view = self.view(levels)?;
        let (sizes, reps) = view.sizes_and_reps();
        Ok(NodePartition {
            levels: levels.to_vec(),
            sizes,
            reps,
            assignments: OnceLock::new(),
        })
    }

    /// Derives the partition of a coarser node from `parent` by re-keying
    /// the parent's class representatives — O(#classes · dims) instead of
    /// O(rows · dims), exploiting that generalization only merges classes.
    ///
    /// # Errors
    /// [`Error::InvalidHierarchy`] when `levels` is not component-wise ≥
    /// the parent's, or when a dimension whose level changes violates the
    /// class-merge invariant (non-nested ladder); also as
    /// [`GenCodec::validate`].
    pub fn coarsen(&self, parent: &NodePartition, levels: &[usize]) -> Result<NodePartition> {
        self.validate(levels)?;
        for (dim, (&pl, &cl)) in parent.levels.iter().zip(levels).enumerate() {
            if cl < pl {
                return Err(Error::InvalidHierarchy(format!(
                    "coarsen requires levels ≥ the parent's, but dimension {dim} steps {pl} → {cl}"
                )));
            }
            if cl > pl && !self.is_monotone(dim) {
                return Err(Error::InvalidHierarchy(format!(
                    "dimension {dim} violates the class-merge invariant (non-nested ladder); \
                     use partition() instead"
                )));
            }
        }
        let dims: Vec<usize> = (0..self.dims()).collect();
        let view = self.view_of(&dims, levels);

        // Re-key each parent representative under the child levels; parent
        // classes with equal child keys merge. Numbering stays
        // first-appearance because parent classes are already in
        // first-appearance order.
        let mut sizes: Vec<u32> = Vec::new();
        let mut reps: Vec<u32> = Vec::new();
        let mut index: FxMap<u64, u32> = FxMap::default();
        let mut wide: FxMap<Vec<u32>, u32> = FxMap::default();
        let packed = view.packing();
        for (class, &rep) in parent.reps.iter().enumerate() {
            let merged = match &packed {
                Some(shifts) => {
                    let key = view.packed_key(rep as usize, shifts);
                    let next = sizes.len() as u32;
                    *index.entry(key).or_insert(next)
                }
                None => {
                    let key: Vec<u32> = view.columns.iter().map(|c| c[rep as usize]).collect();
                    let next = sizes.len() as u32;
                    *wide.entry(key).or_insert(next)
                }
            };
            if merged as usize == sizes.len() {
                sizes.push(0);
                reps.push(rep);
            }
            sizes[merged as usize] += parent.sizes[class];
        }
        Ok(NodePartition {
            levels: levels.to_vec(),
            sizes,
            reps,
            assignments: OnceLock::new(),
        })
    }

    /// Decodes the node `levels` into a full [`AnonymizedTable`] —
    /// byte-identical to [`Lattice::apply`](crate::lattice::Lattice::apply)
    /// with the same levels. Searches call this only for the nodes they
    /// actually release.
    ///
    /// # Errors
    /// As [`GenCodec::validate`]; propagates table-construction errors.
    pub fn decode(&self, levels: &[usize], name: impl Into<String>) -> Result<AnonymizedTable> {
        self.validate(levels)?;
        let schema = self.dataset.schema();
        // col → (dict, encoded codes) for quasi-identifier columns.
        let mut qi_source: Vec<Option<(&[GenValue], &[u32])>> = vec![None; schema.len()];
        for (dim, column) in self.columns.iter().enumerate() {
            let level = levels[dim];
            qi_source[column.col] = Some((self.dict(dim, level), self.encoded_column(dim, level)));
        }
        let rows = self.dataset.rows();
        let mut records = Vec::with_capacity(rows.len());
        for (t, row) in rows.iter().enumerate() {
            let mut rec = Vec::with_capacity(row.len());
            for (col, value) in row.iter().enumerate() {
                match qi_source[col] {
                    Some((dict, codes)) => rec.push(dict[codes[t] as usize]),
                    None => rec.push(GenValue::raw(*value)),
                }
            }
            records.push(rec);
        }
        AnonymizedTable::new(self.dataset.clone(), records, name)
    }
}

/// Bit-shift layout for packing one row's per-column codes into a `u64`,
/// if the per-column code widths fit: `shifts[i]` is the bit offset of
/// column `i`. Widths derive from the **global** dictionary sizes, so the
/// layout — and therefore every packed key — is independent of how rows
/// are chunked. Shared by [`EncodedView`] and the chunked store so both
/// paths key rows identically.
pub(crate) fn packing_shifts(dict_sizes: &[u32]) -> Option<Vec<u32>> {
    let mut shifts = Vec::with_capacity(dict_sizes.len());
    let mut used = 0u32;
    for &size in dict_sizes {
        let bits = u32::BITS - size.max(1).saturating_sub(1).leading_zeros();
        let bits = bits.max(1);
        if used + bits > 64 {
            return None;
        }
        shifts.push(used);
        used += bits;
    }
    Some(shifts)
}

/// A lattice node as per-column `u32` code slices: the allocation-free
/// evaluation form of a full-domain recoding (or of a projection onto a
/// subset of the quasi-identifiers).
#[derive(Debug)]
pub struct EncodedView<'a> {
    rows: usize,
    columns: Vec<&'a [u32]>,
    /// Dictionary size per column (every code is strictly below it).
    dict_sizes: Vec<u32>,
}

impl EncodedView<'_> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The per-column code slices.
    pub fn columns(&self) -> &[&[u32]] {
        &self.columns
    }

    /// Bit-shift layout for packing one row's codes into a `u64`, if the
    /// per-column code widths fit. `shifts[i]` is the bit offset of column
    /// `i`.
    fn packing(&self) -> Option<Vec<u32>> {
        packing_shifts(&self.dict_sizes)
    }

    /// Packs row `row`'s codes into a single `u64` key under `shifts`.
    fn packed_key(&self, row: usize, shifts: &[u32]) -> u64 {
        self.columns
            .iter()
            .zip(shifts)
            .fold(0u64, |key, (col, &shift)| {
                key | (u64::from(col[row]) << shift)
            })
    }

    /// The full equivalence classes of this view (members and class ids,
    /// first-appearance numbering — identical partition to
    /// [`EquivalenceClasses::group_by_hash`] on the decoded table).
    pub fn classes(&self) -> EquivalenceClasses {
        EquivalenceClasses::group_by_codes(self.rows, &self.columns)
    }

    /// Class sizes plus one representative row per class, without
    /// materializing member lists. First-appearance numbering.
    pub fn sizes_and_reps(&self) -> (Vec<u32>, Vec<u32>) {
        let mut sizes: Vec<u32> = Vec::new();
        let mut reps: Vec<u32> = Vec::new();
        match self.packing() {
            Some(shifts) => {
                let mut index: FxMap<u64, u32> = FxMap::default();
                index.reserve(1024.min(self.rows));
                for row in 0..self.rows {
                    let key = self.packed_key(row, &shifts);
                    let next = sizes.len() as u32;
                    let class = *index.entry(key).or_insert(next);
                    if class == next {
                        sizes.push(0);
                        reps.push(row as u32);
                    }
                    sizes[class as usize] += 1;
                }
            }
            None => {
                // Wide fallback: one flat buffer holds every row key; the
                // map borrows slices of it (single allocation, no per-row
                // Vec).
                let cols = self.columns.len();
                let mut flat: Vec<u32> = Vec::with_capacity(self.rows * cols);
                for row in 0..self.rows {
                    for col in &self.columns {
                        flat.push(col[row]);
                    }
                }
                let mut index: FxMap<&[u32], u32> = FxMap::default();
                for (row, key) in flat.chunks_exact(cols.max(1)).enumerate() {
                    let next = sizes.len() as u32;
                    let class = *index.entry(key).or_insert(next);
                    if class == next {
                        sizes.push(0);
                        reps.push(row as u32);
                    }
                    sizes[class as usize] += 1;
                }
                if cols == 0 && self.rows > 0 {
                    // No columns: all rows share the empty signature.
                    sizes = vec![self.rows as u32];
                    reps = vec![0];
                }
            }
        }
        (sizes, reps)
    }

    /// The size of the smallest class (the achieved `k`), or 0 for an
    /// empty view.
    pub fn min_class_size(&self) -> usize {
        let (sizes, _) = self.sizes_and_reps();
        sizes.iter().copied().min().unwrap_or(0) as usize
    }

    /// The class id of every row, in first-appearance numbering — the
    /// same numbering [`EncodedView::sizes_and_reps`] assigns, and
    /// identical to [`EquivalenceClasses::group_by_hash`] on the decoded
    /// table. This is the per-row view property extractors need without
    /// materializing member lists.
    pub fn class_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::with_capacity(self.rows);
        let mut count: u32 = 0;
        match self.packing() {
            Some(shifts) => {
                let mut index: FxMap<u64, u32> = FxMap::default();
                index.reserve(1024.min(self.rows));
                for row in 0..self.rows {
                    let key = self.packed_key(row, &shifts);
                    let class = *index.entry(key).or_insert(count);
                    if class == count {
                        count += 1;
                    }
                    ids.push(class);
                }
            }
            None => {
                let cols = self.columns.len();
                if cols == 0 {
                    // No columns: all rows share the empty signature.
                    return vec![0; self.rows];
                }
                let mut flat: Vec<u32> = Vec::with_capacity(self.rows * cols);
                for row in 0..self.rows {
                    for col in &self.columns {
                        flat.push(col[row]);
                    }
                }
                let mut index: FxMap<&[u32], u32> = FxMap::default();
                for key in flat.chunks_exact(cols) {
                    let class = *index.entry(key).or_insert(count);
                    if class == count {
                        count += 1;
                    }
                    ids.push(class);
                }
            }
        }
        ids
    }
}

/// The partition a lattice node induces, reduced to what frequency-set
/// constraint checks need: class sizes plus one representative row per
/// class (for incremental re-keying).
#[derive(Debug, Clone)]
pub struct NodePartition {
    levels: LevelVector,
    sizes: Vec<u32>,
    reps: Vec<u32>,
    /// Per-row class ids, materialized on first request and shared by
    /// every property extractor that asks (cloning a partition clones the
    /// cached assignment along with it).
    assignments: OnceLock<Vec<u32>>,
}

impl NodePartition {
    /// Assembles a partition from parts produced elsewhere (the chunked
    /// store's streaming grouping pass). Callers must supply sizes and
    /// representatives in first-appearance order, exactly as
    /// [`EncodedView::sizes_and_reps`] would number them.
    pub(crate) fn from_parts(levels: LevelVector, sizes: Vec<u32>, reps: Vec<u32>) -> Self {
        NodePartition {
            levels,
            sizes,
            reps,
            assignments: OnceLock::new(),
        }
    }

    /// The level vector this partition belongs to.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.sizes.len()
    }

    /// Class sizes, in first-appearance order.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// One representative row per class, aligned with
    /// [`NodePartition::sizes`].
    pub fn representatives(&self) -> &[u32] {
        &self.reps
    }

    /// The size of the smallest class, or 0 when empty.
    pub fn min_class_size(&self) -> usize {
        self.sizes.iter().copied().min().unwrap_or(0) as usize
    }

    /// The class id of every row under this partition's levels, computed
    /// from `codec` on first use and cached (first-appearance numbering,
    /// aligned with [`NodePartition::sizes`]). `codec` must be the codec
    /// this partition was derived from.
    ///
    /// # Errors
    /// As [`GenCodec::validate`] when the partition's levels do not fit
    /// `codec` (e.g. a partition paired with a different dataset's codec).
    pub fn class_ids(&self, codec: &GenCodec) -> Result<&[u32]> {
        codec.validate(&self.levels)?;
        Ok(self.assignments.get_or_init(|| {
            let view = codec.view(&self.levels).expect("levels validated above");
            view.class_ids()
        }))
    }

    /// Like [`NodePartition::class_ids`], but computed by streaming the
    /// chunked store — the per-row ids are materialized (O(rows), the one
    /// deliberate exception to the chunked path's O(chunk + classes)
    /// budget) and cached exactly as the monolithic variant caches them.
    ///
    /// # Errors
    /// As [`ChunkedCodec::validate`]; propagates spill-file I/O errors.
    pub fn class_ids_chunked(&self, codec: &crate::chunked::ChunkedCodec) -> Result<&[u32]> {
        if let Some(ids) = self.assignments.get() {
            return Ok(ids);
        }
        let ids = codec.class_ids(&self.levels)?;
        Ok(self.assignments.get_or_init(|| ids))
    }

    /// Number of tuples in classes smaller than `k` — the tuples a
    /// k-anonymity constraint would have to suppress. This is Incognito's
    /// frequency-set check, computed on class sizes alone.
    pub fn tuples_below(&self, k: usize) -> usize {
        self.sizes
            .iter()
            .filter(|&&s| (s as usize) < k)
            .map(|&s| s as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{IntervalLadder, IntervalLevel};
    use crate::lattice::Lattice;
    use crate::schema::{Attribute, Role, Schema};
    use crate::taxonomy::Taxonomy;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::from_taxonomy(
                "city",
                Role::QuasiIdentifier,
                Taxonomy::flat(["a", "b", "c"]).unwrap(),
            ),
            Attribute::integer("age", Role::QuasiIdentifier, 0, 100)
                .with_hierarchy(IntervalLadder::uniform(0, &[10, 20]).unwrap().into())
                .unwrap(),
            Attribute::categorical("d", Role::Sensitive, ["s1", "s2"]),
        ])
        .unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Dataset::new(
            schema(),
            vec![
                vec![Value::Cat(0), Value::Int(15), Value::Cat(0)],
                vec![Value::Cat(1), Value::Int(25), Value::Cat(1)],
                vec![Value::Cat(0), Value::Int(18), Value::Cat(1)],
                vec![Value::Cat(2), Value::Int(33), Value::Cat(0)],
                vec![Value::Cat(0), Value::Int(15), Value::Cat(1)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn decode_matches_lattice_apply_on_every_node() {
        let ds = dataset();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        for levels in lattice.iter_all() {
            let via_apply = lattice.apply(&ds, &levels, "t").unwrap();
            let via_codec = codec.decode(&levels, "t").unwrap();
            assert_eq!(
                via_apply.records(),
                via_codec.records(),
                "records differ at {levels:?}"
            );
            assert!(via_apply.classes().same_partition(via_codec.classes()));
        }
    }

    #[test]
    fn partition_matches_materialized_grouping() {
        let ds = dataset();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        for levels in lattice.iter_all() {
            let table = lattice.apply(&ds, &levels, "t").unwrap();
            let part = codec.partition(&levels).unwrap();
            assert_eq!(part.class_count(), table.classes().class_count());
            assert_eq!(part.min_class_size(), table.classes().min_class_size());
            // Sizes agree class-by-class under first-appearance numbering.
            let sizes: Vec<u32> = (0..table.classes().class_count())
                .map(|c| table.classes().members(c).len() as u32)
                .collect();
            assert_eq!(part.sizes(), &sizes[..], "sizes differ at {levels:?}");
        }
    }

    #[test]
    fn class_ids_match_materialized_grouping() {
        let ds = dataset();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        for levels in lattice.iter_all() {
            let table = lattice.apply(&ds, &levels, "t").unwrap();
            let expected: Vec<u32> = (0..ds.len())
                .map(|t| table.classes().class_of(t) as u32)
                .collect();
            let view = codec.view(&levels).unwrap();
            assert_eq!(view.class_ids(), expected, "view ids differ at {levels:?}");
            // The cached accessor agrees, for partitions built from
            // scratch and for coarsened ones.
            let part = codec.partition(&levels).unwrap();
            assert_eq!(part.class_ids(&codec).unwrap(), &expected[..]);
            for succ in lattice.successors(&levels) {
                let stepped = codec.coarsen(&part, &succ).unwrap();
                let fresh = codec.partition(&succ).unwrap();
                assert_eq!(
                    stepped.class_ids(&codec).unwrap(),
                    fresh.class_ids(&codec).unwrap(),
                    "coarsened ids differ at {levels:?} → {succ:?}"
                );
            }
        }
    }

    #[test]
    fn coarsen_agrees_with_partition_from_scratch() {
        let ds = dataset();
        let lattice = Lattice::new(ds.schema().clone()).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        assert!(codec.monotone(), "uniform ladders are nested");
        for levels in lattice.iter_all() {
            let parent = codec.partition(&levels).unwrap();
            for succ in lattice.successors(&levels) {
                let stepped = codec.coarsen(&parent, &succ).unwrap();
                let fresh = codec.partition(&succ).unwrap();
                assert_eq!(stepped.sizes(), fresh.sizes(), "at {levels:?} → {succ:?}");
                assert_eq!(stepped.class_count(), fresh.class_count());
            }
        }
    }

    #[test]
    fn coarsen_rejects_finer_levels() {
        let ds = dataset();
        let codec = GenCodec::new(&ds).unwrap();
        let parent = codec.partition(&[1, 1]).unwrap();
        assert!(matches!(
            codec.coarsen(&parent, &[0, 1]),
            Err(Error::InvalidHierarchy(_))
        ));
    }

    #[test]
    fn non_nested_ladder_detected_and_coarsen_refused() {
        // Level 1 (origin 0, width 10) puts 5 and 6 in (0,10] together;
        // level 2 (origin 5, width 20) separates them into (-15,5] and
        // (5,25] — a level-1 class *splits* when stepping up, violating
        // the class-merge invariant.
        let ladder = IntervalLadder::new_unchecked(vec![
            IntervalLevel {
                origin: 0,
                width: 10,
            },
            IntervalLevel {
                origin: 5,
                width: 20,
            },
        ])
        .unwrap();
        let schema = Schema::new(vec![Attribute::integer(
            "age",
            Role::QuasiIdentifier,
            0,
            100,
        )
        .with_hierarchy(ladder.into())
        .unwrap()])
        .unwrap();
        let ds = Dataset::new(schema, vec![vec![Value::Int(5)], vec![Value::Int(6)]]).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        assert!(
            !codec.is_monotone(0),
            "origin-shifted ladder splits classes"
        );
        let parent = codec.partition(&[1]).unwrap();
        assert_eq!(parent.class_count(), 1, "5 and 6 share (0,10]");
        assert!(codec.coarsen(&parent, &[2]).is_err());
        // From-scratch partition is still correct: they split at level 2.
        assert_eq!(codec.partition(&[2]).unwrap().class_count(), 2);
    }

    #[test]
    fn view_subset_projects() {
        let ds = dataset();
        let codec = GenCodec::new(&ds).unwrap();
        // Project onto the city column only, raw: 3 distinct cities.
        let view = codec.view_subset(&[0], &[0]).unwrap();
        let (sizes, _) = view.sizes_and_reps();
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes.iter().sum::<u32>() as usize, ds.len());
        // Fully generalized projection: one class.
        let view = codec.view_subset(&[0], &[1]).unwrap();
        assert_eq!(view.sizes_and_reps().0, vec![ds.len() as u32]);
        // Arity and range validation.
        assert!(codec.view_subset(&[0], &[0, 1]).is_err());
        assert!(codec.view_subset(&[0], &[9]).is_err());
    }

    #[test]
    fn distinct_at_counts_present_generalizations() {
        let ds = dataset();
        let codec = GenCodec::new(&ds).unwrap();
        // Ages 15, 25, 18, 33, 15 → 4 distinct raw, 3 level-1 buckets
        // ((10,20], (20,30], (30,40]), 2 level-2 buckets ((0,20], (20,40]).
        assert_eq!(codec.distinct_at(1, 0), 4);
        assert_eq!(codec.distinct_at(1, 1), 3);
        assert_eq!(codec.distinct_at(1, 2), 2);
        assert_eq!(codec.distinct_at(1, 3), 1, "suppression: one value");
    }

    #[test]
    fn validate_errors() {
        let ds = dataset();
        let codec = GenCodec::new(&ds).unwrap();
        assert!(matches!(codec.view(&[0]), Err(Error::ArityMismatch { .. })));
        assert!(matches!(
            codec.view(&[0, 9]),
            Err(Error::LevelOutOfRange { .. })
        ));
    }

    #[test]
    fn missing_hierarchy_rejected() {
        let s = Schema::new(vec![Attribute::integer("age", Role::QuasiIdentifier, 0, 9)]).unwrap();
        let ds = Dataset::new(s, vec![vec![Value::Int(1)]]).unwrap();
        assert!(matches!(
            GenCodec::new(&ds),
            Err(Error::MissingHierarchy(_))
        ));
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(schema(), vec![]).unwrap();
        let codec = GenCodec::new(&ds).unwrap();
        let part = codec.partition(&[0, 0]).unwrap();
        assert_eq!(part.class_count(), 0);
        assert_eq!(part.min_class_size(), 0);
        assert_eq!(part.tuples_below(5), 0);
    }

    #[test]
    fn tuples_below_counts_violators() {
        let ds = dataset();
        let codec = GenCodec::new(&ds).unwrap();
        // Raw node: rows 0 and 4 share (city a, age 15); others singletons.
        let part = codec.partition(&[0, 0]).unwrap();
        assert_eq!(part.class_count(), 4);
        assert_eq!(part.tuples_below(2), 3, "three singletons");
        assert_eq!(part.tuples_below(3), 5, "every tuple sits below 3");
        assert_eq!(part.tuples_below(1), 0);
    }
}
